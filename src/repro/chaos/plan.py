"""The shared armed-fault protocol.

Fault injection across this repo follows one shape, first grown in the
patch store (:mod:`repro.store.faults`) and generalized here so every
layer -- checkpointing, diagnosis, validation, the worker pool, the
recovery supervisor itself -- can consult the same kind of plan: an
explicitly *armed* queue of faults that the instrumented code checks at
its vulnerable points.  With nothing armed, every check is a dict
lookup returning False (and the plan itself is usually ``None``, which
costs a single identity test), so production paths pay nothing.

Subclasses declare their fault vocabulary in ``KINDS`` and add the
static *effects* (what actually happens when a take succeeds) next to
the code that invokes them.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple


class FaultPlan:
    """An armed-fault queue plus counters of what actually fired.

    ``arm(kind, n)`` queues ``n`` faults of ``kind``; each ``take(kind)``
    at an injection point consumes one and returns True.  ``fired``
    records what actually happened, which is what storm gates assert
    on -- an armed fault whose layer never runs does not count.
    """

    #: The fault vocabulary; subclasses override (or pass ``kinds``).
    KINDS: Tuple[str, ...] = ()

    def __init__(self, kinds: Optional[Iterable[str]] = None) -> None:
        self.kinds: Tuple[str, ...] = (tuple(kinds) if kinds is not None
                                       else self.KINDS)
        self._armed: Dict[str, int] = {k: 0 for k in self.kinds}
        self.fired: Dict[str, int] = {k: 0 for k in self.kinds}

    def arm(self, kind: str, count: int = 1) -> None:
        if kind not in self._armed:
            raise ValueError(f"unknown fault kind {kind!r}")
        self._armed[kind] += count

    def take(self, kind: str) -> bool:
        """Consume one armed fault of ``kind`` if available."""
        if self._armed.get(kind, 0) > 0:
            self._armed[kind] -= 1
            self.fired[kind] += 1
            return True
        return False

    def pending(self, kind: str) -> int:
        return self._armed.get(kind, 0)

    def total_pending(self) -> int:
        return sum(self._armed.values())

    def total_fired(self) -> int:
        return sum(self.fired.values())
