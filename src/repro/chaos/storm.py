"""Randomized cross-layer fault storm for the degradation ladder.

Runs real-bug app sessions with :class:`~repro.chaos.ChaosPlan` faults
armed across every recovery layer -- checkpoint restore, diagnosis
probes (in-process and in workers), monitors, validation -- and digests
what the supervisor did about them: no unhandled exception may escape
``FirstAidRuntime.run``, every session must recover or cleanly
restart, and the survival rate must beat the supervisor-disabled
baseline subjected to the identical fault plans.

The storm is deterministic: fault arming is a fixed per-(app, session)
schedule, not sampled at run time, so a failing storm reproduces
exactly.  ``benchmarks/bench_degradation.py`` gates the result and
``python -m repro.bench --chaos`` runs a reduced storm from the CLI.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.registry import get_app, real_bug_apps
from repro.bench.harness import spaced_workload
from repro.chaos.faults import ChaosPlan
from repro.core.runtime import FirstAidConfig, FirstAidRuntime

#: Per-app session fault schedules.  Each dict arms one session; the
#: kinds are chosen so that every armed fault has a layer that consults
#: it during a 2-trigger session (checkpoint faults fire on the first
#: diagnosis rollback, probe faults on the first re-execution, monitor
#: misses on the first fault, validation flakes on the first completed
#: rung-1 recovery).
SESSION_ARMS: Tuple[Dict[str, int], ...] = (
    {"checkpoint_missing": 1, "probe_raise": 1, "monitor_miss": 1,
     "validation_flaky": 1},
    {"checkpoint_corrupt": 1, "probe_hang": 1, "budget_exhaust": 1,
     "validation_flaky": 1},
)

#: Top-up schedule: kinds that fire unconditionally given one trigger,
#: used to reach the requested fault floor when session arms under-fire
#: (e.g. a validation flake armed in a session whose rung 1 never
#: reached validation).
TOPUP_ARM: Dict[str, int] = {"monitor_miss": 1, "checkpoint_missing": 1,
                             "probe_raise": 1}


@dataclass
class ChaosSessionDigest:
    """One chaos session, digested for the gate."""

    app: str
    seed: int
    supervised: bool
    armed: Dict[str, int]
    fired: Dict[str, int]
    reason: str                     # session reason, or "unhandled"
    recoveries: int
    rungs: Tuple[int, ...]
    restarts: int
    gave_up: bool
    survived: bool
    #: "ExcType: message" when an exception escaped run() -- the thing
    #: the supervisor exists to prevent.  Always None when supervised.
    unhandled: Optional[str]
    #: workers rescued in-process after a hang deadline (worker storm)
    worker_timeouts: int = 0
    wall_s: float = 0.0
    #: With a store attached: did this session's health beacon survive
    #: into the post-session fleet report?  None when no store was
    #: configured.  Health faults may degrade *mid-run* publishes, but
    #: the exit beacon retries on a healed channel, so visibility is
    #: still the expectation under the storm.
    beacon_visible: Optional[bool] = None
    #: ``health.error`` events the session emitted (degraded health
    #: publishes; the faults went somewhere, the session never noticed).
    health_errors: int = 0


@dataclass
class StormResult:
    """Aggregate of one storm (supervised fleet + unsupervised
    baseline on identical fault plans)."""

    sessions: List[ChaosSessionDigest] = field(default_factory=list)
    baseline: List[ChaosSessionDigest] = field(default_factory=list)
    faults_armed: int = 0
    faults_fired: int = 0
    fired_by_kind: Dict[str, int] = field(default_factory=dict)
    rung_histogram: Dict[int, int] = field(default_factory=dict)
    wall_s: float = 0.0

    @property
    def unhandled(self) -> int:
        return sum(1 for s in self.sessions if s.unhandled)

    @property
    def survival_rate(self) -> float:
        if not self.sessions:
            return 0.0
        return sum(s.survived for s in self.sessions) / len(self.sessions)

    @property
    def baseline_survival_rate(self) -> float:
        if not self.baseline:
            return 0.0
        return sum(s.survived for s in self.baseline) / len(self.baseline)


def build_plan(arm: Dict[str, int],
               probe_timeout_ns: Optional[int] = None) -> ChaosPlan:
    plan = ChaosPlan(**({} if probe_timeout_ns is None
                        else {"probe_timeout_ns": probe_timeout_ns}))
    for kind, count in arm.items():
        plan.arm(kind, count)
    return plan


def run_chaos_session(app_name: str, arm: Dict[str, int],
                      supervised: bool = True, triggers: int = 2,
                      seed: int = 42, workers: int = 1,
                      worker_timeout_s: Optional[float] = None,
                      recovery_budget_ns: Optional[int] = None,
                      store_path: Optional[str] = None,
                      process_label: Optional[str] = None,
                      health_arm: Optional[Dict[str, int]] = None
                      ) -> ChaosSessionDigest:
    """Run one app session with ``arm`` chaos faults armed and digest
    the outcome.  Exceptions escaping the runtime are captured as
    ``unhandled``, never raised: the storm measures them.

    ``store_path`` attaches a shared store (and its health channel);
    ``health_arm`` additionally arms
    :class:`~repro.obs.health.HealthFaultPlan` kinds against that
    channel -- corrupt, torn, and stale beacons that must degrade to
    ``health.error`` events while the session sails on."""
    app = get_app(app_name)
    wl = spaced_workload(app, triggers=triggers, seed=seed)
    plan = build_plan(arm)
    health_faults = None
    if health_arm:
        from repro.obs.health import HealthFaultPlan
        health_faults = HealthFaultPlan()
        for kind, count in health_arm.items():
            health_faults.arm(kind, count)
    config = FirstAidConfig(
        supervisor=supervised,
        chaos=plan,
        restart_boundaries=wl.boundaries,
        workers=workers,
        worker_timeout_s=worker_timeout_s,
        recovery_budget_ns=recovery_budget_ns,
        store_path=store_path,
        process_label=process_label,
        health_faults=health_faults)
    started = time.perf_counter()
    runtime = FirstAidRuntime(app.program(), input_tokens=wl.tokens,
                              config=config)
    session = None
    unhandled = None
    try:
        with runtime:
            session = runtime.run()
    except Exception as exc:  # noqa: BLE001 - the measurement itself
        unhandled = f"{type(exc).__name__}: {exc}"
    wall = time.perf_counter() - started
    recs = runtime.recoveries
    beacon_visible = None
    if store_path is not None:
        from repro.obs.health import aggregate_store
        label = process_label or runtime._process_label
        report = aggregate_store(store_path)
        beacon_visible = any(row["process_id"] == label
                             for row in report.processes)
    return ChaosSessionDigest(
        app=app_name,
        seed=seed,
        supervised=supervised,
        armed=dict(arm),
        fired={k: v for k, v in plan.fired.items() if v},
        reason=session.reason if session is not None else "unhandled",
        recoveries=len(recs),
        rungs=tuple(r.rung for r in recs),
        restarts=sum(1 for r in recs if r.restarted),
        gave_up=any(e.kind == "recovery.gave_up"
                    for e in runtime.events),
        survived=(unhandled is None and session is not None
                  and session.reason != "died"
                  and session.survived_all),
        unhandled=unhandled,
        worker_timeouts=(runtime.executor.worker_timeouts
                         if runtime.executor is not None else 0),
        beacon_visible=beacon_visible,
        health_errors=sum(1 for e in runtime.events
                          if e.kind == "health.error"),
        wall_s=wall)


def run_storm(apps: Optional[Sequence[str]] = None,
              min_faults: int = 50, triggers: int = 2,
              include_worker_hang: bool = True,
              baseline: bool = True) -> StormResult:
    """The full storm: every app runs one session per entry in
    ``SESSION_ARMS`` (supervised), deterministic top-up sessions make
    up any shortfall below ``min_faults`` *fired*, and the same
    schedule reruns unsupervised as the survival baseline."""
    app_names = list(apps) if apps is not None \
        else [a.name for a in real_bug_apps()]
    result = StormResult()
    started = time.perf_counter()

    schedule: List[Tuple[str, Dict[str, int], int]] = []
    for i, name in enumerate(app_names):
        for j, arm in enumerate(SESSION_ARMS):
            schedule.append((name, arm, 42 + 10 * i + j))

    for name, arm, seed in schedule:
        result.sessions.append(run_chaos_session(
            name, arm, supervised=True, triggers=triggers, seed=seed))

    if include_worker_hang:
        # Dedicated worker-layer coverage: probes fan out to a fork
        # pool, the armed hang trips the host-side deadline, and the
        # task is rescued in-process.
        result.sessions.append(run_chaos_session(
            app_names[0], {"probe_hang": 1, "probe_raise": 1},
            supervised=True, triggers=triggers, seed=4242,
            workers=2, worker_timeout_s=0.5))

    # Deterministic top-up: guarantee the fired-fault floor even when
    # some armed kinds had no chance to fire.
    topup_seed = 9000
    while (sum(sum(s.fired.values()) for s in result.sessions)
           < min_faults):
        name = app_names[topup_seed % len(app_names)]
        result.sessions.append(run_chaos_session(
            name, TOPUP_ARM, supervised=True, triggers=triggers,
            seed=topup_seed))
        topup_seed += 1

    if baseline:
        for name, arm, seed in schedule:
            result.baseline.append(run_chaos_session(
                name, arm, supervised=False, triggers=triggers,
                seed=seed))

    result.faults_armed = sum(sum(s.armed.values())
                              for s in result.sessions)
    fired: Dict[str, int] = {}
    for s in result.sessions:
        for kind, count in s.fired.items():
            fired[kind] = fired.get(kind, 0) + count
    result.fired_by_kind = fired
    result.faults_fired = sum(fired.values())
    hist: Dict[int, int] = {}
    for s in result.sessions:
        for rung in s.rungs:
            hist[rung] = hist.get(rung, 0) + 1
    result.rung_histogram = hist
    result.wall_s = time.perf_counter() - started
    return result
