"""Cross-layer chaos faults for the recovery machinery itself.

The store's fault plan (:mod:`repro.store.faults`) tears files and
abandons locks; this plan injects failures into the layers the store
cannot reach -- the very machinery that is supposed to *handle*
failures.  Each kind names one injection point:

``checkpoint_missing``
    The next :meth:`~repro.checkpoint.manager.CheckpointManager.rollback_to`
    finds its snapshot gone (evicted, or its backing pages lost) and
    raises :class:`~repro.errors.CheckpointError`.

``checkpoint_corrupt``
    The next rollback restores from a snapshot whose page payloads were
    scribbled over -- the restore *succeeds* but the re-execution runs
    on garbage state (bit rot in the checkpoint store).

``probe_raise``
    The next diagnostic re-execution dies with a :class:`ChaosError`
    instead of producing an outcome (a crashed probe, in-process or in
    a worker).

``probe_hang``
    The next diagnostic re-execution hangs.  In-process, the engine's
    deadline fires after ``probe_timeout_ns`` of simulated time and the
    probe is re-run inline; on the fork backend the worker actually
    sleeps, the batch's host-side timeout fires, and the task is
    rescued in-process.

``monitor_miss``
    The error monitors produce a false negative for the next failure:
    no monitor claims the fault, and the runtime must survive an
    *unclaimed* failure instead of silently dying.

``validation_flaky``
    The next validation batch observes a flaky re-failure: iteration 0
    reports the buggy region failed under randomization, making the
    result inconsistent and forcing the retraction path.

``budget_exhaust``
    The recovery supervisor's next inter-rung budget check sees the
    per-failure budget exhausted mid-recovery, forcing the jump to the
    restart floor.

``sampled_false_positive``
    The next sampled guarded free raises a guard hit even though the
    object's canaries are intact -- a false detection on a correct
    program.  Validation must reject the resulting fast-path patch
    (the unpatched baseline passes), retract it, and execution must
    continue un-degraded.
"""

from __future__ import annotations

from repro.chaos.plan import FaultPlan
from repro.errors import ReproError

#: Simulated deadline for an in-process hung probe: 50 ms, a generous
#: bound for a re-execution window that normally costs a few ms.
DEFAULT_PROBE_TIMEOUT_NS = 50_000_000


class ChaosError(ReproError):
    """Raised by an injected chaos fault (a crashed probe).  A
    :class:`~repro.errors.ReproError` on purpose: it models the
    recovery machinery itself breaking, which the supervisor must
    catch and escalate past."""


class ChaosPlan(FaultPlan):
    """Armed faults for checkpoint/diagnosis/validation/worker layers."""

    KINDS = (
        "checkpoint_missing",
        "checkpoint_corrupt",
        "probe_raise",
        "probe_hang",
        "monitor_miss",
        "validation_flaky",
        "budget_exhaust",
        "sampled_false_positive",
    )

    def __init__(self, probe_timeout_ns: int = DEFAULT_PROBE_TIMEOUT_NS):
        super().__init__()
        self.probe_timeout_ns = probe_timeout_ns

    # ------------------------------------------------------------------
    # fault effects (invoked by the instrumented layers on take())
    # ------------------------------------------------------------------

    @staticmethod
    def scribble_checkpoint(checkpoint) -> int:
        """Overwrite one page payload of ``checkpoint`` with a garbage
        pattern of the same length (so restore plumbing still works);
        returns the page index hit, or -1 for an empty snapshot."""
        if not checkpoint.pages:
            return -1
        index = sorted(checkpoint.pages)[len(checkpoint.pages) // 2]
        payload = checkpoint.pages[index]
        checkpoint.pages[index] = b"\xa5" * len(payload)
        return index
