"""Cross-layer chaos harness (DESIGN.md §10).

A shared armed-fault protocol (:class:`~repro.chaos.plan.FaultPlan`,
generalized from the patch store's injector), the recovery-layer fault
vocabulary (:class:`~repro.chaos.faults.ChaosPlan`), and the fault
storm runner (:mod:`repro.chaos.storm`) that drives whole First-Aid
sessions under randomized fault plans to prove the degradation ladder
holds the line: no unhandled exceptions, every session recovers on
some rung or restarts cleanly.
"""

from repro.chaos.faults import ChaosError, ChaosPlan
from repro.chaos.plan import FaultPlan

__all__ = ["ChaosError", "ChaosPlan", "FaultPlan"]
