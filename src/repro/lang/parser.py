"""MiniC recursive-descent parser."""

from __future__ import annotations

from typing import List, Optional

from repro.errors import CompileError
from repro.lang import ast
from repro.lang.lexer import Lexer, Token

#: Binary operator precedence, loosest first (&&/|| are handled
#: separately for short-circuit evaluation).
PRECEDENCE = [
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]


class Parser:
    def __init__(self, source: str):
        self._tokens = Lexer(source).tokens()
        self._pos = 0

    # -- token plumbing --------------------------------------------------

    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _error(self, message: str) -> CompileError:
        tok = self._cur
        return CompileError(message, tok.line, tok.col)

    def _advance(self) -> Token:
        tok = self._cur
        if tok.kind != "eof":
            self._pos += 1
        return tok

    def _check(self, kind: str, value: Optional[str] = None) -> bool:
        tok = self._cur
        return tok.kind == kind and (value is None or tok.value == value)

    def _accept(self, kind: str, value: Optional[str] = None) \
            -> Optional[Token]:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: str, value: Optional[str] = None) -> Token:
        tok = self._accept(kind, value)
        if tok is None:
            want = value if value is not None else kind
            raise self._error(
                f"expected {want!r}, found {self._cur.value!r}")
        return tok

    # -- top level ---------------------------------------------------------

    def parse_module(self) -> ast.Module:
        module = ast.Module(line=1)
        while not self._check("eof"):
            self._expect("kw", "int")
            name_tok = self._expect("ident")
            if self._check("punct", "("):
                module.functions.append(self._function(name_tok))
            else:
                module.globals.append(self._global(name_tok))
        return module

    def _global(self, name_tok: Token) -> ast.GlobalDecl:
        init = 0
        if self._accept("punct", "="):
            sign = -1 if self._accept("punct", "-") else 1
            init = sign * self._expect("num").value
        self._expect("punct", ";")
        return ast.GlobalDecl(line=name_tok.line, name=name_tok.value,
                              init=init)

    def _function(self, name_tok: Token) -> ast.FuncDecl:
        self._expect("punct", "(")
        params: List[str] = []
        if not self._check("punct", ")"):
            while True:
                self._expect("kw", "int")
                params.append(self._expect("ident").value)
                if not self._accept("punct", ","):
                    break
        self._expect("punct", ")")
        body = self._block()
        return ast.FuncDecl(line=name_tok.line, name=name_tok.value,
                            params=params, body=body)

    # -- statements ----------------------------------------------------------

    def _block(self) -> List[ast.Stmt]:
        self._expect("punct", "{")
        stmts: List[ast.Stmt] = []
        while not self._accept("punct", "}"):
            if self._check("eof"):
                raise self._error("unterminated block")
            stmts.append(self._statement())
        return stmts

    def _statement(self) -> ast.Stmt:
        tok = self._cur
        if self._accept("kw", "int"):
            name = self._expect("ident").value
            init = None
            if self._accept("punct", "="):
                init = self._expression()
            self._expect("punct", ";")
            return ast.VarDecl(line=tok.line, name=name, init=init)
        if self._accept("kw", "if"):
            return self._if(tok)
        if self._accept("kw", "while"):
            self._expect("punct", "(")
            cond = self._expression()
            self._expect("punct", ")")
            body = self._block()
            return ast.While(line=tok.line, cond=cond, body=body)
        if self._accept("kw", "return"):
            value = None
            if not self._check("punct", ";"):
                value = self._expression()
            self._expect("punct", ";")
            return ast.Return(line=tok.line, value=value)
        if self._accept("kw", "break"):
            self._expect("punct", ";")
            return ast.Break(line=tok.line)
        if self._accept("kw", "continue"):
            self._expect("punct", ";")
            return ast.Continue(line=tok.line)
        # assignment or expression statement
        if (self._check("ident")
                and self._tokens[self._pos + 1].kind == "punct"
                and self._tokens[self._pos + 1].value == "="):
            name = self._advance().value
            self._advance()  # '='
            value = self._expression()
            self._expect("punct", ";")
            return ast.Assign(line=tok.line, name=name, value=value)
        expr = self._expression()
        self._expect("punct", ";")
        return ast.ExprStmt(line=tok.line, expr=expr)

    def _if(self, tok: Token) -> ast.If:
        self._expect("punct", "(")
        cond = self._expression()
        self._expect("punct", ")")
        then = self._block()
        otherwise: List[ast.Stmt] = []
        if self._accept("kw", "else"):
            if self._check("kw", "if"):
                nested_tok = self._advance()
                otherwise = [self._if(nested_tok)]
            else:
                otherwise = self._block()
        return ast.If(line=tok.line, cond=cond, then=then,
                      otherwise=otherwise)

    # -- expressions -----------------------------------------------------------

    def _expression(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self) -> ast.Expr:
        left = self._and_expr()
        while self._check("punct", "||"):
            tok = self._advance()
            right = self._and_expr()
            left = ast.ShortCircuit(line=tok.line, op="||", left=left,
                                    right=right)
        return left

    def _and_expr(self) -> ast.Expr:
        left = self._binary(0)
        while self._check("punct", "&&"):
            tok = self._advance()
            right = self._binary(0)
            left = ast.ShortCircuit(line=tok.line, op="&&", left=left,
                                    right=right)
        return left

    def _binary(self, level: int) -> ast.Expr:
        if level >= len(PRECEDENCE):
            return self._unary()
        ops = PRECEDENCE[level]
        left = self._binary(level + 1)
        while self._cur.kind == "punct" and self._cur.value in ops:
            tok = self._advance()
            right = self._binary(level + 1)
            left = ast.BinaryOp(line=tok.line, op=tok.value, left=left,
                                right=right)
        return left

    def _unary(self) -> ast.Expr:
        tok = self._cur
        if self._accept("punct", "!"):
            return ast.UnaryOp(line=tok.line, op="!",
                               operand=self._unary())
        if self._accept("punct", "-"):
            return ast.UnaryOp(line=tok.line, op="-",
                               operand=self._unary())
        if self._accept("punct", "~"):
            return ast.UnaryOp(line=tok.line, op="~",
                               operand=self._unary())
        return self._primary()

    def _primary(self) -> ast.Expr:
        tok = self._cur
        if self._accept("punct", "("):
            expr = self._expression()
            self._expect("punct", ")")
            return expr
        if self._check("num"):
            return ast.NumLit(line=tok.line, value=self._advance().value)
        if self._check("ident"):
            name = self._advance().value
            if self._accept("punct", "("):
                args: List[ast.Expr] = []
                if not self._check("punct", ")"):
                    while True:
                        args.append(self._expression())
                        if not self._accept("punct", ","):
                            break
                self._expect("punct", ")")
                return ast.Call(line=tok.line, name=name, args=args)
            return ast.VarRef(line=tok.line, name=name)
        raise self._error(f"unexpected token {tok.value!r} in expression")
