"""MiniC: a small C-like language compiled to VM bytecode.

The buggy applications in :mod:`repro.apps` are written in MiniC so that
their memory bugs read like the real C bugs they model.  The language is
deliberately tiny:

* one type, the 64-bit integer ``int`` (pointers are ints, as the VM's
  flat address space intends);
* functions, globals, locals; ``if``/``else``, ``while``, ``break``,
  ``continue``, ``return``;
* C operator set with precedence and short-circuit ``&&``/``||``;
* builtins mapping 1:1 to VM opcodes: ``malloc(n)``, ``free(p)``,
  ``load(p)``/``load4``/``load2``/``load1``, ``store(p, v)`` (+ sized
  variants), ``memset``, ``memcpy``, ``input()``, ``output(v)``,
  ``assert(c)``, ``halt()``, ``rand()``;
* ``//`` and ``/* */`` comments, decimal and hex literals.
"""

from repro.lang.compiler import compile_program
from repro.lang.lexer import Lexer, Token
from repro.lang.parser import Parser

__all__ = ["compile_program", "Lexer", "Token", "Parser"]
