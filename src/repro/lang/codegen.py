"""MiniC code generator: AST -> VM bytecode via the builders."""

from __future__ import annotations

from typing import Dict, List, Set

from repro.errors import CompileError
from repro.lang import ast
from repro.vm.builder import FunctionBuilder, ProgramBuilder
from repro.vm.program import Program

#: Builtins: name -> (arity options).  Sized load/store variants map to
#: the LOAD/STORE width operand.
_LOAD_SIZES = {"load": 8, "load4": 4, "load2": 2, "load1": 1}
_STORE_SIZES = {"store": 8, "store4": 4, "store2": 2, "store1": 1}

BUILTINS: Dict[str, tuple] = {
    "malloc": (1,),
    "free": (1,),
    "memset": (3,),
    "memcpy": (3,),
    "input": (0,),
    "output": (1,),
    "assert": (1,),
    "halt": (0,),
    "rand": (0,),
}
for _name in _LOAD_SIZES:
    BUILTINS[_name] = (1, 2)
for _name in _STORE_SIZES:
    BUILTINS[_name] = (2, 3)


class _TempPool:
    """Reusable anonymous slots, reset at statement boundaries."""

    def __init__(self, builder: FunctionBuilder):
        self._builder = builder
        self._free: List[int] = []
        self._all: List[int] = []

    def acquire(self) -> int:
        if self._free:
            return self._free.pop()
        slot = self._builder.temp()
        self._all.append(slot)
        return slot

    def release(self, slot: int) -> None:
        if slot in self._all and slot not in self._free:
            self._free.append(slot)

    def reset(self) -> None:
        self._free = list(self._all)


class FunctionCodegen:
    """Generates code for one function."""

    def __init__(self, module: ast.Module, func: ast.FuncDecl,
                 globals_map: Dict[str, int], func_names: Set[str],
                 global_inits: List[tuple] = ()):
        self.module = module
        self.func = func
        self.globals_map = globals_map
        self.func_names = func_names
        self.global_inits = list(global_inits)
        self.builder = FunctionBuilder(func.name, func.params)
        # Block-scoped locals: a stack of name->slot maps.  Slots are
        # never reused across sibling scopes (simple and safe); the
        # builder name is uniquified so same-named variables in
        # different blocks get distinct slots.
        self.scopes: List[Dict[str, int]] = [
            {p: self.builder.local(p) for p in func.params}]
        self._decl_counter = 0
        self.temps = _TempPool(self.builder)
        self._label_counter = 0
        self._loop_stack: List[tuple] = []  # (continue_label, break_label)

    def _error(self, node: ast.Node, message: str) -> CompileError:
        return CompileError(message, node.line, 0)

    def _label(self, hint: str) -> str:
        self._label_counter += 1
        return f"${hint}{self._label_counter}"

    # -- expressions -----------------------------------------------------

    def expr(self, node: ast.Expr) -> int:
        """Emit code computing ``node``; returns the result slot."""
        b = self.builder
        if isinstance(node, ast.NumLit):
            t = self.temps.acquire()
            b.const(t, node.value)
            return t
        if isinstance(node, ast.VarRef):
            slot = self._lookup(node.name)
            if slot is not None:
                return slot
            if node.name in self.globals_map:
                t = self.temps.acquire()
                b.gload(t, self.globals_map[node.name])
                return t
            raise self._error(node, f"undeclared variable {node.name!r}")
        if isinstance(node, ast.UnaryOp):
            src = self.expr(node.operand)
            t = self.temps.acquire()
            if node.op == "!":
                b.logical_not(t, src)
            elif node.op == "-":
                b.neg(t, src)
            elif node.op == "~":
                ones = self.temps.acquire()
                b.const(ones, (1 << 64) - 1)
                b.binop("^", t, src, ones)
                self.temps.release(ones)
            else:  # pragma: no cover - parser only emits the above
                raise self._error(node, f"bad unary op {node.op!r}")
            self.temps.release(src)
            return t
        if isinstance(node, ast.BinaryOp):
            left = self.expr(node.left)
            right = self.expr(node.right)
            t = self.temps.acquire()
            b.binop(node.op, t, left, right)
            self.temps.release(left)
            self.temps.release(right)
            return t
        if isinstance(node, ast.ShortCircuit):
            return self._short_circuit(node)
        if isinstance(node, ast.Call):
            return self._call(node)
        raise self._error(node, f"cannot generate code for {node!r}")

    def _short_circuit(self, node: ast.ShortCircuit) -> int:
        b = self.builder
        t = self.temps.acquire()
        done = self._label("sc_end")
        short = self._label("sc_short")
        left = self.expr(node.left)
        if node.op == "&&":
            b.jz(left, short)
        else:
            b.jnz(left, short)
        self.temps.release(left)
        right = self.expr(node.right)
        zero = self.temps.acquire()
        b.const(zero, 0)
        b.binop("!=", t, right, zero)
        self.temps.release(zero)
        self.temps.release(right)
        b.jmp(done)
        b.label(short)
        b.const(t, 0 if node.op == "&&" else 1)
        b.label(done)
        return t

    def _call(self, node: ast.Call) -> int:
        b = self.builder
        name = node.name
        if name in BUILTINS:
            if len(node.args) not in BUILTINS[name]:
                raise self._error(
                    node, f"{name} takes {BUILTINS[name]} args, "
                    f"got {len(node.args)}")
            return self._builtin(node)
        if name not in self.func_names:
            raise self._error(node, f"unknown function {name!r}")
        args = [self.expr(a) for a in node.args]
        t = self.temps.acquire()
        b.call(t, name, args)
        for a in args:
            self.temps.release(a)
        return t

    def _builtin(self, node: ast.Call) -> int:
        b = self.builder
        name = node.name
        args = [self.expr(a) for a in node.args]
        result = None
        if name == "malloc":
            result = self.temps.acquire()
            b.malloc(result, args[0])
        elif name == "free":
            b.free(args[0])
        elif name in _LOAD_SIZES:
            addr = args[0]
            if len(args) == 2:
                addr = self.temps.acquire()
                b.binop("+", addr, args[0], args[1])
            result = self.temps.acquire()
            b.load(result, addr, 0, _LOAD_SIZES[name])
            if len(args) == 2:
                self.temps.release(addr)
        elif name in _STORE_SIZES:
            if len(args) == 3:
                addr = self.temps.acquire()
                b.binop("+", addr, args[0], args[1])
                b.store(addr, args[2], 0, _STORE_SIZES[name])
                self.temps.release(addr)
            else:
                b.store(args[0], args[1], 0, _STORE_SIZES[name])
        elif name == "memset":
            b.memset(args[0], args[1], args[2])
        elif name == "memcpy":
            b.memcpy(args[0], args[1], args[2])
        elif name == "input":
            result = self.temps.acquire()
            b.input(result)
        elif name == "output":
            b.output(args[0])
        elif name == "assert":
            b.assert_(args[0], f"{self.func.name}:{node.line}")
        elif name == "halt":
            b.halt()
        elif name == "rand":
            result = self.temps.acquire()
            b.rand(result)
        else:  # pragma: no cover
            raise self._error(node, f"unhandled builtin {name}")
        for a in args:
            self.temps.release(a)
        if result is None:
            result = self.temps.acquire()
            b.const(result, 0)
        return result

    # -- scoping -----------------------------------------------------------

    def _lookup(self, name: str) -> Optional[int]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    def _declare(self, node: ast.Node, name: str) -> int:
        if name in self.scopes[-1]:
            raise self._error(node, f"redeclared local {name!r}")
        if name in self.globals_map:
            raise self._error(node, f"local {name!r} shadows a global")
        self._decl_counter += 1
        slot = self.builder.local(f"{name}@{self._decl_counter}")
        self.scopes[-1][name] = slot
        return slot

    # -- statements ---------------------------------------------------------

    def block(self, stmts: List[ast.Stmt], new_scope: bool = True) -> None:
        if new_scope:
            self.scopes.append({})
        try:
            for stmt in stmts:
                self.statement(stmt)
                self.temps.reset()
        finally:
            if new_scope:
                self.scopes.pop()

    def statement(self, node: ast.Stmt) -> None:
        b = self.builder
        if isinstance(node, ast.VarDecl):
            if node.init is not None:
                src = self.expr(node.init)
                b.mov(self._declare(node, node.name), src)
            else:
                b.const(self._declare(node, node.name), 0)
        elif isinstance(node, ast.Assign):
            src = self.expr(node.value)
            slot = self._lookup(node.name)
            if slot is not None:
                b.mov(slot, src)
            elif node.name in self.globals_map:
                b.gstore(self.globals_map[node.name], src)
            else:
                raise self._error(
                    node, f"assignment to undeclared {node.name!r}")
        elif isinstance(node, ast.If):
            lab_else = self._label("else")
            lab_end = self._label("endif")
            cond = self.expr(node.cond)
            b.jz(cond, lab_else)
            self.temps.reset()
            self.block(node.then)
            b.jmp(lab_end)
            b.label(lab_else)
            self.block(node.otherwise)
            b.label(lab_end)
        elif isinstance(node, ast.While):
            lab_cond = self._label("while")
            lab_end = self._label("endwhile")
            b.label(lab_cond)
            cond = self.expr(node.cond)
            b.jz(cond, lab_end)
            self.temps.reset()
            self._loop_stack.append((lab_cond, lab_end))
            self.block(node.body)
            self._loop_stack.pop()
            b.jmp(lab_cond)
            b.label(lab_end)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                b.ret(self.expr(node.value))
            else:
                b.ret()
        elif isinstance(node, ast.Break):
            if not self._loop_stack:
                raise self._error(node, "break outside loop")
            b.jmp(self._loop_stack[-1][1])
        elif isinstance(node, ast.Continue):
            if not self._loop_stack:
                raise self._error(node, "continue outside loop")
            b.jmp(self._loop_stack[-1][0])
        elif isinstance(node, ast.ExprStmt):
            self.expr(node.expr)
        else:
            raise self._error(node, f"cannot generate statement {node!r}")

    def generate(self):
        # main() gets a prologue applying nonzero global initializers
        # (the Machine zeroes the global table at process start).
        if self.func.name == "main" and self.global_inits:
            t = self.temps.acquire()
            for slot, value in self.global_inits:
                self.builder.const(t, value)
                self.builder.gstore(slot, t)
            self.temps.release(t)
        self.block(self.func.body)
        return self.builder.build()


def generate_module(module: ast.Module, name: str = "program") -> Program:
    """Generate a linked :class:`Program` from a parsed module."""
    pb = ProgramBuilder(name)
    globals_map: Dict[str, int] = {}
    for g in module.globals:
        if g.name in globals_map:
            raise CompileError(f"redeclared global {g.name!r}", g.line)
        globals_map[g.name] = pb.global_slot(g.name)
    func_names = set()
    for fn in module.functions:
        if fn.name in func_names:
            raise CompileError(f"redeclared function {fn.name!r}", fn.line)
        if fn.name in BUILTINS:
            raise CompileError(
                f"function {fn.name!r} collides with a builtin", fn.line)
        func_names.add(fn.name)
    inits = [(globals_map[g.name], g.init & ((1 << 64) - 1))
             for g in module.globals if g.init]
    for fn in module.functions:
        pb.add_function(FunctionCodegen(
            module, fn, globals_map, func_names, inits).generate())
    return pb.build()
