"""MiniC lexer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import CompileError

KEYWORDS = frozenset({
    "int", "if", "else", "while", "return", "break", "continue",
})

#: Multi-character punctuation, longest first so maximal munch works.
PUNCT2 = ("==", "!=", "<=", ">=", "&&", "||", "<<", ">>")
PUNCT1 = "+-*/%&|^!<>=(){},;~"


@dataclass(frozen=True)
class Token:
    kind: str       # "num" | "ident" | "kw" | "punct" | "eof"
    value: object   # int for num, str otherwise
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.col})"


class Lexer:
    """Turns MiniC source text into a token list."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1

    def _error(self, message: str) -> CompileError:
        return CompileError(message, self.line, self.col)

    def _advance(self, n: int = 1) -> None:
        for _ in range(n):
            if self.pos < len(self.source) and self.source[self.pos] == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
            self.pos += 1

    def _peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.source[i] if i < len(self.source) else ""

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.col
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self.pos >= len(self.source):
                        raise CompileError("unterminated block comment",
                                           start_line, start_col)
                    self._advance()
                self._advance(2)
            else:
                return

    def tokens(self) -> List[Token]:
        return list(self._iter_tokens())

    def _iter_tokens(self) -> Iterator[Token]:
        while True:
            self._skip_trivia()
            line, col = self.line, self.col
            ch = self._peek()
            if not ch:
                yield Token("eof", "", line, col)
                return
            if ch.isdigit():
                yield self._number(line, col)
            elif ch.isalpha() or ch == "_":
                yield self._ident(line, col)
            else:
                two = ch + self._peek(1)
                if two in PUNCT2:
                    self._advance(2)
                    yield Token("punct", two, line, col)
                elif ch in PUNCT1:
                    self._advance()
                    yield Token("punct", ch, line, col)
                else:
                    raise self._error(f"unexpected character {ch!r}")

    def _number(self, line: int, col: int) -> Token:
        start = self.pos
        # NB: membership tests must exclude the empty end-of-source
        # sentinel ("" in "xX" is True in Python).
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            hexdigits = "0123456789abcdef"
            nxt = self._peek()
            if not nxt or nxt.lower() not in hexdigits:
                raise self._error("malformed hex literal")
            while self._peek() and self._peek().lower() in hexdigits:
                self._advance()
            return Token("num", int(self.source[start:self.pos], 16),
                         line, col)
        while self._peek().isdigit():
            self._advance()
        if self._peek().isalpha() or self._peek() == "_":
            raise self._error("identifier cannot start with a digit")
        return Token("num", int(self.source[start:self.pos]), line, col)

    def _ident(self, line: int, col: int) -> Token:
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start:self.pos]
        kind = "kw" if text in KEYWORDS else "ident"
        return Token(kind, text, line, col)
