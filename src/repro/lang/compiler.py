"""Compiler driver: MiniC source text -> linked VM Program."""

from __future__ import annotations

from repro.lang.codegen import generate_module
from repro.lang.parser import Parser
from repro.vm.program import Program


def compile_program(source: str, name: str = "program") -> Program:
    """Compile MiniC source to a ready-to-run :class:`Program`.

    Raises :class:`repro.errors.CompileError` with line information on
    malformed source, and :class:`repro.errors.ProgramError` if codegen
    produced an inconsistent program (which would be a compiler bug).
    """
    module = Parser(source).parse_module()
    return generate_module(module, name)
