"""MiniC abstract syntax tree.

Plain dataclasses; each node carries the source line for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class Node:
    line: int = 0


# -- expressions ---------------------------------------------------------

@dataclass
class NumLit(Node):
    value: int = 0


@dataclass
class VarRef(Node):
    name: str = ""


@dataclass
class UnaryOp(Node):
    op: str = ""           # "!" | "-" | "~"
    operand: "Expr" = None


@dataclass
class BinaryOp(Node):
    op: str = ""
    left: "Expr" = None
    right: "Expr" = None


@dataclass
class ShortCircuit(Node):
    op: str = ""           # "&&" | "||"
    left: "Expr" = None
    right: "Expr" = None


@dataclass
class Call(Node):
    name: str = ""
    args: List["Expr"] = field(default_factory=list)


Expr = Node  # any of the above


# -- statements ----------------------------------------------------------

@dataclass
class VarDecl(Node):
    name: str = ""
    init: Optional[Expr] = None


@dataclass
class Assign(Node):
    name: str = ""
    value: Expr = None


@dataclass
class If(Node):
    cond: Expr = None
    then: List["Stmt"] = field(default_factory=list)
    otherwise: List["Stmt"] = field(default_factory=list)


@dataclass
class While(Node):
    cond: Expr = None
    body: List["Stmt"] = field(default_factory=list)


@dataclass
class Return(Node):
    value: Optional[Expr] = None


@dataclass
class Break(Node):
    pass


@dataclass
class Continue(Node):
    pass


@dataclass
class ExprStmt(Node):
    expr: Expr = None


Stmt = Node


# -- top level -----------------------------------------------------------

@dataclass
class GlobalDecl(Node):
    name: str = ""
    init: int = 0


@dataclass
class FuncDecl(Node):
    name: str = ""
    params: List[str] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)


@dataclass
class Module(Node):
    globals: List[GlobalDecl] = field(default_factory=list)
    functions: List[FuncDecl] = field(default_factory=list)
