"""Structured event log.

Every First-Aid component appends :class:`Event` records to a shared
:class:`EventLog`: checkpoints taken, failures caught, rollbacks,
diagnosis iterations, patches generated/applied/validated.  The log is
both the diagnosis log shipped in bug reports (Figure 5, item 2) and the
primary observability surface for tests.

Two production concerns shape the implementation:

* **Bounded growth.**  A long normal-mode run emits a checkpoint event
  every interval, forever.  Constructing the log with ``max_events``
  turns it into a ring buffer that keeps only the most recent records
  (and counts what it dropped); the runtime uses this in normal mode.
* **Deterministic rendering.**  Rendered events are diffed across runs
  and machines, so :meth:`Event.render` canonicalizes payloads: dict
  keys sort at every nesting level and floats format via ``repr``-exact
  shortest form, never locale- or insertion-order-dependent.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Union


def canonical(value: Any) -> str:
    """Deterministic rendering of one payload value.

    Floats use ``repr`` (shortest round-trip form, platform-stable for
    IEEE doubles); dicts render with sorted keys at every level; lists
    and tuples render recursively; everything else falls back to
    ``str``.
    """
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, dict):
        inner = ", ".join(f"{k}={canonical(v)}"
                          for k, v in sorted(value.items(),
                                             key=lambda kv: str(kv[0])))
        return "{" + inner + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(canonical(v) for v in value) + "]"
    return str(value)


@dataclass(frozen=True)
class Event:
    """A single structured log record.

    ``time_ns`` is simulated time (see :mod:`repro.util.simclock`),
    ``kind`` is a short machine-readable tag such as ``"checkpoint"`` or
    ``"diagnosis.iteration"``, and ``data`` holds kind-specific fields.
    """

    time_ns: int
    kind: str
    data: Dict[str, Any] = field(default_factory=dict)

    def render(self, redact_time: bool = False) -> str:
        """One-line rendering.

        ``redact_time`` replaces the timestamp with a fixed-width mask.
        Serial and parallel recovery produce identical event *content*
        but legitimately different simulated timestamps (the parallel
        clock charges batches as max-over-workers), so equivalence
        checks compare time-redacted renderings.
        """
        details = " ".join(f"{k}={canonical(v)}"
                           for k, v in sorted(self.data.items()))
        stamp = "*" * 9 if redact_time else f"{self.time_ns / 1e9:10.6f}"
        return f"[{stamp}s] {self.kind}: {details}"


class EventLog:
    """Event log with simple querying.

    Append-only by default; with ``max_events`` set it becomes a ring
    buffer bounded to that many records (:attr:`dropped` counts the
    evicted ones).
    """

    def __init__(self, max_events: Optional[int] = None):
        if max_events is not None and max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.max_events = max_events
        self._events: Union[List[Event], Deque[Event]] = (
            [] if max_events is None else deque(maxlen=max_events))
        self.emitted = 0
        #: Optional observer called with every emitted event (the
        #: telemetry flight recorder taps the log through this).
        self.tap: Optional[Callable[[Event], None]] = None

    @property
    def dropped(self) -> int:
        """Events evicted by the ring bound so far."""
        return self.emitted - len(self._events)

    def emit(self, time_ns: int, kind: str, **data: Any) -> Event:
        event = Event(time_ns=time_ns, kind=kind, data=data)
        self._events.append(event)
        self.emitted += 1
        if self.tap is not None:
            self.tap(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def of_kind(self, kind: str) -> List[Event]:
        """All events whose kind equals or is a dotted prefix of ``kind``.

        ``of_kind("diagnosis")`` matches ``"diagnosis.iteration"`` too.
        """
        prefix = kind + "."
        return [e for e in self._events
                if e.kind == kind or e.kind.startswith(prefix)]

    def last(self, kind: Optional[str] = None) -> Optional[Event]:
        if kind is None:
            return self._events[-1] if self._events else None
        matches = self.of_kind(kind)
        return matches[-1] if matches else None

    def render(self) -> str:
        return "\n".join(e.render() for e in self._events)
