"""Structured event log.

Every First-Aid component appends :class:`Event` records to a shared
:class:`EventLog`: checkpoints taken, failures caught, rollbacks,
diagnosis iterations, patches generated/applied/validated.  The log is
both the diagnosis log shipped in bug reports (Figure 5, item 2) and the
primary observability surface for tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class Event:
    """A single structured log record.

    ``time_ns`` is simulated time (see :mod:`repro.util.simclock`),
    ``kind`` is a short machine-readable tag such as ``"checkpoint"`` or
    ``"diagnosis.iteration"``, and ``data`` holds kind-specific fields.
    """

    time_ns: int
    kind: str
    data: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        details = " ".join(f"{k}={v}" for k, v in sorted(self.data.items()))
        return f"[{self.time_ns / 1e9:10.6f}s] {self.kind}: {details}"


class EventLog:
    """Append-only event log with simple querying."""

    def __init__(self) -> None:
        self._events: List[Event] = []

    def emit(self, time_ns: int, kind: str, **data: Any) -> Event:
        event = Event(time_ns=time_ns, kind=kind, data=data)
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def of_kind(self, kind: str) -> List[Event]:
        """All events whose kind equals or is a dotted prefix of ``kind``.

        ``of_kind("diagnosis")`` matches ``"diagnosis.iteration"`` too.
        """
        prefix = kind + "."
        return [e for e in self._events
                if e.kind == kind or e.kind.startswith(prefix)]

    def last(self, kind: Optional[str] = None) -> Optional[Event]:
        if kind is None:
            return self._events[-1] if self._events else None
        matches = self.of_kind(kind)
        return matches[-1] if matches else None

    def render(self) -> str:
        return "\n".join(e.render() for e in self._events)
