"""Deterministic random number generation.

Determinism is load-bearing in this system: diagnosis re-executes the
program from checkpoints and expects identical behaviour, so any
randomness visible to the simulated program must be part of the
checkpointed state.  :class:`DeterministicRNG` is a small, snapshottable
xorshift generator used for

* the randomized allocator in validation mode (seeded differently per
  validation iteration, per the paper's Section 5), and
* synthetic workload generation.

It deliberately avoids :mod:`random`'s global state.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1


class DeterministicRNG:
    """xorshift64* generator with explicit, copyable state."""

    __slots__ = ("_state",)

    def __init__(self, seed: int = 0x9E3779B97F4A7C15):
        seed &= _MASK64
        # A zero state would lock the generator at zero forever.
        self._state = seed if seed else 0x106689D45497FDB5

    def next_u64(self) -> int:
        x = self._state
        x ^= (x >> 12)
        x ^= (x << 25) & _MASK64
        x ^= (x >> 27)
        self._state = x
        return (x * 0x2545F4914F6CDD1D) & _MASK64

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi] inclusive."""
        if hi < lo:
            raise ValueError(f"empty range [{lo}, {hi}]")
        span = hi - lo + 1
        return lo + self.next_u64() % span

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return (self.next_u64() >> 11) / float(1 << 53)

    def choice(self, seq):
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return seq[self.randint(0, len(seq) - 1)]

    def shuffle(self, seq: list) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(seq) - 1, 0, -1):
            j = self.randint(0, i)
            seq[i], seq[j] = seq[j], seq[i]

    def getstate(self) -> int:
        return self._state

    def setstate(self, state: int) -> None:
        self._state = state & _MASK64

    def fork(self, salt: int) -> "DeterministicRNG":
        """Derive an independent stream, e.g. one per validation run."""
        return DeterministicRNG(self._state ^ (salt * 0xBF58476D1CE4E5B9))
