"""Shared utilities: call-site signatures, event logging, deterministic
randomness, and the simulated clock / cost model."""

from repro.util.callsite import CallSite
from repro.util.events import Event, EventLog
from repro.util.rng import DeterministicRNG
from repro.util.simclock import CostModel, SimClock

__all__ = [
    "CallSite",
    "Event",
    "EventLog",
    "DeterministicRNG",
    "CostModel",
    "SimClock",
]
