"""Call-site signatures.

The paper defines a call-site as "the return addresses of the most recent
three functions on the stack" (Section 2).  Memory objects allocated or
deallocated from the same call-site tend to share characteristics (the
same buffer being overflowed, the same cache entry being prematurely
freed), so the call-site serves as the signature of bug-triggering
objects and as the application point of a runtime patch.

In the simulated VM a "return address" is the pair ``(function_name, pc)``
of the instruction *after* the call in the caller's frame; for the frame
that performed the allocation itself we use the address of the
allocation instruction.  The signature is the tuple of up to
:data:`CallSite.DEPTH` such pairs, innermost first.

Call-sites are **hash-consed**: the VM captures one on every MALLOC and
FREE, and a program has only a handful of distinct signatures, so
:meth:`CallSite.intern` returns a shared canonical instance per frame
tuple instead of allocating a fresh object per operation.  Interning
also makes cross-process transfer cheap and canonical: pickling routes
through :meth:`intern` (see ``__reduce__``), so a call-site shipped to a
re-execution worker and back deduplicates against the local table.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

Addr = Tuple[str, int]


class CallSite:
    """An immutable, hashable multi-level call-site signature."""

    DEPTH = 3

    __slots__ = ("frames",)

    def __init__(self, frames: Iterable[Addr]):
        frames = tuple(frames)[: self.DEPTH]
        if not frames:
            raise ValueError("a call-site needs at least one frame")
        for fr in frames:
            if not (isinstance(fr, tuple) and len(fr) == 2
                    and isinstance(fr[0], str) and isinstance(fr[1], int)):
                raise ValueError(f"bad call-site frame: {fr!r}")
        object.__setattr__(self, "frames", frames)

    @classmethod
    def intern(cls, frames: Iterable[Addr]) -> "CallSite":
        """The canonical shared instance for ``frames``.

        The hot per-malloc capture path must not allocate a duplicate
        object (plus its validated frame tuple) for every operation from
        the same site; the table is bounded by the number of distinct
        call-sites in the program.
        """
        key = tuple(frames)[: cls.DEPTH]
        site = _INTERNED.get(key)
        if site is None:
            site = cls(key)
            _INTERNED[site.frames] = site
        return site

    def __setattr__(self, name, value):
        raise AttributeError("CallSite is immutable")

    def __reduce__(self):
        # Default pickling would call __setattr__ (which raises);
        # routing through intern() both fixes that and deduplicates
        # call-sites shipped back from worker processes.
        return (CallSite.intern, (self.frames,))

    @property
    def innermost(self) -> Addr:
        """The frame closest to the allocation/deallocation itself."""
        return self.frames[0]

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        return isinstance(other, CallSite) and self.frames == other.frames

    def __hash__(self) -> int:
        return hash(self.frames)

    def __repr__(self) -> str:
        inner = "<".join(f"{fn}+{pc}" for fn, pc in self.frames)
        return f"CallSite({inner})"

    def render(self) -> str:
        """Multi-line rendering used in bug reports, innermost first,
        mirroring the paper's Figure 5 format."""
        return "\n".join(f"  0x{pc:08x}@{fn}" for fn, pc in self.frames)

    def to_json(self) -> list:
        return [[fn, pc] for fn, pc in self.frames]

    @classmethod
    def from_json(cls, data) -> "CallSite":
        return cls.intern((str(fn), int(pc)) for fn, pc in data)


#: The intern table.  Keyed by the validated frame tuple; bounded by
#: the number of distinct call-sites across all loaded programs.
_INTERNED: Dict[Tuple[Addr, ...], CallSite] = {}


def interned_count() -> int:
    """Testing/benchmark hook: current intern-table size."""
    return len(_INTERNED)
