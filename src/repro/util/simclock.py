"""Simulated time and the cost model.

The paper reports wall-clock quantities measured on a 2005-era Xeon:
recovery seconds, normal-run overhead percentages, MB/s of checkpoint
traffic.  This reproduction runs a VM interpreter in Python, so raw wall
clock would measure the interpreter, not the system.  Instead every
component charges *simulated* nanoseconds to a :class:`SimClock` through
an explicit :class:`CostModel`.

Calibration (documented in DESIGN.md): one VM instruction costs 10 us of
simulated time, so the paper's 200 ms checkpoint interval corresponds to
20,000 instructions.  All other constants are expressed relative to that
scale and were chosen so that the *relative* costs match the paper's
observations: allocator-extension work is a small multiple of an
allocation, copying a COW page costs about a hundred instructions, and a
rollback costs roughly one checkpoint's worth of page restores.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass
class CostModel:
    """Simulated cost constants, all in nanoseconds.

    Instances are plain data so experiments can ablate individual costs
    (e.g. set ``patch_lookup_ns`` to zero to measure checkpointing alone).
    """

    #: Cost of executing one VM instruction.
    instr_ns: int = 10_000
    #: Base cost of a malloc/free in the underlying Lea allocator,
    #: charged on top of the MALLOC/FREE instruction itself.
    alloc_ns: int = 8_000
    #: Extension bookkeeping per allocation/deallocation (metadata,
    #: call-site capture) when the extension is enabled.
    extension_ns: int = 3_000
    #: Patch-pool lookup per allocation/deallocation in normal mode.
    patch_lookup_ns: int = 1_500
    #: Applying a preventive/exposing change to one object (padding,
    #: canary or zero fill), charged per 64 bytes touched.
    fill_per_64b_ns: int = 400
    #: Copying one dirty (COW) page when a checkpoint is taken.
    #: Flashback copies lazily at write-fault time, so the effective
    #: per-page cost is a fault trap + copy; the value is calibrated so
    #: the largest-working-set benchmarks land near the paper's
    #: worst-case ~11% checkpointing overhead at this repo's 1/100
    #: heap scale.
    page_copy_ns: int = 250_000
    #: Fixed cost of taking a checkpoint (fork-like operation).
    checkpoint_base_ns: int = 2_000_000
    #: Fixed cost of restoring a checkpoint (rollback).
    restore_base_ns: int = 3_000_000
    #: Restoring one page during rollback.
    page_restore_ns: int = 500_000
    #: Per-load/store tracing cost in validation mode (the Pin analogue;
    #: heavy, which is why validation runs off the critical path).
    trace_ns: int = 5_000
    #: Re-execution from a checkpoint replays journaled input at CPU
    #: speed with warm caches and no I/O waits, so it runs much faster
    #: than the original execution.  Diagnostic/validation re-executions
    #: charge instr_ns divided by this factor.
    replay_speedup: int = 20

    def replay_model(self) -> "CostModel":
        """A copy of this model with instruction cost scaled down by
        ``replay_speedup`` (used for diagnosis/validation re-execution)."""
        clone = replace(self)
        clone.instr_ns = max(1, self.instr_ns // max(1, self.replay_speedup))
        return clone

    def fill_cost(self, nbytes: int) -> int:
        """Cost of writing a fill pattern over ``nbytes`` of heap."""
        return ((nbytes + 63) // 64) * self.fill_per_64b_ns


class SimClock:
    """Monotonic simulated clock; components charge costs to it."""

    __slots__ = ("_now_ns",)

    def __init__(self, start_ns: int = 0):
        self._now_ns = int(start_ns)

    @property
    def now_ns(self) -> int:
        return self._now_ns

    @property
    def now_s(self) -> float:
        return self._now_ns / 1e9

    def charge(self, ns: int) -> None:
        if ns < 0:
            raise ValueError("cannot charge negative time")
        self._now_ns += ns

    def snapshot(self) -> int:
        return self._now_ns

    def restore(self, saved_ns: int) -> None:
        """Used only by tests; rollbacks do NOT rewind the clock --
        diagnosis time is real time spent, exactly as in the paper."""
        self._now_ns = int(saved_ns)
