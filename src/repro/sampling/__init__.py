"""Sampled always-on detection (GWP-ASan-style).

First-Aid as reproduced so far is purely reactive: the pipeline only
engages after a failure monitor fires, so every bug costs at least one
crash or corruption event somewhere in the fleet before a patch
exists.  GWP-ASan (PAPERS.md) shows that guarding a *sampled* subset
of allocations with redzones and delayed-free canaries catches
production memory bugs pre-crash at negligible overhead.

This package provides the two pure pieces of that plane:

* :class:`SampleSelector` -- deterministic 1/N selection over the
  allocation sequence number, salted by the process entropy seed.
  Identical picks across serial and fork execution backends and across
  rollback/re-execution (``alloc_seq`` restores with checkpoints, so a
  replay guards exactly the allocations the original run guarded).

* :class:`SampledDetection` -- the attribution record captured at a
  guard hit: bug type, alloc/free call-sites, size, corruption offset,
  and the detection time.  It rides on
  :class:`repro.errors.SampledGuardFault` into the supervisor ladder,
  where :meth:`DiagnosticEngine.diagnose_sampled` seeds the
  change-group directly from it (skipping most of diagnosis phase 1).

The impure half -- guard placement, canary checks, quarantine origin
accounting -- lives in :mod:`repro.heap.extension`, which consumes the
selector and produces detections.
"""

from repro.sampling.detect import SampledDetection, SamplingStats
from repro.sampling.selector import SampleSelector, mix64

__all__ = [
    "SampleSelector",
    "SampledDetection",
    "SamplingStats",
    "mix64",
]
