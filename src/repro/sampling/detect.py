"""Guard-hit attribution records and sampling counters."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.bugtypes import BugType
from repro.util.callsite import CallSite


@dataclass(frozen=True)
class SampledDetection:
    """Everything a guard hit knows at the instant it fires.

    This is the whole point of sampling: the bug type and call-site
    arrive *already in hand*, so the diagnostic engine can seed the
    change-group directly instead of re-deriving both through phase-1
    and phase-2 re-executions.
    """

    bug_type: BugType
    alloc_site: Optional[CallSite]
    free_site: Optional[CallSite]
    size: int                     # user payload size of the guarded object
    offset: Optional[int]         # corruption offset, relative to the
                                  # user payload start (negative = pre
                                  # redzone); None when not applicable
    alloc_seq: int                # which sampled allocation was hit
    time_ns: int                  # simulated detection time

    @property
    def site(self) -> Optional[CallSite]:
        """The call-site a patch for this bug type applies at --
        mirrors the alloc/free split of
        :func:`repro.core.bugtypes.patch_point`."""
        if self.bug_type.patch_point == "alloc":
            return self.alloc_site or self.free_site
        return self.free_site or self.alloc_site

    def describe(self) -> str:
        parts = [f"sampled guard hit: {self.bug_type.value}",
                 f"size={self.size}"]
        if self.offset is not None:
            parts.append(f"offset={self.offset}")
        if self.alloc_site is not None:
            parts.append(f"alloc={self.alloc_site.render()}")
        if self.free_site is not None:
            parts.append(f"free={self.free_site.render()}")
        return " ".join(parts)


@dataclass
class SamplingStats:
    """Per-process sampling counters.

    The *work* counters (allocs, sampled_allocs, sampled_frees,
    guard_scans) snapshot/restore with the heap so rollback
    re-execution does not double-count replayed allocations.  The
    *event* counters (detections, suppressed, first_detection_ns)
    record guard hits that really happened: a rollback erases the
    heap state that caused them but not the fact of the detection, so
    restore keeps them monotonic instead of rolling them back."""

    allocs: int = 0               # allocations seen while sampling
    sampled_allocs: int = 0       # allocations promoted to guarded
    sampled_frees: int = 0        # guarded objects delay-freed
    detections: int = 0           # guard hits raised
    suppressed: int = 0           # hits swallowed (site already patched)
    guard_scans: int = 0          # boundary sweeps over live guards
    first_detection_ns: int = 0   # sim time of the first guard hit

    @property
    def effective_rate(self) -> float:
        """Observed sampling fraction (sampled / all allocations)."""
        if not self.allocs:
            return 0.0
        return self.sampled_allocs / self.allocs

    def snapshot(self) -> tuple:
        return (self.allocs, self.sampled_allocs, self.sampled_frees,
                self.detections, self.suppressed, self.guard_scans,
                self.first_detection_ns)

    def restore(self, snap: tuple) -> None:
        (self.allocs, self.sampled_allocs, self.sampled_frees,
         detections, suppressed, self.guard_scans,
         first_detection_ns) = snap
        self.detections = max(self.detections, detections)
        self.suppressed = max(self.suppressed, suppressed)
        if first_detection_ns:
            self.first_detection_ns = (
                min(self.first_detection_ns, first_detection_ns)
                if self.first_detection_ns else first_detection_ns)

    def to_dict(self) -> dict:
        return {
            "allocs": self.allocs,
            "sampled_allocs": self.sampled_allocs,
            "sampled_frees": self.sampled_frees,
            "detections": self.detections,
            "suppressed": self.suppressed,
            "guard_scans": self.guard_scans,
            "first_detection_ns": self.first_detection_ns,
        }
