"""Deterministic sample selection.

Every allocation carries a monotonically increasing sequence number
(``alloc_seq`` in the allocator extension) that is captured and
restored by checkpoints.  Selection is a pure function of
``(entropy_seed, rate, alloc_seq)`` through a splitmix64-style integer
mixer, which gives the three properties the sampling plane needs:

* **Deterministic re-execution**: a rollback replay re-picks exactly
  the allocations the original run picked (the sequence number
  restores with the heap snapshot).
* **Backend independence**: no ``hash()``, no RNG object state -- the
  serial and fork execution backends compute identical picks.
* **Uniform spread**: the mixer decorrelates consecutive sequence
  numbers, so "every 1/N" is a statistical rate, not a stride (a
  stride would systematically miss allocation sites whose period
  divides N).
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def mix64(x: int) -> int:
    """The splitmix64 finalizer: a cheap, well-dispersed 64-bit
    permutation (Steele et al., OOPSLA'14)."""
    x = (x + _GOLDEN) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


class SampleSelector:
    """Picks every ~1/``rate`` allocation sequence numbers,
    deterministically salted by the process entropy seed.

    ``rate <= 0`` disables sampling entirely (never picks);
    ``rate == 1`` guards every allocation (useful in tests).
    """

    __slots__ = ("rate", "entropy_seed", "_salt")

    def __init__(self, rate: int, entropy_seed: int = 1):
        self.rate = int(rate)
        self.entropy_seed = int(entropy_seed)
        # Pre-mix the seed so consecutive seeds produce unrelated
        # pick sets (seed 42 vs 43 must not shift-by-one).
        self._salt = mix64((self.entropy_seed & _MASK64) ^ _GOLDEN)

    def picks(self, alloc_seq: int) -> bool:
        """True when the allocation with this sequence number is
        promoted to a guarded allocation."""
        if self.rate <= 0:
            return False
        if self.rate == 1:
            return True
        return mix64(self._salt ^ (alloc_seq & _MASK64)) % self.rate == 0

    def __repr__(self) -> str:
        return (f"SampleSelector(rate={self.rate}, "
                f"entropy_seed={self.entropy_seed})")
