"""Sampled always-on detection experiments (DESIGN.md §15).

Two measured, gateable claims ride on the sampling plane:

1. **Overhead** (:func:`run_overhead`): promoting 1/N allocations to a
   guarded allocation (redzone canaries both sides, delayed-free
   canary fill, boundary sweeps) must stay cheap at production rates.
   Every subject runs trigger-free under the full First-Aid stack
   (extension + periodic checkpointing) with sampling off and at each
   swept rate; the gate bounds the mean simulated-time overhead at
   rate 1/64 to <= 10% over sampling-off.

2. **Time-to-first-patch** (:func:`run_fleet_ttfp`): in a fleet the
   processes encounter the bad input at different times -- the leader
   is, by definition, the first -- so each follower's trigger is
   staggered later in its request stream.  Per app, a 4-process fleet
   (leader + 3 followers over one shared store) runs twice: once with
   a sampled leader and once with sampling off.  Each follower's
   *would-be* failure time (running its workload with no store, no
   published patch) is measured once and shared by both arms.  The
   gates require at least one app where the sampled leader's
   validated patch is in the store before any unsampled process would
   have failed, and a strictly better fleet time-to-first-patch
   overall.

A third gate (:func:`rate_zero_identity`) pins the off-switch:
``sampling_rate=0`` session digests must be byte-identical
(equivalence_key) to the defaults the seed produces.

Everything runs on simulated clocks; results are plain dataclasses so
``benchmarks/bench_sampling.py`` can JSON-dump and gate them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.apps.registry import get_app, real_bug_apps
from repro.bench.harness import run_app_session, spaced_workload
from repro.checkpoint.manager import CheckpointManager
from repro.core.runtime import FirstAidConfig, FirstAidRuntime
from repro.heap.extension import ExtensionMode
from repro.process import Process

#: Rates the overhead experiment sweeps (1/N sampled allocations).
OVERHEAD_RATES = (64, 128, 256)

#: The gate rides on this rate and bound (ISSUE acceptance (a)).
GATE_RATE = 64
GATE_OVERHEAD = 0.10

#: Sampling rate the TTFP fleet arms its leader with.  1/64 keeps
#: the sampled arm's simulated timeline within ~0.004% of the
#: unsampled one (see :func:`run_overhead`), so cross-arm time
#: comparisons are fair -- denser rates inflate the sampled clock
#: with canary-fill costs and would bias the comparison.
TTFP_RATE = 64

#: Default TTFP app population (>= 3 apps, ISSUE acceptance (b)).
TTFP_APPS = ("mutt", "pine", "squid", "cvs")

#: Extra normal requests in front of follower i's trigger (i = 1..3).
#: Models arrival-time spread: fleet processes hit the bad input at
#: different points in their streams, and the leader is simply the
#: first.  The value is one knob for all apps, not tuned per app.
FOLLOWER_STAGGER = 25


# ---------------------------------------------------------------------
# overhead sweep
# ---------------------------------------------------------------------

@dataclass
class OverheadCell:
    """One (subject, rate) run under extension + checkpointing."""

    subject: str
    rate: int                 # 0 = sampling off
    time_s: float             # simulated seconds
    instrs: int
    allocs: int
    sampled_allocs: int
    #: simulated-time overhead vs the same subject's rate-0 run
    overhead: float = 0.0


@dataclass
class SamplingOverheadResult:
    rates: Tuple[int, ...]
    cells: List[OverheadCell]
    #: rate -> mean overhead across subjects
    mean_overhead: Dict[int, float] = field(default_factory=dict)
    gate_rate: int = GATE_RATE
    gate_limit: float = GATE_OVERHEAD

    @property
    def gate_passed(self) -> bool:
        return self.mean_overhead.get(self.gate_rate, 1.0) \
            <= self.gate_limit

    def to_json(self) -> dict:
        return {
            "rates": list(self.rates),
            "cells": [vars(c) for c in self.cells],
            "mean_overhead": {str(k): v
                              for k, v in sorted(self.mean_overhead.items())},
            "gate_rate": self.gate_rate,
            "gate_limit": self.gate_limit,
            "gate_passed": self.gate_passed,
        }


def _overhead_cell(subject: str, tokens: List[int],
                   rate: int) -> OverheadCell:
    """One trigger-free run under the full stack (extension NORMAL +
    periodic checkpoints, which is where the boundary sweeps live)."""
    app = get_app(subject)
    process = Process(app.program(), input_tokens=tokens,
                      mode=ExtensionMode.NORMAL,
                      sampling_rate=rate)
    manager = CheckpointManager(process)
    manager.run()
    stats = process.extension.sampling_stats
    return OverheadCell(
        subject=subject, rate=rate,
        time_s=process.clock.now_s,
        instrs=process.instr_count,
        allocs=stats.allocs if stats else 0,
        sampled_allocs=stats.sampled_allocs if stats else 0)


def run_overhead(rates: Tuple[int, ...] = OVERHEAD_RATES,
                 quick: bool = False) -> SamplingOverheadResult:
    """Sweep sampling rates over trigger-free app workloads."""
    subjects = [a.name for a in real_bug_apps()]
    if quick:
        subjects = subjects[:3]
    requests = 160 if quick else 400
    result = SamplingOverheadResult(rates=tuple(rates), cells=[])
    for subject in subjects:
        app = get_app(subject)
        tokens = app.normal_workload(requests=requests).tokens
        base = _overhead_cell(subject, tokens, 0)
        result.cells.append(base)
        for rate in rates:
            cell = _overhead_cell(subject, tokens, rate)
            cell.overhead = (cell.time_s - base.time_s) / base.time_s \
                if base.time_s else 0.0
            result.cells.append(cell)
    for rate in rates:
        rated = [c.overhead for c in result.cells if c.rate == rate]
        result.mean_overhead[rate] = sum(rated) / len(rated) \
            if rated else 0.0
    return result


# ---------------------------------------------------------------------
# fleet time-to-first-patch
# ---------------------------------------------------------------------

@dataclass
class TTFPArm:
    """One fleet arm (sampled or unsampled leader) for one app."""

    sampled: bool
    leader_recoveries: int
    #: Recoveries triggered by an actual crash-family failure (any
    #: monitor other than ``sampled-detection``).  0 on the sampled
    #: arm means the guard absorbed the bug before it ever crashed.
    leader_crashes: int
    leader_survived: bool
    #: Simulated time of the leader's first failure event (for the
    #: unsampled arm this is when the process *crashed*; for the
    #: sampled arm, when the guard fired).
    first_failure_ns: int
    #: Guard-hit time (sampled arm only; 0 otherwise).
    first_detection_ns: int
    #: Simulated time the first validated patch entered the store.
    ttfp_ns: int
    fast_path_prevented: int
    followers: int
    followers_prevented: bool


@dataclass
class TTFPAppResult:
    app: str
    rate: int
    procs: int
    #: When each follower *would* fail: its staggered workload run
    #: with no store and no published patch.  Shared by both arms.
    follower_would_fail_ns: List[int]
    unsampled: TTFPArm
    sampled: TTFPArm

    @property
    def earliest_would_fail_ns(self) -> int:
        hits = [t for t in self.follower_would_fail_ns if t > 0]
        return min(hits) if hits else 0

    @property
    def pre_crash_win(self) -> bool:
        """The sampled leader's validated patch was in the store
        before any unsampled process would have failed -- and the
        patch came from a guard hit (``first_detection_ns > 0``), not
        from an ordinary crash-recover-publish that would have
        happened without sampling."""
        would = self.earliest_would_fail_ns
        return (self.sampled.ttfp_ns > 0 and would > 0
                and self.sampled.first_detection_ns > 0
                and self.sampled.ttfp_ns < would)

    @property
    def unsampled_pre_crash(self) -> bool:
        """Same criterion for the unsampled arm: did crash-then-patch
        also beat the earliest follower?  When this is False and
        :attr:`pre_crash_win` is True, sampling was decisive."""
        would = self.earliest_would_fail_ns
        return (self.unsampled.ttfp_ns > 0 and would > 0
                and self.unsampled.ttfp_ns < would)

    @property
    def ttfp_improved(self) -> bool:
        return (self.sampled.ttfp_ns > 0
                and self.unsampled.ttfp_ns > 0
                and self.sampled.ttfp_ns < self.unsampled.ttfp_ns)

    def to_json(self) -> dict:
        return {
            "app": self.app,
            "rate": self.rate,
            "procs": self.procs,
            "follower_would_fail_ns": list(self.follower_would_fail_ns),
            "unsampled": vars(self.unsampled),
            "sampled": vars(self.sampled),
            "pre_crash_win": self.pre_crash_win,
            "unsampled_pre_crash": self.unsampled_pre_crash,
            "ttfp_improved": self.ttfp_improved,
        }


@dataclass
class SamplingFleetResult:
    rate: int
    procs: int
    apps: List[TTFPAppResult]

    @property
    def any_pre_crash_win(self) -> bool:
        return any(a.pre_crash_win for a in self.apps)

    @property
    def fleet_ttfp_better(self) -> bool:
        """Fleet time-to-first-patch (min over apps' first validated
        patch) strictly better with sampling than without."""
        sampled = [a.sampled.ttfp_ns for a in self.apps
                   if a.sampled.ttfp_ns > 0]
        unsampled = [a.unsampled.ttfp_ns for a in self.apps
                     if a.unsampled.ttfp_ns > 0]
        return (bool(sampled) and bool(unsampled)
                and min(sampled) < min(unsampled))

    @property
    def gate_passed(self) -> bool:
        return (self.any_pre_crash_win and self.fleet_ttfp_better
                and all(a.sampled.followers_prevented
                        and a.sampled.leader_survived
                        for a in self.apps))

    def to_json(self) -> dict:
        return {
            "rate": self.rate,
            "procs": self.procs,
            "apps": [a.to_json() for a in self.apps],
            "any_pre_crash_win": self.any_pre_crash_win,
            "fleet_ttfp_better": self.fleet_ttfp_better,
            "gate_passed": self.gate_passed,
        }


def _follower_workload(app, index: int, seed: int):
    """Follower ``index``'s workload: same shape as the leader's
    (:func:`spaced_workload`), trigger staggered later by
    ``FOLLOWER_STAGGER * index`` normal requests."""
    return app.workload(
        normal_before=40 + FOLLOWER_STAGGER * index,
        triggers=1, normal_after=40, seed=seed)


def _would_fail_ns(app, workload) -> int:
    """When the workload's trigger actually fires, measured by running
    it with no store and no published patches: the first failure event
    is the moment this process would have crashed in a fleet without a
    pre-published patch."""
    runtime = FirstAidRuntime(app.program(),
                              input_tokens=workload.tokens,
                              config=FirstAidConfig())
    session = runtime.run()
    when = min((r.failure.time_ns for r in session.recoveries),
               default=0)
    runtime.close()
    return when


def _ttfp_arm(app_name: str, store_path: str, rate: int,
              follower_workloads) -> TTFPArm:
    """One serial fleet: a leader (sampled when rate > 0) hits the bug
    first and publishes; followers (always unsampled, triggers
    staggered later) then run against the shared store and must be
    prevented.  Serial on simulated clocks keeps everything
    deterministic; concurrency is reconstructed by comparing times on
    the shared simulated timeline."""
    app = get_app(app_name)
    wl = spaced_workload(app, triggers=1, seed=42)
    leader = FirstAidRuntime(
        app.program(), input_tokens=wl.tokens,
        config=FirstAidConfig(store_path=store_path,
                              process_label="leader-0",
                              sampling_rate=rate))
    session = leader.run()
    first_failure_ns = min(
        (r.failure.time_ns for r in session.recoveries),
        default=0)
    crashes = sum(1 for r in session.recoveries
                  if r.failure.monitor != "sampled-detection")
    stats = leader.process.extension.sampling_stats
    first_detection_ns = stats.first_detection_ns if stats else 0
    prevented = leader._sampled_prevented
    survived = session.survived_all and session.reason != "died"
    recoveries = len(session.recoveries)
    leader.close()

    followers_prevented = True
    for i, fw in enumerate(follower_workloads, start=1):
        follower = FirstAidRuntime(
            app.program(), input_tokens=fw.tokens,
            config=FirstAidConfig(store_path=store_path,
                                  process_label=f"follower-{i}"))
        fs = follower.run()
        triggers = sum(p.trigger_count
                       for p in follower.pool.patches())
        if fs.recoveries or triggers == 0:
            followers_prevented = False
        follower.close()

    from repro.store import SharedPatchStore
    state = SharedPatchStore(store_path, app.program().name).load()
    validated = [p for p in state.patches.values()
                 if p.get("validated")]
    ttfp_ns = min((int(p.get("created_time_ns", 0))
                   for p in validated
                   if int(p.get("created_time_ns", 0)) > 0),
                  default=0)
    return TTFPArm(
        sampled=rate > 0,
        leader_recoveries=recoveries,
        leader_crashes=crashes,
        leader_survived=survived,
        first_failure_ns=first_failure_ns,
        first_detection_ns=first_detection_ns,
        ttfp_ns=ttfp_ns,
        fast_path_prevented=prevented,
        followers=len(follower_workloads),
        followers_prevented=followers_prevented)


def run_fleet_ttfp(apps: Tuple[str, ...] = TTFP_APPS,
                   rate: int = TTFP_RATE, procs: int = 4,
                   workdir: Optional[str] = None
                   ) -> SamplingFleetResult:
    """Per app: the same ``procs``-process fleet with and without a
    sampled leader, on separate stores, plus one no-store run per
    follower workload to measure when it *would* have failed."""
    import os
    import tempfile
    own = workdir is None
    workdir = workdir or tempfile.mkdtemp(prefix="bench-sampling-")
    result = SamplingFleetResult(rate=rate, procs=procs, apps=[])
    try:
        for app_name in apps:
            app = get_app(app_name)
            follower_wls = [_follower_workload(app, i, seed=42 + i)
                            for i in range(1, procs)]
            would_fail = [_would_fail_ns(app, fw)
                          for fw in follower_wls]
            unsampled = _ttfp_arm(
                app_name, os.path.join(workdir, f"{app_name}-off.json"),
                rate=0, follower_workloads=follower_wls)
            sampled = _ttfp_arm(
                app_name, os.path.join(workdir, f"{app_name}-on.json"),
                rate=rate, follower_workloads=follower_wls)
            result.apps.append(TTFPAppResult(
                app=app_name, rate=rate, procs=procs,
                follower_would_fail_ns=would_fail,
                unsampled=unsampled, sampled=sampled))
    finally:
        if own:
            import shutil
            shutil.rmtree(workdir, ignore_errors=True)
    return result


# ---------------------------------------------------------------------
# rate-0 identity
# ---------------------------------------------------------------------

def rate_zero_identity(apps: Optional[Tuple[str, ...]] = None,
                       triggers: int = 1) -> dict:
    """``sampling_rate=0`` must leave every session digest
    byte-identical to the defaults (the pre-sampling seed behavior)."""
    names = list(apps) if apps \
        else [a.name for a in real_bug_apps()]
    mismatches = []
    for name in names:
        seed = run_app_session(name, triggers=triggers)
        zero = run_app_session(name, triggers=triggers, sampling_rate=0)
        if seed.equivalence_key() != zero.equivalence_key():
            mismatches.append(name)
    return {
        "apps": names,
        "triggers": triggers,
        "mismatches": mismatches,
        "gate_passed": not mismatches,
    }
