"""Result containers and plain-text table/figure rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[Any]]) -> str:
    """Fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + \
        [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells)
              for i in range(len(headers))]

    def fmt(row: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()

    lines = [fmt(cells[0]), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in cells[1:])
    return "\n".join(lines)


def render_series(title: str, series: Dict[str, List[float]],
                  bin_seconds: float = 1.0, width: int = 40,
                  unit: str = "MB/s") -> str:
    """ASCII rendering of time-binned throughput curves (Figure 4
    style): one bar row per time bin per system."""
    peak = max((v for vals in series.values() for v in vals), default=1.0)
    peak = peak or 1.0
    lines = [title]
    for name, vals in series.items():
        lines.append(f"  {name}:")
        for i, v in enumerate(vals):
            bar = "#" * int(round(width * v / peak))
            lines.append(
                f"    {i * bin_seconds:6.1f}s |{bar:<{width}}| "
                f"{v:8.3f} {unit}")
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """One regenerated table or figure."""

    exp_id: str                  # "table3", "figure4", ...
    title: str
    headers: List[str] = field(default_factory=list)
    rows: List[List[Any]] = field(default_factory=list)
    text: Optional[str] = None   # pre-rendered body (figures, reports)
    notes: List[str] = field(default_factory=list)
    data: Dict[str, Any] = field(default_factory=dict)  # raw values

    def render(self) -> str:
        parts = [f"== {self.exp_id}: {self.title} =="]
        if self.headers:
            parts.append(render_table(self.headers, self.rows))
        if self.text:
            parts.append(self.text)
        if self.notes:
            parts.extend(f"note: {n}" for n in self.notes)
        return "\n".join(parts)
