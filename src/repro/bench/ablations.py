"""Ablation experiments for the design choices DESIGN.md calls out.

These are not paper tables; they provide measured evidence for the
paper's *arguments*:

* **heap marking** (Section 4.1 / Figure 3): without it, phase 1 picks
  a checkpoint after the bug-trigger point on the Apache scenario;
* **correctness vs Rx-style diagnosis** (Section 4.3): a
  survival-only prober mislabels the Apache-dpw dangling write
  (reporting whichever preventive change happened to survive first),
  while First-Aid's exposure+prevention isolates the right type;
* **binary vs linear call-site search** (Section 4.2): the O(M log N)
  search needs far fewer rollbacks than a linear O(M*N) scan.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.apps.base import App
from repro.apps.registry import get_app
from repro.bench.harness import spaced_workload
from repro.bench.tables import ExperimentResult
from repro.checkpoint.manager import CheckpointManager
from repro.core.bugtypes import ALL_BUG_TYPES, BugType
from repro.core.changes import DiagnosticPolicy, preventive_change
from repro.core.diagnosis import DiagnosticEngine, Verdict
from repro.core.patches import PatchPool
from repro.heap.extension import ExtensionMode
from repro.monitors import FailureEvent, default_monitors
from repro.process import Process
from repro.vm.machine import RunReason


def _run_to_failure(app: App, triggers: int = 1,
                    workload=None) -> Tuple[Process, CheckpointManager,
                                            FailureEvent]:
    wl = workload or spaced_workload(app, triggers=triggers)
    process = Process(app.program(), input_tokens=wl.tokens,
                      mode=ExtensionMode.NORMAL)
    manager = CheckpointManager(process)
    result = manager.run()
    assert result.reason is RunReason.FAULT, result
    failure = None
    for monitor in default_monitors():
        failure = monitor.check(result, process)
        if failure:
            break
    return process, manager, failure


def _diagnose(app: App, **engine_kwargs):
    process, manager, failure = _run_to_failure(app)
    engine = DiagnosticEngine(process, manager, PatchPool(app.name),
                              **engine_kwargs)
    return engine.diagnose(failure), failure


def ablation_heap_marking() -> ExperimentResult:
    """Diagnose the Apache dangling read with and without heap
    marking.  Without it, phase 1 accepts a checkpoint *after* the
    cache purge (the Figure 3 misidentification); with it, the chosen
    checkpoint precedes the purge by >= 3 intervals."""
    result = ExperimentResult(
        "ablation-heap-marking",
        "Heap marking: checkpoint identification on Apache "
        "(Figure 3 hazard)",
        headers=["configuration", "verdict", "chosen checkpoint",
                 "failure instr", "distance (intervals)", "rollbacks"])
    app = get_app("apache")
    for marking in (True, False):
        diagnosis, failure = _diagnose(app, use_heap_marking=marking)
        chosen = (diagnosis.checkpoint.instr_count
                  if diagnosis.checkpoint else None)
        interval = CheckpointManager(  # default interval, for display
            Process(app.program(), mode=ExtensionMode.OFF)).interval
        distance = ((failure.instr_count - chosen) / interval
                    if chosen is not None else float("nan"))
        result.rows.append([
            "with marking" if marking else "WITHOUT marking",
            diagnosis.verdict.value, chosen, failure.instr_count,
            f"{distance:.1f}", diagnosis.rollbacks])
        result.data["with" if marking else "without"] = {
            "chosen": chosen, "failure": failure.instr_count,
            "distance_intervals": distance,
            "verdict": diagnosis.verdict.value,
        }
    result.notes.append(
        "without marking, preventive changes dodge the failure from a "
        "post-trigger checkpoint (layout disturbance), so the distance "
        "collapses and the patch would be applied too late")
    return result


class _RxStyleProber:
    """Rx-style diagnosis (paper Section 4.3's contrast): try one
    *preventive* change at a time, whole-heap, and conclude from
    survival alone -- no exposing changes, no prevention of the other
    types.  Returns the first bug type whose preventive change
    survives the failure region."""

    #: Rx's natural trial order: padding is the cheapest change.
    ORDER = [BugType.BUFFER_OVERFLOW, BugType.UNINIT_READ,
             BugType.DANGLING_READ]

    def __init__(self, process: Process, manager: CheckpointManager):
        self.process = process
        self.manager = manager

    def probe(self, failure: FailureEvent) -> Optional[BugType]:
        window_end = failure.instr_count + 3 * self.manager.interval
        checkpoint = self.manager.latest()
        for bug_type in self.ORDER:
            change = preventive_change(bug_type)
            policy = DiagnosticPolicy(alloc_default=[change],
                                      free_default=[change])
            self.manager.rollback_to(checkpoint)
            self.process.set_mode(ExtensionMode.DIAGNOSTIC, policy)
            self.process.reseed_entropy(4242)
            outcome = self.process.run(stop_at=window_end)
            if outcome.reason in (RunReason.STOP, RunReason.HALT,
                                  RunReason.INPUT_EXHAUSTED):
                return bug_type
        return None


def ablation_rx_misdiagnosis() -> ExperimentResult:
    """The Section 4.3 correctness example, measured: on the
    Apache-dpw dangling WRITE, an Rx-style survival-only prober
    reports the wrong bug type (whichever preventive change happened
    to survive first), while First-Aid identifies the dangling
    write."""
    result = ExperimentResult(
        "ablation-rx-misdiagnosis",
        "Diagnosis correctness: First-Aid vs Rx-style survival probing "
        "on a dangling WRITE",
        headers=["diagnoser", "conclusion", "correct?"])
    app = get_app("apache-dpw")
    truth = BugType.DANGLING_WRITE

    process, manager, failure = _run_to_failure(app)
    rx_conclusion = _RxStyleProber(process, manager).probe(failure)
    result.rows.append([
        "Rx-style (survival only)",
        rx_conclusion.value if rx_conclusion else "none survived",
        "YES" if rx_conclusion is truth else "NO"])
    result.data["rx"] = (rx_conclusion.value if rx_conclusion
                         else None)

    diagnosis, _ = _diagnose(app)
    fa_types = [b.value for b in diagnosis.bug_types]
    result.rows.append([
        "First-Aid (exposure + prevention)",
        ", ".join(fa_types) or "none",
        "YES" if diagnosis.bug_types == [truth] else "NO"])
    result.data["first_aid"] = fa_types
    result.notes.append(
        "the survival-only prober reports whichever change happens to "
        "survive first, mislabelling the dangling WRITE (here as a "
        "dangling read; under other layouts as an overflow) -- the "
        "misleading developer report Section 4.3 warns about. "
        "First-Aid distinguishes write/read/overflow by manifestation "
        "kind under exposure with all other types prevented, so it "
        "cannot make this mistake")
    return result


def ablation_site_search(app_name: str = "m4") -> ExperimentResult:
    """Binary vs linear call-site search on a multi-site dangling
    read: rollbacks used by each strategy."""
    result = ExperimentResult(
        "ablation-site-search",
        f"Call-site search strategy on {app_name}",
        headers=["strategy", "rollbacks", "patches", "bug types"])
    app = get_app(app_name)
    for strategy in ("binary", "linear"):
        diagnosis, _ = _diagnose(app, site_search=strategy)
        assert diagnosis.verdict is Verdict.PATCHED
        result.rows.append([
            strategy, diagnosis.rollbacks, len(diagnosis.patches),
            ", ".join(b.value for b in diagnosis.bug_types)])
        result.data[strategy] = {
            "rollbacks": diagnosis.rollbacks,
            "patches": len(diagnosis.patches)}
    result.notes.append(
        "both strategies find the same patches; the binary search "
        "does it in O(M log N) rollbacks (Section 4.2)")
    return result
