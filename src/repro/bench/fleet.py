"""Fleet prevention harness (paper Section 5, measured).

The paper claims a generated patch prevents bug reoccurrence
*system-wide*: it persists to disk and is picked up by subsequent runs
and by other processes running the same program.  This harness turns
that sentence into two measured, gateable experiments over the shared
patch store (:mod:`repro.store`):

1. **Cross-process prevention** (:func:`run_fleet`): N real OS
   processes share one store.  Process 1 (the leader) hits the bug,
   diagnoses it, validates the patch, and publishes.  Processes 2..N
   (followers, launched concurrently after the leader's publish) run
   the same buggy workload and must suffer *zero* failures: the patch
   absorbed from the store at startup fires at the call-site from
   their very first trigger.  The harness records, per process, how
   often the patch actually triggered -- prevention, not coincidence.

2. **Fault storm** (:func:`run_fault_storm`): a store under repeated
   injected faults (torn writes from dying publishers, stale locks
   from SIGKILLed holders, corrupted payloads) while patches keep
   being published.  The gate: zero validated patches lost, ever.

Both return plain dataclasses so ``benchmarks/bench_fleet_prevention.py``
can JSON-dump and gate them, and tests can assert on them directly.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.apps.registry import get_app
from repro.bench.harness import spaced_workload
from repro.core.bugtypes import BugType
from repro.core.patches import PatchPool, RuntimePatch
from repro.core.runtime import FirstAidConfig, FirstAidRuntime
from repro.store import FaultPlan, SharedPatchStore, TornWriteCrash
from repro.util.callsite import CallSite

#: Fault kinds the storm cycles through, in rng order.
STORM_KINDS = ("torn_write", "stale_lock", "corrupt")


# ---------------------------------------------------------------------
# cross-process prevention
# ---------------------------------------------------------------------

@dataclass
class FleetProcessReport:
    """One fleet member's session, digested for the gate."""

    index: int
    role: str                  # "leader" | "follower"
    app: str
    pid: int
    reason: str
    recoveries: int
    survived: bool
    patches: int
    validated_patches: int
    #: Sum of local patch trigger counts: how often the preventive
    #: change actually fired at the patched call-site in this process.
    patched_triggers: int
    wall_s: float


@dataclass
class FleetRunResult:
    """One app's fleet experiment: leader + concurrent followers."""

    app: str
    procs: int
    leader: FleetProcessReport
    followers: List[FleetProcessReport]
    store_generation: int
    store_patches: int
    store_validated: int
    #: Max trigger count recorded in the store after the fleet ran --
    #: the cross-process "triggered N times" bookkeeping (Table 4).
    store_max_trigger: int

    @property
    def followers_prevented(self) -> bool:
        """Every follower survived with zero failures AND the patch
        demonstrably fired there (the bug was prevented, not absent)."""
        return bool(self.followers) and all(
            f.recoveries == 0 and f.survived and f.patched_triggers > 0
            for f in self.followers)

    @property
    def gate_passed(self) -> bool:
        return (self.leader.recoveries >= 1 and self.leader.survived
                and self.store_validated >= 1
                and self.followers_prevented)


def _fleet_process(spec: Tuple[int, str, str, str, int, int, int]
                   ) -> FleetProcessReport:
    """Run one fleet member.  Module-level so it ships to forked
    worker processes."""
    index, role, app_name, store_path, triggers, seed, rate = spec
    app = get_app(app_name)
    wl = spaced_workload(app, triggers=triggers, seed=seed)
    # Deterministic fleet identity: beacons keyed "leader-0" /
    # "follower-2" aggregate byte-identically whether the fleet ran
    # forked or serial (pids never enter the health plane).
    config = FirstAidConfig(store_path=store_path,
                            process_label=f"{role}-{index}",
                            sampling_rate=rate)
    runtime = FirstAidRuntime(app.program(), input_tokens=wl.tokens,
                              config=config)
    started = time.perf_counter()
    session = runtime.run()
    wall = time.perf_counter() - started
    patches = runtime.pool.patches()
    report = FleetProcessReport(
        index=index, role=role, app=app_name, pid=os.getpid(),
        reason=session.reason,
        recoveries=len(session.recoveries),
        survived=session.survived_all and session.reason != "died",
        patches=len(patches),
        validated_patches=sum(1 for p in patches if p.validated),
        patched_triggers=sum(p.trigger_count for p in patches),
        wall_s=wall)
    runtime.close()
    return report


def run_fleet(app_name: str, store_path: str, procs: int = 4,
              triggers: int = 2,
              leader_sampling_rate: int = 0) -> FleetRunResult:
    """The staged fleet experiment for one app: the leader process
    diagnoses and publishes, then ``procs - 1`` follower processes run
    the same workload concurrently against the shared store.  A
    nonzero ``leader_sampling_rate`` arms the leader with sampled
    always-on detection; followers always run unsampled."""
    if procs < 2:
        raise ValueError("a fleet needs at least 2 processes")
    import multiprocessing as mp
    from concurrent.futures import ProcessPoolExecutor
    methods = mp.get_all_start_methods()
    ctx = mp.get_context("fork" if "fork" in methods else None)

    # Stage 1: the leader suffers the bug, recovers, validates,
    # publishes.  Its own OS process, so nothing leaks via memory.
    with ProcessPoolExecutor(max_workers=1, mp_context=ctx) as pool:
        leader = pool.submit(
            _fleet_process,
            (0, "leader", app_name, store_path, triggers, 42,
             leader_sampling_rate)).result()

    # Stage 2: the rest of the fleet, concurrently, one OS process
    # each.  Distinct workload seeds: same bug, different traffic.
    specs = [(i, "follower", app_name, store_path, triggers, 42 + i, 0)
             for i in range(1, procs)]
    with ProcessPoolExecutor(max_workers=len(specs),
                             mp_context=ctx) as pool:
        followers = list(pool.map(_fleet_process, specs))

    store = SharedPatchStore(store_path, get_app(app_name).program().name)
    state = store.load()
    return FleetRunResult(
        app=app_name, procs=procs, leader=leader, followers=followers,
        store_generation=state.generation,
        store_patches=len(state.patches),
        store_validated=len(state.validated_keys()),
        store_max_trigger=max(
            (int(p.get("trigger_count", 0))
             for p in state.patches.values()), default=0))


def run_fleet_serial(app_name: str, store_path: str, procs: int = 4,
                     triggers: int = 2,
                     leader_sampling_rate: int = 0) -> FleetRunResult:
    """The exact experiment of :func:`run_fleet` with every member run
    sequentially in this host process: same roles, labels, seeds, and
    store protocol, no forking.  Exists for the health determinism
    gate -- the fleet health report aggregated from a serial run must
    be byte-identical to the forked run's, which it can only be if
    beacons carry nothing host-dependent (and, with a sampled leader,
    only if sample selection is backend-independent)."""
    if procs < 2:
        raise ValueError("a fleet needs at least 2 processes")
    leader = _fleet_process(
        (0, "leader", app_name, store_path, triggers, 42,
         leader_sampling_rate))
    followers = [
        _fleet_process(
            (i, "follower", app_name, store_path, triggers, 42 + i, 0))
        for i in range(1, procs)]
    store = SharedPatchStore(store_path, get_app(app_name).program().name)
    state = store.load()
    return FleetRunResult(
        app=app_name, procs=procs, leader=leader, followers=followers,
        store_generation=state.generation,
        store_patches=len(state.patches),
        store_validated=len(state.validated_keys()),
        store_max_trigger=max(
            (int(p.get("trigger_count", 0))
             for p in state.patches.values()), default=0))


# ---------------------------------------------------------------------
# staged rollout: canary containment + health-gated promotion
# (DESIGN.md §14)
# ---------------------------------------------------------------------

#: Call-site of the deliberately-bad injected canary patch.  The frame
#: name never appears in any app program, so the patch can never fire
#: -- its only observable effect is *being adopted*, which is exactly
#: what the containment gate counts.
BAD_PATCH_FRAME = ("injected_bad", 0)


@dataclass
class RolloutMemberReport:
    """One rollout-fleet member's session, digested for the gates."""

    index: int
    role: str                  # "canary-leader" | "canary" |
                               # "early-follower" | "late-follower"
    label: str
    canary: bool
    reason: str
    recoveries: int
    survived: bool
    patches: int
    patched_triggers: int      # local prevention-policy trigger count
    bad_patch_adopted: bool    # gate: False for every non-canary
    bad_patch_triggers: int    # gate: 0 for every non-canary
    wall_s: float

    def digest(self) -> Tuple:
        """The deterministic slice (wall clock and pids excluded):
        the serial-vs-fork byte-identity gate compares these."""
        return (self.role, self.label, self.canary, self.reason,
                self.recoveries, self.survived, self.patches,
                self.patched_triggers, self.bad_patch_adopted,
                self.bad_patch_triggers)


@dataclass
class RolloutFleetResult:
    """One app's staged-rollout experiment: a bad patch injected at
    STAGED next to a real bug, canaries exposed, the promotion
    controller judging both, then late joiners reaping the verdict."""

    app: str
    canary_fraction: float
    bad_key: str
    real_keys: List[str]
    members: List[RolloutMemberReport]
    #: Rendered decision trail from the controller pass (sorted patch
    #: keys, cascaded) -- the byte-identity gates compare this string
    #: list verbatim.
    decisions: List[str]
    #: A second tick over the settled store must decide nothing.
    second_tick_decisions: int
    #: patch_key -> final stage (including terminal "rolled_back").
    final_stages: Dict[str, str]
    rolled_back: List[str]
    store_generation: int
    #: evaluate() re-run over ``shuffles`` permutations of the beacon
    #: list must reproduce the decision trail byte-identically.
    order_invariant: bool
    shuffles: int

    @property
    def non_canary_members(self) -> List[RolloutMemberReport]:
        return [m for m in self.members if not m.canary]

    @property
    def containment_passed(self) -> bool:
        """The deliberately-bad patch never reached a non-canary
        process, and the fleet condemned it."""
        return (self.bad_key in self.rolled_back
                and self.final_stages.get(self.bad_key) == "rolled_back"
                and bool(self.non_canary_members)
                and all(not m.bad_patch_adopted
                        and m.bad_patch_triggers == 0
                        for m in self.non_canary_members))

    @property
    def promotion_passed(self) -> bool:
        """The real patch graduated to fleet-wide and prevented the
        bug in every late joiner."""
        late = [m for m in self.members if m.role == "late-follower"]
        return (bool(self.real_keys)
                and all(self.final_stages.get(k) == "fleet_wide"
                        for k in self.real_keys)
                and bool(late)
                and all(m.recoveries == 0 and m.survived
                        and m.patched_triggers > 0 for m in late))

    @property
    def gate_passed(self) -> bool:
        return (self.containment_passed and self.promotion_passed
                and self.order_invariant
                and self.second_tick_decisions == 0)

    def fleet_digest(self) -> Tuple:
        """Everything the serial-vs-fork gate compares."""
        return (tuple(m.digest() for m in sorted(
                    self.members, key=lambda m: m.label)),
                tuple(self.decisions),
                tuple(sorted(self.final_stages.items())),
                tuple(sorted(self.rolled_back)))


def _rollout_member(spec) -> RolloutMemberReport:
    """Run one rollout-fleet member (module-level: ships to forked
    workers)."""
    (index, role, app_name, store_path, label, triggers, seed,
     fraction, bad_key) = spec
    app = get_app(app_name)
    wl = spaced_workload(app, triggers=triggers, seed=seed)
    config = FirstAidConfig(store_path=store_path, process_label=label,
                            rollout=True, canary_fraction=fraction)
    runtime = FirstAidRuntime(app.program(), input_tokens=wl.tokens,
                              config=config)
    started = time.perf_counter()
    session = runtime.run()
    wall = time.perf_counter() - started
    patches = runtime.pool.patches()
    report = RolloutMemberReport(
        index=index, role=role, label=label,
        canary=runtime._canary,
        reason=session.reason,
        recoveries=len(session.recoveries),
        survived=session.survived_all and session.reason != "died",
        patches=len(patches),
        patched_triggers=sum(
            count for key, count
            in runtime.policy.local_triggers.items()
            if key != bad_key),
        bad_patch_adopted=any(p.key == bad_key for p in patches),
        bad_patch_triggers=runtime.policy.local_triggers.get(
            bad_key, 0),
        wall_s=wall)
    runtime.close()
    return report


def run_rollout_fleet(app_name: str, store_path: str,
                      canary_fraction: float = 0.25,
                      triggers: int = 2,
                      late_followers: int = 2,
                      min_observe_ns: int = 1_000_000,
                      max_latency_p99_ns: int = 60_000_000_000,
                      shuffles: int = 5,
                      parallel: bool = True) -> RolloutFleetResult:
    """The staged-rollout chaos experiment for one app.

    A deliberately-bad patch (a call-site no app program contains) is
    injected at STAGED before anyone runs.  Phase A: a canary leader
    hits the real bug alone (diagnosis + STAGED publish), then a second
    canary and an early non-canary follower run -- the canary absorbs
    both staged patches, the follower must absorb *neither* (it
    diagnoses the real bug itself; the bad patch must never touch it).
    The promotion controller then consumes the fleet's beacons: the
    bad patch -- which was live in the canaries when the real bug
    struck the leader -- blows the post-adopt failure-rate gate and is
    rolled back; the real patch clears every gate and cascades to
    fleet-wide.  Phase B: late non-canary followers join and must be
    prevented by the promoted patch while the condemned one stays
    buried.

    Determinism gates ride along: the decision trail must be
    byte-identical across ``shuffles`` random permutations of the
    beacon list, a second controller tick must decide nothing, and
    :func:`run_rollout_fleet_serial` (same spec, no forking) must
    produce the same :meth:`RolloutFleetResult.fleet_digest`."""
    from repro.obs.health import HealthChannel, health_path
    from repro.rollout import (RolloutConfig, PromotionController,
                               evaluate, pick_labels)

    program_name = get_app(app_name).program().name
    (canary_labels, other_labels) = pick_labels(
        2, 1 + late_followers, canary_fraction)
    leader_label, second_canary = canary_labels
    early_label, late_labels = other_labels[0], other_labels[1:]

    # The poisoned well: a staged patch nobody asked for, at a
    # call-site that cannot execute.
    store = SharedPatchStore(store_path, program_name)
    bad_pool = PatchPool(program_name)
    bad = bad_pool.new_patch(BugType.DOUBLE_FREE,
                             CallSite.intern([BAD_PATCH_FRAME]))
    from repro.rollout import STAGED
    store.publish([bad], stage=STAGED)
    bad_key = bad.key

    def member(index, role, label, seed):
        return (index, role, app_name, store_path, label, triggers,
                seed, canary_fraction, bad_key)

    # Phase A: leader alone (publishes the real patch at STAGED), then
    # the exposed cohort.
    members: List[RolloutMemberReport] = []
    members.append(_rollout_member(
        member(0, "canary-leader", leader_label, 42)))
    phase_a = [member(1, "canary", second_canary, 43),
               member(2, "early-follower", early_label, 44)]
    if parallel:
        import multiprocessing as mp
        from concurrent.futures import ProcessPoolExecutor
        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else None)
        with ProcessPoolExecutor(max_workers=len(phase_a),
                                 mp_context=ctx) as pool:
            members.extend(pool.map(_rollout_member, phase_a))
    else:
        members.extend(_rollout_member(spec) for spec in phase_a)

    # The promotion controller consumes the cohort's evidence.
    channel = HealthChannel(health_path(store_path), program_name)
    cfg = RolloutConfig(canary_fraction=canary_fraction,
                        min_observe_ns=min_observe_ns,
                        max_failure_rate=0.0,
                        max_latency_p99_ns=max_latency_p99_ns,
                        min_canary_processes=1)
    controller = PromotionController(store, channel, cfg)
    state_before = store.load()
    beacons = controller._beacons()
    decide_at = max((b.time_ns for b in beacons), default=0)
    decisions = [d.render()
                 for d in controller.tick(time_ns=decide_at)]
    second = len(controller.tick(time_ns=decide_at))

    # Beacon arrival order must not matter: evaluate() over shuffled
    # permutations reproduces the decision trail byte-for-byte.
    order_invariant = True
    for i in range(shuffles):
        shuffled = list(beacons)
        random.Random(1000 + i).shuffle(shuffled)
        replay = [d.render()
                  for d in evaluate(state_before, shuffled, cfg)]
        if replay != decisions:
            order_invariant = False

    # Phase B: late joiners reap the promoted patch.
    phase_b = [member(3 + i, "late-follower", label, 45 + i)
               for i, label in enumerate(late_labels)]
    if parallel and phase_b:
        import multiprocessing as mp
        from concurrent.futures import ProcessPoolExecutor
        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else None)
        with ProcessPoolExecutor(max_workers=len(phase_b),
                                 mp_context=ctx) as pool:
            members.extend(pool.map(_rollout_member, phase_b))
    else:
        members.extend(_rollout_member(spec) for spec in phase_b)

    final = store.load()
    return RolloutFleetResult(
        app=app_name,
        canary_fraction=canary_fraction,
        bad_key=bad_key,
        real_keys=sorted(k for k in final.patches if k != bad_key),
        members=members,
        decisions=decisions,
        second_tick_decisions=second,
        final_stages=final.stages(),
        rolled_back=sorted(final.rolled_back),
        store_generation=final.generation,
        order_invariant=order_invariant,
        shuffles=shuffles)


def run_rollout_fleet_serial(app_name: str, store_path: str,
                             **kw) -> RolloutFleetResult:
    """:func:`run_rollout_fleet` with every member run sequentially in
    this host process -- the other half of the serial-vs-fork
    byte-identity gate."""
    kw["parallel"] = False
    return run_rollout_fleet(app_name, store_path, **kw)


# ---------------------------------------------------------------------
# live mid-run pickup (deterministic, in-process)
# ---------------------------------------------------------------------

@dataclass
class LivePickupResult:
    """A follower that started *before* the publish and absorbed the
    patch mid-run via the periodic boundary refresh."""

    app: str
    picked_up_at_generation: int
    follower_recoveries: int
    follower_reason: str
    follower_triggers: int

    @property
    def gate_passed(self) -> bool:
        return self.follower_recoveries == 0 \
            and self.follower_triggers > 0


def run_live_pickup(app_name: str, store_path: str,
                    triggers: int = 2) -> LivePickupResult:
    """Start a follower with an *empty* store and a workload whose
    first trigger is still ahead; run it in small budget slices; after
    the first slice, a leader (separate runtime, same store) publishes
    its validated patch.  The follower's periodic refresh must absorb
    it before the trigger arrives, preventing the bug mid-run with no
    restart.  Deterministic: everything runs on simulated clocks in
    one host process."""
    from repro.checkpoint.manager import DEFAULT_INTERVAL
    from repro.heap.extension import ExtensionMode
    from repro.process import Process
    app = get_app(app_name)
    # REQUEST_COST_HINT is a rough upper bound; the trigger placement
    # below needs the *actual* per-request cost, so measure it with a
    # tiny trigger-free probe run.
    probe_requests = 32
    probe = Process(app.program(),
                    input_tokens=app.normal_workload(
                        requests=probe_requests).tokens,
                    mode=ExtensionMode.OFF)
    probe.run()
    per_request = max(1, probe.instr_count // probe_requests)
    # First trigger after ~6 checkpoint intervals: the first budget
    # slice covers 2, leaving several boundaries for the
    # publish-then-refresh sequence to land on before the bug strikes.
    normal_before = (6 * DEFAULT_INTERVAL) // per_request
    spacing = max(40, int(3 * DEFAULT_INTERVAL * 1.4 / per_request))
    wl = app.workload(normal_before=normal_before, triggers=triggers,
                      normal_between=spacing, normal_after=40, seed=42)

    follower = FirstAidRuntime(
        app.program(), input_tokens=wl.tokens,
        config=FirstAidConfig(store_path=store_path,
                              store_refresh_boundaries=1))
    # One small slice: past the first checkpoint boundary, well before
    # the first trigger request is consumed.
    follower.run(max_steps=2 * follower.manager.interval)

    leader = FirstAidRuntime(
        app.program(), input_tokens=spaced_workload(app, 1, seed=7).tokens,
        config=FirstAidConfig(store_path=store_path))
    leader.run()
    leader.close()
    generation = leader.store.load().generation

    session = follower.run()  # resumes; refresh picks the patch up
    patches = follower.pool.patches()
    result = LivePickupResult(
        app=app_name,
        picked_up_at_generation=generation,
        follower_recoveries=len(session.recoveries),
        follower_reason=session.reason,
        follower_triggers=sum(p.trigger_count for p in patches))
    follower.close()
    return result


# ---------------------------------------------------------------------
# fault storm
# ---------------------------------------------------------------------

@dataclass
class FaultStormResult:
    faults_requested: int
    faults_fired: Dict[str, int] = field(default_factory=dict)
    validated_patches: int = 0
    validated_lost: int = 0          # the gate: must stay 0
    publishes_survived: int = 0
    quarantined_files: int = 0
    backup_recoveries: int = 0
    stale_locks_broken: int = 0
    final_generation: int = 0
    wall_s: float = 0.0

    @property
    def gate_passed(self) -> bool:
        return (self.validated_lost == 0
                and sum(self.faults_fired.values())
                >= self.faults_requested)


def _storm_patch(pool: PatchPool, i: int,
                 validated: bool) -> RuntimePatch:
    kinds = (BugType.BUFFER_OVERFLOW, BugType.DANGLING_READ,
             BugType.DOUBLE_FREE, BugType.UNINIT_READ)
    patch = pool.new_patch(kinds[i % len(kinds)],
                           CallSite.intern([(f"fn{i}", i)]))
    patch.validated = validated
    patch.trigger_count = i
    return patch


def run_fault_storm(store_path: str, faults: int = 100,
                    gold_patches: int = 6,
                    seed: int = 7) -> FaultStormResult:
    """Inject ``faults`` store faults while publishing churn patches;
    assert after every single fault that no validated patch was lost."""
    rng = random.Random(seed)
    plan = FaultPlan()
    store = SharedPatchStore(store_path, "storm-app", faults=plan,
                             lock_timeout=5.0, stale_lock_after=0.02)
    pool = PatchPool("storm-app")
    gold = [_storm_patch(pool, i, validated=True)
            for i in range(gold_patches)]
    store.publish(gold)
    gold_keys = {p.key for p in gold}

    result = FaultStormResult(faults_requested=faults,
                              validated_patches=len(gold_keys))
    started = time.perf_counter()
    for i in range(faults):
        kind = STORM_KINDS[rng.randrange(len(STORM_KINDS))]
        plan.arm(kind)
        churn = _storm_patch(pool, gold_patches + i, validated=False)
        try:
            store.publish([churn])
        except TornWriteCrash:
            # The "publisher died" mid-commit, torn bytes on disk and
            # the lock abandoned.  A surviving process retries: it must
            # break the stale lock, quarantine the torn file, recover
            # from the backup, and land the patch.
            store.publish([churn])
        result.publishes_survived += 1
        state = store.load()
        lost = gold_keys - set(state.validated_keys())
        if lost:
            result.validated_lost += len(lost)
            # Heal for the remaining iterations so one loss does not
            # cascade into a meaningless count.
            store.publish([p for p in gold if p.key in lost])
    result.wall_s = time.perf_counter() - started
    result.faults_fired = dict(plan.fired)
    result.quarantined_files = store.quarantined
    result.backup_recoveries = store.recovered_from_backup
    result.stale_locks_broken = store.lock.stale_broken
    result.final_generation = store.load().generation
    return result


# ---------------------------------------------------------------------
# health fault storm (DESIGN.md §12)
# ---------------------------------------------------------------------

@dataclass
class HealthStormResult:
    """A fault storm aimed at the *health* channel while the patch
    store keeps doing real work next to it.  The gates: validated
    patches are untouchable by health faults, and nothing the health
    path does ever raises past the runtime's guard."""

    faults_requested: int
    faults_fired: Dict[str, int] = field(default_factory=dict)
    validated_patches: int = 0
    validated_lost: int = 0          # gate: must stay 0
    publishes_attempted: int = 0
    health_errors: int = 0           # degraded publishes (expected > 0)
    health_raised: int = 0           # gate: must stay 0
    quarantined_files: int = 0
    backup_recoveries: int = 0
    beacons_visible: int = 0
    aggregate_errors: int = 0
    final_report_processes: int = 0
    wall_s: float = 0.0

    @property
    def gate_passed(self) -> bool:
        return (self.validated_lost == 0
                and self.health_raised == 0
                and sum(self.faults_fired.values())
                >= self.faults_requested
                and self.final_report_processes > 0)


def run_health_fault_storm(store_path: str, faults: int = 48,
                           processes: int = 4,
                           seed: int = 11) -> HealthStormResult:
    """Inject ``faults`` health-channel faults (torn writes, stale
    locks, corrupt files, stale beacons) while ``processes`` synthetic
    fleet members keep publishing beacons through the same guarded
    path the runtime uses, with gold validated patches sitting in the
    patch store next door.  After every fault: the validated patches
    must all still be there, and the aggregator must still produce a
    report without raising."""
    from repro.obs.health import (FleetHealthAggregator, HealthBeacon,
                                  HealthChannel, HealthFaultPlan,
                                  health_path)

    rng = random.Random(seed)
    store = SharedPatchStore(store_path, "storm-app")
    pool = PatchPool("storm-app")
    gold = [_storm_patch(pool, i, validated=True) for i in range(4)]
    store.publish(gold)
    gold_keys = {p.key for p in gold}

    plan = HealthFaultPlan()
    channel = HealthChannel(health_path(store_path), "storm-app",
                            faults=plan, stale_lock_after=0.02)
    result = HealthStormResult(faults_requested=faults,
                               validated_patches=len(gold_keys))
    started = time.perf_counter()
    seqs = {i: 0 for i in range(processes)}
    for i in range(faults):
        kind = HealthFaultPlan.KINDS[rng.randrange(
            len(HealthFaultPlan.KINDS))]
        plan.arm(kind)
        proc = i % processes
        seqs[proc] += 1
        beacon = HealthBeacon(
            process_id=f"member-{proc}", app="storm-app",
            seq=seqs[proc], time_ns=(i + 1) * 1_000_000,
            failures=proc, recovered=proc)
        result.publishes_attempted += 1
        # The runtime's guard, verbatim: torn writes force-break our
        # own abandoned lock; everything else degrades to an error.
        try:
            try:
                channel.publish(beacon)
            except TornWriteCrash:
                channel.lock.force_break()
                result.health_errors += 1
            except Exception:
                result.health_errors += 1
        except BaseException:
            result.health_raised += 1
        # Gate 1: health faults must never reach the patch store.
        lost = gold_keys - set(store.load().validated_keys())
        result.validated_lost += len(lost)
        # Gate 2: aggregation over whatever survived never raises.
        try:
            agg = FleetHealthAggregator()
            agg.add_state(channel.load())
            agg.report()
        except BaseException:
            result.health_raised += 1
    result.wall_s = time.perf_counter() - started
    result.faults_fired = dict(plan.fired)
    result.quarantined_files = channel.quarantined
    result.backup_recoveries = channel.recovered_from_backup
    final = FleetHealthAggregator()
    final.add_state(channel.load())
    report = final.report()
    result.aggregate_errors = final.errors
    result.beacons_visible = len(report.processes)
    result.final_report_processes = report.fleet["processes"]
    return result
