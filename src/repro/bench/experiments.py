"""The experiments: one function per table/figure of the evaluation."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.apps.registry import all_apps, get_app, real_bug_apps
from repro.bench import paper_data
from repro.bench.harness import (
    overhead_run,
    overhead_subjects,
    run_first_aid,
    run_restart,
    run_rx,
    spaced_workload,
    throughput_series,
)
from repro.bench.tables import ExperimentResult, render_series

#: Paper row order for the per-app tables.
APP_ORDER = ["apache", "squid", "cvs", "pine", "mutt", "m4", "bc",
             "apache-uir", "apache-dpw"]
REAL_APP_ORDER = ["apache", "squid", "cvs", "pine", "mutt", "m4", "bc"]


def table2_inventory() -> ExperimentResult:
    """Table 2: applications and bugs used in the evaluation."""
    result = ExperimentResult(
        "table2", "Applications and bugs used in evaluation",
        headers=["Application", "Ver.", "Bug", "Paper LOC",
                 "App. Desc."])
    by_name = {app.name: app for app in all_apps()}
    for name in APP_ORDER:
        app = by_name[name]
        result.rows.append([app.INFO.name, app.INFO.paper_version,
                            app.INFO.bug_description, app.INFO.paper_loc,
                            app.INFO.description])
    return result


def table3_effectiveness(apps: Optional[List[str]] = None
                         ) -> ExperimentResult:
    """Table 3: diagnosis, recovery, prevention, and validation for all
    nine bugs (two triggers each; the second must be survived without a
    new recovery)."""
    result = ExperimentResult(
        "table3", "Overall results: surviving and preventing memory bugs",
        headers=["Application", "Diagnosed bugs", "Runtime patch",
                 "Recovery (s)", "Avoid future errors?", "Rollbacks",
                 "Validation (s)", "paper:Recovery", "paper:Rollbacks"])
    for name in apps or APP_ORDER:
        app = get_app(name)
        runtime, session, _wl = run_first_aid(app, triggers=2)
        row_data = _table3_row(name, app, session)
        result.rows.append(row_data["row"])
        result.data[name] = row_data
    return result


def _table3_row(name: str, app, session) -> Dict:
    paper = paper_data.TABLE3[name]
    if not session.recoveries:
        return {"row": [name, "(no failure!)", "-", "-", "-", "-", "-",
                        paper[2], paper[4]],
                "ok": False}
    rec = session.recoveries[0]
    diag = rec.diagnosis
    bug_desc = ", ".join(b.value for b in diag.bug_types)
    patch_desc = "-"
    if diag.patches:
        patch_desc = (f"{diag.patches[0].bug_type.patch_description}"
                      f"({len(diag.patches)})")
    avoided = (session.reason in ("halt", "input")
               and len(session.recoveries) == 1
               and rec.succeeded)
    recovery_s = rec.recovery_time_ns / 1e9
    validation_s = (rec.validation.time_ns / 1e9
                    if rec.validation else 0.0)
    row = [name, bug_desc, patch_desc, f"{recovery_s:.3f}",
           "Yes" if avoided else "No", diag.rollbacks,
           f"{validation_s:.3f}", paper[2], paper[4]]
    return {
        "row": row, "ok": avoided,
        "bug_types": [b.value for b in diag.bug_types],
        "patch_sites": len(diag.patches),
        "expected_sites": app.EXPECTED_PATCH_SITES,
        "recovery_s": recovery_s, "validation_s": validation_s,
        "rollbacks": diag.rollbacks,
        "consistent": rec.validation.consistent if rec.validation
        else None,
    }


def table4_accuracy(apps: Optional[List[str]] = None) -> ExperimentResult:
    """Table 4: call-sites and objects affected by the runtime patch in
    the buggy region -- First-Aid vs Rx."""
    result = ExperimentResult(
        "table4", "Call-sites and objects affected by the runtime patch",
        headers=["Name", "FA sites", "Rx sites", "site ratio",
                 "FA objects", "Rx objects", "object ratio",
                 "paper:FA/Rx sites", "paper:FA/Rx objects"])
    for name in apps or REAL_APP_ORDER:
        app = get_app(name)
        wl = spaced_workload(app, triggers=1)
        _fa_rt, fa_session, _ = run_first_aid(app, workload=wl)
        _rx_rt, rx_session, _ = run_rx(app, workload=wl)
        fa_sites = fa_objects = 0
        if fa_session.recoveries:
            rec = fa_session.recoveries[0]
            fa_sites = len(rec.diagnosis.patches)
            if rec.validation and rec.validation.iterations:
                fa_objects = sum(
                    rec.validation.iterations[0].patch_triggers()
                    .values())
            else:
                fa_objects = sum(p.trigger_count
                                 for p in rec.diagnosis.patches)
        rx_sites = rx_objects = 0
        if rx_session.recoveries:
            rx_sites = rx_session.recoveries[0].affected_callsites
            rx_objects = rx_session.recoveries[0].affected_objects
        paper = paper_data.TABLE4[name]
        site_ratio = fa_sites / rx_sites if rx_sites else float("nan")
        obj_ratio = fa_objects / rx_objects if rx_objects else float("nan")
        result.rows.append([
            name, fa_sites, rx_sites, f"{site_ratio:.2%}",
            fa_objects, rx_objects, f"{obj_ratio:.2%}",
            f"{paper[0]}/{paper[1]}", f"{paper[2]}/{paper[3]}"])
        result.data[name] = {
            "fa_sites": fa_sites, "rx_sites": rx_sites,
            "fa_objects": fa_objects, "rx_objects": rx_objects}
    return result


def table5_patch_space(apps: Optional[List[str]] = None
                       ) -> ExperimentResult:
    """Table 5: space overhead of the runtime patches after repeated
    bug triggers."""
    result = ExperimentResult(
        "table5", "Space overhead of runtime patches",
        headers=["Name", "Heap (KB)", "Patch type", "Space overhead (B)",
                 "Ratio", "paper:overhead(B)", "paper:ratio"])
    for name in apps or REAL_APP_ORDER:
        app = get_app(name)
        runtime, session, _wl = run_first_aid(app, triggers=3)
        ext = runtime.process.extension
        heap = runtime.process.allocator.peak_heap_bytes
        patch_type = "-"
        overhead = 0
        if session.recoveries and session.recoveries[0].diagnosis.patches:
            patch = session.recoveries[0].diagnosis.patches[0]
            patch_type = patch.bug_type.patch_description
            if patch_type == "add padding":
                patch_type = "padding"
                overhead = ext.peak_padding_bytes
            elif patch_type == "delay free":
                overhead = ext.quarantine.accumulated_bytes
            else:
                patch_type = "fill with zero"
                overhead = 0
        paper = paper_data.TABLE5[name]
        ratio = overhead / heap if heap else 0.0
        result.rows.append([
            name, f"{heap / 1024:.1f}", patch_type, overhead,
            f"{ratio:.2%}", paper[2], f"{paper[3]}%"])
        result.data[name] = {"heap": heap, "patch_type": patch_type,
                             "overhead": overhead, "ratio": ratio}
    result.notes.append(
        "absolute patch overheads track the paper (1016 B per padded "
        "object, a few KB of delay-freed objects); the Ratio column is "
        "inflated relative to the paper because the simulated apps use "
        "KB-scale heaps where the real ones used 0.06-16 MB")
    return result


def table6_allocator_space() -> ExperimentResult:
    """Table 6: heap space overhead of the allocator extension
    (16 bytes of metadata per live object)."""
    result = ExperimentResult(
        "table6", "Space overhead of the memory allocator extension",
        headers=["Name", "Original heap (KB)", "First-Aid heap (KB)",
                 "Overhead", "paper:overhead"])
    for subject in overhead_subjects():
        off = overhead_run(subject, "off")
        ext = overhead_run(subject, "ext")
        original = off.peak_heap_bytes
        firstaid = ext.peak_heap_bytes + ext.peak_metadata_bytes
        pct = (firstaid - original) / original if original else 0.0
        paper_pct = paper_data.TABLE6_OVERHEAD_PCT.get(subject.name)
        result.rows.append([
            subject.name, f"{original / 1024:.1f}",
            f"{firstaid / 1024:.1f}", f"{pct:.2%}",
            f"{paper_pct}%" if paper_pct is not None else "-"])
        result.data[subject.name] = {"original": original,
                                     "firstaid": firstaid,
                                     "overhead": pct}
    return result


def table7_checkpoint_space() -> ExperimentResult:
    """Table 7: checkpoint (COW) space overhead.

    Per-checkpoint and per-second figures are measured delta payload
    bytes (deduped incremental page copies), and "Retained KB" is the
    real memory held by the live checkpoint history -- not the seed's
    ``cow_pages * page_size`` estimate.
    """
    result = ExperimentResult(
        "table7", "Space overhead of checkpointing",
        headers=["Name", "KB/checkpoint", "KB/second", "Checkpoints",
                 "Retained KB", "paper:MB/ckpt", "paper:MB/s"])
    for subject in overhead_subjects():
        full = overhead_run(subject, "full")
        paper = paper_data.TABLE7.get(subject.name, ("-", "-"))
        result.rows.append([
            subject.name, f"{full.bytes_per_checkpoint / 1024:.1f}",
            f"{full.bytes_per_second / 1024:.1f}", full.checkpoints,
            f"{full.retained_bytes / 1024:.1f}",
            paper[0], paper[1]])
        result.data[subject.name] = {
            "bytes_per_checkpoint": full.bytes_per_checkpoint,
            "bytes_per_second": full.bytes_per_second,
            "retained_bytes": full.retained_bytes,
            "keyframes": full.keyframes}
    result.notes.append(
        "space figures are measured retained delta bytes (incremental "
        "checkpointing with page dedupe), not cow_pages * page_size")
    return result


def figure6_overhead() -> ExperimentResult:
    """Figure 6: normal-run time overhead (allocator-only and overall),
    normalized to the original allocator with no checkpointing."""
    result = ExperimentResult(
        "figure6", "Normal-execution overhead (normalized time)",
        headers=["Name", "Group", "original", "allocator", "overall",
                 "overall overhead"])
    overheads = []
    for subject in overhead_subjects():
        off = overhead_run(subject, "off")
        ext = overhead_run(subject, "ext")
        full = overhead_run(subject, "full")
        alloc_norm = ext.time_s / off.time_s if off.time_s else 1.0
        overall_norm = full.time_s / off.time_s if off.time_s else 1.0
        overheads.append(overall_norm - 1.0)
        result.rows.append([
            subject.name, subject.group, "1.000",
            f"{alloc_norm:.3f}", f"{overall_norm:.3f}",
            f"{overall_norm - 1:.2%}"])
        result.data[subject.name] = {"allocator": alloc_norm,
                                     "overall": overall_norm}
    avg = sum(overheads) / len(overheads) if overheads else 0.0
    result.rows.append(["Average", "", "1.000", "",
                        f"{1 + avg:.3f}", f"{avg:.2%}"])
    result.data["average_overhead"] = avg
    result.notes.append(
        f"paper: 0.4%-11.6% overhead, average 3.7%; measured average "
        f"{avg:.2%}")
    return result


def figure4_throughput(apps: Optional[List[str]] = None,
                       triggers: int = 3,
                       bin_seconds: float = 2.0) -> ExperimentResult:
    """Figure 4: throughput over time under repeated bug triggers --
    First-Aid (one dip, then stable) vs Rx (a dip per trigger) vs
    restart (a collapse per trigger)."""
    result = ExperimentResult(
        "figure4", "Throughput under repeated bug triggers "
        "(First-Aid vs Rx vs restart)")
    texts = []
    for name in apps or ["apache", "squid"]:
        app = get_app(name)
        if name == "apache":
            wl = app.workload(normal_before=60, triggers=triggers,
                              normal_between=150, normal_after=80)
        else:
            spacing = max(400, 900_000 // app.REQUEST_COST_HINT)
            wl = app.workload(normal_before=200, triggers=triggers,
                              normal_between=spacing, normal_after=250)
        fa_rt, fa_session, _ = run_first_aid(app, workload=wl)
        rx_rt, rx_session, _ = run_rx(app, workload=wl)
        restart_rt, restart_session, _ = run_restart(app, workload=wl)
        total_s = max(fa_rt.process.clock.now_s,
                      rx_rt.process.clock.now_s,
                      restart_rt.clock.now_s)
        series = {
            "First-Aid": throughput_series(
                fa_rt.process.output.entries(), bin_seconds, total_s),
            "Rx": throughput_series(
                rx_rt.process.output.entries(), bin_seconds, total_s),
            "Restart": throughput_series(
                restart_rt.output.entries(), bin_seconds, total_s),
        }
        texts.append(render_series(
            f"--- {name}: throughput (MB per simulated second) ---",
            series, bin_seconds))
        result.data[name] = {
            "series": series,
            "fa_recoveries": len(fa_session.recoveries),
            "rx_recoveries": len(rx_session.recoveries),
            "restarts": restart_session.restarts,
            "triggers": triggers,
        }
    result.text = "\n".join(texts)
    return result


def figure5_report() -> ExperimentResult:
    """Figure 5: the bug report for the Apache dangling-pointer read."""
    app = get_app("apache")
    runtime, session, _wl = run_first_aid(app, triggers=1)
    result = ExperimentResult(
        "figure5", "Bug report for the Apache dangling pointer read")
    if session.recoveries and session.recoveries[0].report:
        result.text = session.recoveries[0].report.render()
        rec = session.recoveries[0]
        result.data["patches"] = len(rec.diagnosis.patches)
        result.data["bug_types"] = [b.value
                                    for b in rec.diagnosis.bug_types]
    else:
        result.text = "(no recovery happened -- unexpected)"
    return result


def _ablation(name: str) -> Callable[[], ExperimentResult]:
    def run() -> ExperimentResult:
        from repro.bench import ablations
        return getattr(ablations, name)()
    return run


EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "table2": table2_inventory,
    "table3": table3_effectiveness,
    "table4": table4_accuracy,
    "table5": table5_patch_space,
    "table6": table6_allocator_space,
    "table7": table7_checkpoint_space,
    "figure4": figure4_throughput,
    "figure5": figure5_report,
    "figure6": figure6_overhead,
    "ablation-heap-marking": _ablation("ablation_heap_marking"),
    "ablation-rx-misdiagnosis": _ablation("ablation_rx_misdiagnosis"),
    "ablation-site-search": _ablation("ablation_site_search"),
}


def run_experiment(name: str) -> ExperimentResult:
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; have "
                       f"{sorted(EXPERIMENTS)}")
    return EXPERIMENTS[name]()
