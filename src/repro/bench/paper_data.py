"""The paper's published numbers, for side-by-side comparison in the
regenerated tables (EXPERIMENTS.md records ours vs. theirs).

Source: Gao, Zhang, Tang, Qin -- "First-Aid: Surviving and Preventing
Memory Management Bugs during Production Runs", EuroSys 2009,
Tables 2-7.  Absolute values come from a 2005-era Xeon testbed and the
real applications; this reproduction targets the *shape* (orderings,
ratios, crossovers), not the absolute numbers.
"""

from __future__ import annotations

#: Table 3: (diagnosed bug, patch "desc(count)", recovery s,
#:           avoid future errors, rollbacks, validation s)
TABLE3 = {
    "apache": ("dangling pointer read", "delay free(7)", 3.978, "Yes",
               28, 9.620),
    "squid": ("buffer overflow", "add padding(1)", 0.386, "Yes", 7,
              14.198),
    "cvs": ("double free", "delay free(1)", 0.121, "Yes", 6, 3.887),
    "pine": ("buffer overflow", "add padding(1)", 0.722, "Yes", 7,
             18.276),
    "mutt": ("buffer overflow", "add padding(1)", 0.617, "Yes", 7,
             10.610),
    "m4": ("dangling pointer reads", "delay free(2)", 1.396, "Yes", 18,
           3.407),
    "bc": ("two buffer overflows", "add padding(3)", 0.573, "Yes", 6,
           2.625),
    "apache-uir": ("uninitialized read", "fill with zero(1)", 0.102,
                   "Yes", 9, 5.750),
    "apache-dpw": ("dangling pointer write", "delay free(1)", 0.084,
                   "Yes", 7, 5.718),
}

#: Table 4: (fa_callsites, rx_callsites, fa_objects, rx_objects)
TABLE4 = {
    "apache": (7, 32, 315, 2567),
    "squid": (1, 61, 1, 3626),
    "cvs": (1, 44, 17, 306),
    "pine": (1, 380, 11, 2881),
    "mutt": (1, 216, 2, 5004),
    "m4": (2, 8, 3, 183),
    "bc": (3, 34, 5, 732),
}

#: Table 5: (heap KB, patch type, space overhead bytes, ratio %)
TABLE5 = {
    "squid": (2338, "padding", 1016, 0.04),
    "pine": (651, "padding", 1016, 0.15),
    "mutt": (353, "padding", 1016, 0.28),
    "bc": (61, "padding", 3048, 4.96),
    "apache": (825, "delay free", 14512, 1.72),
    "cvs": (292, "delay free", 1496, 0.50),
    "m4": (16343, "delay free", 128, 0.0008),
}

#: Table 6: allocator-extension heap overhead percent.
TABLE6_OVERHEAD_PCT = {
    "apache": 0.49, "squid": 3.24, "cvs": 0.00, "mutt": 13.62,
    "pine": 54.09, "m4": 0.25, "bc": 6.78, "cfrac": 93.17,
    "espresso": 30.15, "lindsay": 0.22, "p2c": 55.10,
    "164.gzip": 0.00, "175.vpr": 2.76, "176.gcc": 0.08, "181.mcf": 0.00,
    "186.crafty": 0.00, "197.parser": 0.00, "252.eon": 1.89,
    "253.perlbmk": 10.76, "255.vortex": 0.65, "256.bzip2": 0.00,
    "300.twolf": 62.88,
}

#: Table 7: (MB per checkpoint, MB per second).
TABLE7 = {
    "apache": (0.068, 0.341), "squid": (0.211, 1.056),
    "cvs": (1.068, 4.942), "mutt": (0.286, 1.429),
    "pine": (0.345, 1.728), "m4": (0.222, 1.113), "bc": (0.040, 0.200),
    "cfrac": (0.210, 1.049), "espresso": (0.185, 0.923),
    "lindsay": (0.297, 1.484), "p2c": (0.055, 0.273),
    "164.gzip": (4.574, 6.852), "175.vpr": (1.355, 6.765),
    "176.gcc": (4.488, 7.074), "181.mcf": (9.691, 7.035),
    "186.crafty": (0.941, 4.657), "197.parser": (10.870, 6.836),
    "252.eon": (0.056, 0.280), "253.perlbmk": (4.566, 6.732),
    "255.vortex": (33.390, 7.120), "256.bzip2": (16.080, 6.945),
    "300.twolf": (1.585, 6.305),
}

#: Figure 6: the paper's overall normal-run overhead envelope.
FIGURE6_OVERHEAD_RANGE = (0.004, 0.116)   # 0.4% .. 11.6%
FIGURE6_OVERHEAD_AVG = 0.037              # 3.7%
