"""Experiment harness: regenerates every table and figure of the
paper's evaluation (Section 7).

Each experiment is a function in :mod:`repro.bench.experiments`
returning an :class:`~repro.bench.tables.ExperimentResult`; the
``benchmarks/`` tree wraps them in pytest-benchmark entries, and
``python -m repro.bench`` runs them from the command line and rebuilds
EXPERIMENTS.md.
"""

from repro.bench.tables import ExperimentResult, render_table
from repro.bench.experiments import (
    EXPERIMENTS,
    figure4_throughput,
    figure5_report,
    figure6_overhead,
    run_experiment,
    table2_inventory,
    table3_effectiveness,
    table4_accuracy,
    table5_patch_space,
    table6_allocator_space,
    table7_checkpoint_space,
)

__all__ = [
    "ExperimentResult",
    "render_table",
    "EXPERIMENTS",
    "run_experiment",
    "table2_inventory",
    "table3_effectiveness",
    "table4_accuracy",
    "table5_patch_space",
    "table6_allocator_space",
    "table7_checkpoint_space",
    "figure4_throughput",
    "figure5_report",
    "figure6_overhead",
]
