"""Shared experiment plumbing: session runners, workload spacing, and
the cached three-configuration overhead sweep."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.apps.base import App, Workload
from repro.apps.registry import all_apps, real_bug_apps
from repro.baselines.restart import RestartRuntime, RestartSessionResult
from repro.baselines.rx import RxRuntime, RxSessionResult
from repro.checkpoint.manager import DEFAULT_INTERVAL, CheckpointManager
from repro.core.runtime import FirstAidConfig, FirstAidRuntime, SessionResult
from repro.heap.extension import ExtensionMode
from repro.obs.telemetry import Telemetry
from repro.process import Process
from repro.vm.program import Program
from repro.workloads import ALLOC_INTENSIVE, SPEC_INT2000, build_kernel

#: Failure-window length used to space triggers so each one is a
#: separate failure (3 checkpoint intervals, as in diagnosis).
WINDOW_INSTRS = 3 * DEFAULT_INTERVAL


def spaced_workload(app: App, triggers: int = 2,
                    seed: int = 42) -> Workload:
    """A workload whose triggers are far enough apart that each one
    fires outside the previous failure region."""
    spacing = max(40, int(WINDOW_INSTRS * 1.4 / app.REQUEST_COST_HINT))
    return app.workload(normal_before=40, triggers=triggers,
                        normal_between=spacing, normal_after=40,
                        seed=seed)


def run_first_aid(app: App, workload: Optional[Workload] = None,
                  triggers: int = 2,
                  config: Optional[FirstAidConfig] = None
                  ) -> Tuple[FirstAidRuntime, SessionResult, Workload]:
    wl = workload or spaced_workload(app, triggers)
    runtime = FirstAidRuntime(app.program(), input_tokens=wl.tokens,
                              config=config or FirstAidConfig())
    session = runtime.run()
    return runtime, session, wl


def run_rx(app: App, workload: Optional[Workload] = None,
           triggers: int = 2) -> Tuple[RxRuntime, RxSessionResult,
                                       Workload]:
    wl = workload or spaced_workload(app, triggers)
    runtime = RxRuntime(app.program(), input_tokens=wl.tokens)
    session = runtime.run()
    return runtime, session, wl


def run_restart(app: App, workload: Optional[Workload] = None,
                triggers: int = 2) -> Tuple[RestartRuntime,
                                            RestartSessionResult,
                                            Workload]:
    wl = workload or spaced_workload(app, triggers)
    runtime = RestartRuntime(app.program(), wl)
    session = runtime.run()
    return runtime, session, wl


# ---------------------------------------------------------------------
# overhead sweep (Figure 6, Tables 6-7)
# ---------------------------------------------------------------------

@dataclass
class Subject:
    """One program in the overhead experiments."""

    name: str
    group: str       # "app" | "spec" | "alloc"
    program: Program
    tokens: List[int]


@dataclass
class OverheadRun:
    """Measurements of one (subject, configuration) run."""

    time_s: float
    instrs: int
    peak_heap_bytes: int
    peak_metadata_bytes: int
    bytes_per_checkpoint: float = 0.0
    bytes_per_second: float = 0.0
    checkpoints: int = 0
    keyframes: int = 0
    #: Real bytes held by the live checkpoint history at run end
    #: (deduped page payloads), not the cow_pages * page_size estimate.
    retained_bytes: int = 0
    #: Selected telemetry counters from the run's metrics registry
    #: (instructions, heap ops, checkpoint work); see overhead_run.
    metrics: Dict[str, float] = field(default_factory=dict)


_SUBJECTS: Optional[List[Subject]] = None
_RUN_CACHE: Dict[Tuple[str, str], OverheadRun] = {}


def overhead_subjects() -> List[Subject]:
    """The paper's Figure 6 population: the seven real-bug apps, the
    SPEC INT2000 kernels, and the four allocation-intensive kernels."""
    global _SUBJECTS
    if _SUBJECTS is None:
        subjects: List[Subject] = []
        for app in real_bug_apps():
            requests = max(120, 220_000 // app.REQUEST_COST_HINT)
            wl = app.normal_workload(requests=requests)
            subjects.append(Subject(app.name, "app", app.program(),
                                    wl.tokens))
        for profile in SPEC_INT2000 + ALLOC_INTENSIVE:
            subjects.append(Subject(profile.name, profile.group,
                                    build_kernel(profile), []))
        _SUBJECTS = subjects
    return _SUBJECTS


def overhead_run(subject: Subject, config: str) -> OverheadRun:
    """Run a subject under one configuration (cached):

    * ``"off"``  -- original allocator, no checkpointing;
    * ``"ext"``  -- allocator extension in normal mode (empty pool);
    * ``"full"`` -- extension + periodic checkpointing.
    """
    key = (subject.name, config)
    if key in _RUN_CACHE:
        return _RUN_CACHE[key]
    mode = ExtensionMode.OFF if config == "off" else ExtensionMode.NORMAL
    process = Process(subject.program, input_tokens=subject.tokens,
                      mode=mode)
    telemetry = Telemetry()
    process.attach_telemetry(telemetry)
    run = OverheadRun(0.0, 0, 0, 0)
    if config == "full":
        manager = CheckpointManager(process, telemetry=telemetry)
        manager.run()
        stats = manager.stats
        run.bytes_per_checkpoint = stats.bytes_per_checkpoint
        run.bytes_per_second = stats.bytes_per_second(
            process.costs.instr_ns)
        run.checkpoints = stats.checkpoints_taken
        run.keyframes = stats.keyframes_taken
        run.retained_bytes = manager.retained_bytes()
    else:
        process.run()
    run.time_s = process.clock.now_s
    run.instrs = process.instr_count
    run.peak_heap_bytes = process.allocator.peak_heap_bytes
    run.peak_metadata_bytes = process.extension.peak_metadata_bytes
    snap = telemetry.metrics.snapshot()
    run.metrics = {
        name: value
        for group in ("counters", "gauges")
        for name, value in snap[group].items()
        if name.startswith(("vm.", "heap.", "checkpoint."))
    }
    _RUN_CACHE[key] = run
    return run


def clear_overhead_cache() -> None:
    """Testing hook."""
    _RUN_CACHE.clear()
    global _SUBJECTS
    _SUBJECTS = None


# ---------------------------------------------------------------------
# throughput binning (Figure 4)
# ---------------------------------------------------------------------

def throughput_series(entries: List[Tuple[int, int]],
                      bin_seconds: float = 1.0,
                      total_seconds: Optional[float] = None
                      ) -> List[float]:
    """Bin (time_ns, bytes) output entries into MB/s per bin."""
    if not entries and total_seconds is None:
        return []
    end_s = total_seconds if total_seconds is not None else \
        entries[-1][0] / 1e9 + bin_seconds
    n_bins = max(1, int(end_s / bin_seconds) + 1)
    bins = [0.0] * n_bins
    for t_ns, value in entries:
        idx = int(t_ns / 1e9 / bin_seconds)
        if 0 <= idx < n_bins:
            bins[idx] += value
    return [b / (bin_seconds * 1e6) for b in bins]
