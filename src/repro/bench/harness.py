"""Shared experiment plumbing: session runners, workload spacing, and
the cached three-configuration overhead sweep."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.apps.base import App, Workload
from repro.apps.registry import all_apps, real_bug_apps
from repro.baselines.restart import RestartRuntime, RestartSessionResult
from repro.baselines.rx import RxRuntime, RxSessionResult
from repro.checkpoint.manager import DEFAULT_INTERVAL, CheckpointManager
from repro.core.runtime import FirstAidConfig, FirstAidRuntime, SessionResult
from repro.heap.extension import ExtensionMode
from repro.obs.telemetry import Telemetry
from repro.process import Process
from repro.vm.program import Program
from repro.workloads import ALLOC_INTENSIVE, SPEC_INT2000, build_kernel

#: Failure-window length used to space triggers so each one is a
#: separate failure (3 checkpoint intervals, as in diagnosis).
WINDOW_INSTRS = 3 * DEFAULT_INTERVAL


def spaced_workload(app: App, triggers: int = 2,
                    seed: int = 42) -> Workload:
    """A workload whose triggers are far enough apart that each one
    fires outside the previous failure region."""
    spacing = max(40, int(WINDOW_INSTRS * 1.4 / app.REQUEST_COST_HINT))
    return app.workload(normal_before=40, triggers=triggers,
                        normal_between=spacing, normal_after=40,
                        seed=seed)


def run_first_aid(app: App, workload: Optional[Workload] = None,
                  triggers: int = 2,
                  config: Optional[FirstAidConfig] = None
                  ) -> Tuple[FirstAidRuntime, SessionResult, Workload]:
    wl = workload or spaced_workload(app, triggers)
    runtime = FirstAidRuntime(app.program(), input_tokens=wl.tokens,
                              config=config or FirstAidConfig())
    session = runtime.run()
    return runtime, session, wl


def run_rx(app: App, workload: Optional[Workload] = None,
           triggers: int = 2) -> Tuple[RxRuntime, RxSessionResult,
                                       Workload]:
    wl = workload or spaced_workload(app, triggers)
    runtime = RxRuntime(app.program(), input_tokens=wl.tokens)
    session = runtime.run()
    return runtime, session, wl


def run_restart(app: App, workload: Optional[Workload] = None,
                triggers: int = 2) -> Tuple[RestartRuntime,
                                            RestartSessionResult,
                                            Workload]:
    wl = workload or spaced_workload(app, triggers)
    runtime = RestartRuntime(app.program(), wl)
    session = runtime.run()
    return runtime, session, wl


# ---------------------------------------------------------------------
# overhead sweep (Figure 6, Tables 6-7)
# ---------------------------------------------------------------------

@dataclass
class Subject:
    """One program in the overhead experiments."""

    name: str
    group: str       # "app" | "spec" | "alloc"
    program: Program
    tokens: List[int]


@dataclass
class OverheadRun:
    """Measurements of one (subject, configuration) run."""

    time_s: float
    instrs: int
    peak_heap_bytes: int
    peak_metadata_bytes: int
    bytes_per_checkpoint: float = 0.0
    bytes_per_second: float = 0.0
    checkpoints: int = 0
    keyframes: int = 0
    #: Real bytes held by the live checkpoint history at run end
    #: (deduped page payloads), not the cow_pages * page_size estimate.
    retained_bytes: int = 0
    #: Selected telemetry counters from the run's metrics registry
    #: (instructions, heap ops, checkpoint work); see overhead_run.
    metrics: Dict[str, float] = field(default_factory=dict)


_SUBJECTS: Optional[List[Subject]] = None
_RUN_CACHE: Dict[Tuple[str, str], OverheadRun] = {}


def overhead_subjects() -> List[Subject]:
    """The paper's Figure 6 population: the seven real-bug apps, the
    SPEC INT2000 kernels, and the four allocation-intensive kernels."""
    global _SUBJECTS
    if _SUBJECTS is None:
        subjects: List[Subject] = []
        for app in real_bug_apps():
            requests = max(120, 220_000 // app.REQUEST_COST_HINT)
            wl = app.normal_workload(requests=requests)
            subjects.append(Subject(app.name, "app", app.program(),
                                    wl.tokens))
        for profile in SPEC_INT2000 + ALLOC_INTENSIVE:
            subjects.append(Subject(profile.name, profile.group,
                                    build_kernel(profile), []))
        _SUBJECTS = subjects
    return _SUBJECTS


def overhead_run(subject: Subject, config: str) -> OverheadRun:
    """Run a subject under one configuration (cached):

    * ``"off"``  -- original allocator, no checkpointing;
    * ``"ext"``  -- allocator extension in normal mode (empty pool);
    * ``"full"`` -- extension + periodic checkpointing.
    """
    key = (subject.name, config)
    if key in _RUN_CACHE:
        return _RUN_CACHE[key]
    mode = ExtensionMode.OFF if config == "off" else ExtensionMode.NORMAL
    process = Process(subject.program, input_tokens=subject.tokens,
                      mode=mode)
    telemetry = Telemetry()
    process.attach_telemetry(telemetry)
    run = OverheadRun(0.0, 0, 0, 0)
    if config == "full":
        manager = CheckpointManager(process, telemetry=telemetry)
        manager.run()
        stats = manager.stats
        run.bytes_per_checkpoint = stats.bytes_per_checkpoint
        run.bytes_per_second = stats.bytes_per_second(
            process.costs.instr_ns)
        run.checkpoints = stats.checkpoints_taken
        run.keyframes = stats.keyframes_taken
        run.retained_bytes = manager.retained_bytes()
    else:
        process.run()
    run.time_s = process.clock.now_s
    run.instrs = process.instr_count
    run.peak_heap_bytes = process.allocator.peak_heap_bytes
    run.peak_metadata_bytes = process.extension.peak_metadata_bytes
    snap = telemetry.metrics.snapshot()
    run.metrics = {
        name: value
        for group in ("counters", "gauges")
        for name, value in snap[group].items()
        if name.startswith(("vm.", "heap.", "checkpoint."))
    }
    _RUN_CACHE[key] = run
    return run


def clear_overhead_cache() -> None:
    """Testing hook."""
    _RUN_CACHE.clear()
    global _SUBJECTS
    _SUBJECTS = None


# ---------------------------------------------------------------------
# backend-equivalence session digests (parallel recovery engine)
# ---------------------------------------------------------------------

@dataclass
class SessionDigest:
    """Everything observable about one First-Aid session, split into
    behavior (must be byte-identical across execution backends) and
    timing (legitimately differs: parallel batches charge
    max-over-workers, serial charges the sum).

    ``equivalence_key()`` is the behavior half; the parallel benchmark
    asserts it matches between ``workers=1`` and ``workers=N``.
    """

    app: str
    workers: int
    reason: str
    recoveries: int
    succeeded: Tuple[bool, ...]
    verdicts: Tuple[str, ...]
    bug_types: Tuple[Tuple[str, ...], ...]
    rollbacks: Tuple[int, ...]
    patch_points: Tuple[Tuple[str, ...], ...]
    validation_consistent: Tuple[Optional[bool], ...]
    validation_reasons: Tuple[Tuple[str, ...], ...]
    #: full bug reports rendered with every timestamp masked
    reports: Tuple[Optional[str], ...]
    #: degradation-ladder rung that resolved each failure (all 1s on
    #: the no-escalation path, and always with supervisor=False)
    rungs: Tuple[int, ...] = ()
    # -- timing (excluded from the equivalence key) --
    recovery_time_ns: Tuple[int, ...] = ()
    validation_time_ns: Tuple[int, ...] = ()
    recovery_wall_s: Tuple[float, ...] = ()
    validation_wall_s: Tuple[float, ...] = ()
    clock_ns: int = 0
    wall_s: float = 0.0
    worker_failures: int = 0
    # -- search policy (repro.search).  Probe counts are excluded from
    #    both keys: the whole point of pruned/bandit search is doing
    #    less work for the same diagnosis. --
    search_policy: str = "fixed"
    checkpoints: Tuple[Optional[int], ...] = ()
    evidence: Tuple[Tuple[str, ...], ...] = ()
    probes_executed: Tuple[int, ...] = ()
    probes_consumed: Tuple[int, ...] = ()
    probes_pruned: Tuple[int, ...] = ()
    arms_pruned: Tuple[int, ...] = ()

    def equivalence_key(self) -> Tuple:
        return (self.app, self.reason, self.recoveries, self.succeeded,
                self.verdicts, self.bug_types, self.rollbacks,
                self.patch_points, self.validation_consistent,
                self.validation_reasons, self.reports, self.rungs)

    def diagnosis_key(self) -> Tuple:
        """The diagnosis content that must be byte-identical across
        *search policies* (fixed/pruned/bandit): verdicts, bug types,
        chosen checkpoints, full evidence (sites and details), patch
        points, validation outcomes.  Excludes rollback/probe counts
        and the report text (which narrates the probes themselves)."""
        return (self.app, self.reason, self.recoveries, self.succeeded,
                self.verdicts, self.bug_types, self.checkpoints,
                self.evidence, self.patch_points,
                self.validation_consistent, self.validation_reasons,
                self.rungs)


def run_app_session(app_name: str, triggers: int = 2,
                    workers: int = 1,
                    telemetry: bool = False,
                    supervisor: bool = True,
                    vm_tier: str = "reference",
                    search_policy: str = "fixed",
                    rollout: bool = False,
                    store_path: Optional[str] = None,
                    sampling_rate: int = 0) -> SessionDigest:
    """Run one app under First-Aid and digest the session.  Top-level
    (and addressed by app *name*) so the call itself can ship to a
    worker process when benchmark sessions fan out.

    ``rollout`` (with a ``store_path``) turns on staged rollout for
    the session; the rollout bench gates that the digest's
    equivalence/diagnosis keys match the rollout-off run exactly --
    staged distribution must never change what a session diagnoses.

    ``sampling_rate`` arms GWP-ASan-style sampled guards (DESIGN.md
    §15); the sampling bench gates that ``sampling_rate=0`` digests
    stay byte-identical to this function's defaults."""
    import time as _time

    app = {a.name: a for a in all_apps()}[app_name]
    wl = spaced_workload(app, triggers)
    config = FirstAidConfig(workers=workers, telemetry=telemetry,
                            supervisor=supervisor, vm_tier=vm_tier,
                            search_policy=search_policy,
                            rollout=rollout, store_path=store_path,
                            sampling_rate=sampling_rate)
    started = _time.perf_counter()
    runtime, session, _ = run_first_aid(app, wl, config=config)
    wall = _time.perf_counter() - started
    recs = session.recoveries
    digest = SessionDigest(
        app=app_name,
        workers=workers,
        reason=session.reason,
        recoveries=len(recs),
        succeeded=tuple(r.succeeded for r in recs),
        verdicts=tuple(r.diagnosis.verdict.name if r.diagnosis else ""
                       for r in recs),
        bug_types=tuple(
            tuple(b.value for b in r.diagnosis.bug_types)
            if r.diagnosis else () for r in recs),
        rollbacks=tuple(r.diagnosis.rollbacks if r.diagnosis else 0
                        for r in recs),
        patch_points=tuple(
            tuple(p.describe() for p in r.diagnosis.patches)
            if r.diagnosis else () for r in recs),
        validation_consistent=tuple(
            r.validation.consistent if r.validation else None
            for r in recs),
        validation_reasons=tuple(
            tuple(r.validation.reasons) if r.validation else ()
            for r in recs),
        reports=tuple(
            r.report.render(redact_times=True) if r.report else None
            for r in recs),
        rungs=tuple(r.rung for r in recs),
        search_policy=search_policy,
        checkpoints=tuple(
            r.diagnosis.checkpoint.index
            if r.diagnosis and r.diagnosis.checkpoint else None
            for r in recs),
        evidence=tuple(_evidence_digest(r.diagnosis) for r in recs),
        probes_executed=tuple(_search_stat(r.diagnosis,
                                           "probes_executed")
                              for r in recs),
        probes_consumed=tuple(_search_stat(r.diagnosis,
                                           "probes_consumed")
                              for r in recs),
        probes_pruned=tuple(_search_stat(r.diagnosis, "probes_pruned")
                            for r in recs),
        arms_pruned=tuple(_search_stat(r.diagnosis, "arms_pruned")
                          for r in recs),
        recovery_time_ns=tuple(r.recovery_time_ns for r in recs),
        validation_time_ns=tuple(
            r.validation.time_ns if r.validation else 0 for r in recs),
        recovery_wall_s=tuple(r.wall_s for r in recs),
        validation_wall_s=tuple(
            r.validation.wall_s if r.validation else 0.0 for r in recs),
        clock_ns=runtime.process.clock.now_ns,
        wall_s=wall,
        worker_failures=(runtime.executor.worker_failures
                         if runtime.executor else 0),
    )
    runtime.close()
    return digest


def _evidence_digest(diagnosis) -> Tuple[str, ...]:
    """Byte-comparable rendering of one diagnosis' evidence, in bug
    identification order."""
    if diagnosis is None:
        return ()
    out = []
    for bug_type in diagnosis.bug_types:
        ev = diagnosis.evidence[bug_type]
        sites = ";".join(site.render() for site in ev.sites)
        out.append(f"{bug_type.value}|{sites}|{';'.join(ev.details)}")
    return tuple(out)


def _search_stat(diagnosis, key: str) -> int:
    if diagnosis is None or not diagnosis.search_info:
        return 0
    return diagnosis.search_info.get(key, 0)


def _session_task(spec: Tuple[str, int, int]) -> SessionDigest:
    name, triggers, workers = spec
    return run_app_session(name, triggers=triggers, workers=workers)


def fan_out_sessions(app_names: List[str], triggers: int = 2,
                     workers: int = 1,
                     fan_workers: int = 1) -> List[SessionDigest]:
    """Digest one session per app.  With ``fan_workers > 1`` whole
    sessions run in worker processes concurrently; results always merge
    in app order, so the output is backend-independent."""
    specs = [(name, triggers, workers) for name in app_names]
    if fan_workers <= 1:
        return [_session_task(spec) for spec in specs]
    import multiprocessing as mp
    from concurrent.futures import ProcessPoolExecutor
    methods = mp.get_all_start_methods()
    ctx = mp.get_context("fork" if "fork" in methods else None)
    with ProcessPoolExecutor(max_workers=fan_workers,
                             mp_context=ctx) as pool:
        return list(pool.map(_session_task, specs))


def _overhead_task(key: Tuple[str, str]) -> Tuple[Tuple[str, str],
                                                  OverheadRun]:
    name, config = key
    subject = next(s for s in overhead_subjects() if s.name == name)
    return key, overhead_run(subject, config)


def overhead_sweep(configs: Tuple[str, ...] = ("off", "ext", "full"),
                   workers: int = 1) -> Dict[Tuple[str, str],
                                             OverheadRun]:
    """Run (and cache) every (subject, configuration) overhead cell.
    With ``workers > 1`` the independent cells fan out across worker
    processes; results merge into the cache in deterministic key order
    either way, so downstream tables are identical."""
    keys = [(s.name, c) for s in overhead_subjects() for c in configs]
    missing = [k for k in keys if k not in _RUN_CACHE]
    if workers > 1 and missing:
        import multiprocessing as mp
        from concurrent.futures import ProcessPoolExecutor
        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else None)
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=ctx) as pool:
            for key, run in pool.map(_overhead_task, missing):
                _RUN_CACHE[key] = run
    else:
        for key in missing:
            _overhead_task(key)
    return {k: _RUN_CACHE[k] for k in keys}


# ---------------------------------------------------------------------
# throughput binning (Figure 4)
# ---------------------------------------------------------------------

def throughput_series(entries: List[Tuple[int, int]],
                      bin_seconds: float = 1.0,
                      total_seconds: Optional[float] = None
                      ) -> List[float]:
    """Bin (time_ns, bytes) output entries into MB/s per bin."""
    if not entries and total_seconds is None:
        return []
    end_s = total_seconds if total_seconds is not None else \
        entries[-1][0] / 1e9 + bin_seconds
    n_bins = max(1, int(end_s / bin_seconds) + 1)
    bins = [0.0] * n_bins
    for t_ns, value in entries:
        idx = int(t_ns / 1e9 / bin_seconds)
        if 0 <= idx < n_bins:
            bins[idx] += value
    return [b / (bin_seconds * 1e6) for b in bins]
