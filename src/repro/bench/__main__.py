"""CLI: run experiments and print (or save) the regenerated tables.

Usage::

    python -m repro.bench                  # run everything
    python -m repro.bench table3 figure4   # run a subset
    python -m repro.bench --write-md PATH  # also write a markdown report
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.experiments import EXPERIMENTS, run_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation tables/figures.")
    parser.add_argument("experiments", nargs="*",
                        help=f"subset of {sorted(EXPERIMENTS)}; "
                        "default: all")
    parser.add_argument("--write-md", metavar="PATH",
                        help="write a markdown report to PATH")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="pre-populate the overhead-sweep cache "
                        "with N worker processes before the "
                        "experiments run (results are identical; "
                        "only wall-clock changes)")
    parser.add_argument("--chaos", action="store_true",
                        help="run the cross-layer chaos storm instead "
                        "of the paper tables: inject faults at the "
                        "checkpoint/diagnosis/worker/monitor/"
                        "validation layers and report the "
                        "degradation-ladder outcome")
    args = parser.parse_args(argv)

    if args.chaos:
        return _run_chaos()

    if args.workers > 1:
        from repro.bench.harness import overhead_sweep
        t0 = time.time()
        overhead_sweep(workers=args.workers)
        print(f"[overhead sweep pre-populated with "
              f"{args.workers} workers in {time.time() - t0:.1f}s]\n")

    names = args.experiments or sorted(EXPERIMENTS)
    sections = []
    for name in names:
        t0 = time.time()
        result = run_experiment(name)
        elapsed = time.time() - t0
        body = result.render()
        print(body)
        print(f"[{name} regenerated in {elapsed:.1f}s]\n")
        sections.append((name, result, elapsed, body))

    if args.write_md:
        with open(args.write_md, "w") as handle:
            handle.write("# Regenerated evaluation\n\n")
            for name, result, elapsed, body in sections:
                handle.write(f"## {result.exp_id}: {result.title}\n\n")
                handle.write("```\n" + body + "\n```\n\n")
                handle.write(f"_regenerated in {elapsed:.1f}s_\n\n")
        print(f"wrote {args.write_md}")
    return 0


def _run_chaos() -> int:
    from repro.chaos.storm import run_storm
    t0 = time.time()
    result = run_storm()
    print(f"chaos storm: {len(result.sessions)} supervised sessions, "
          f"{result.faults_fired} faults fired "
          f"({result.fired_by_kind})")
    print(f"rung histogram: "
          f"{dict(sorted(result.rung_histogram.items()))}")
    print(f"survival: supervised {result.survival_rate:.0%} vs "
          f"no-supervisor baseline "
          f"{result.baseline_survival_rate:.0%}; "
          f"unhandled exceptions: {result.unhandled}")
    print(f"[storm ran in {time.time() - t0:.1f}s]")
    ok = (result.unhandled == 0
          and all(s.survived for s in result.sessions)
          and result.survival_rate > result.baseline_survival_rate)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
