"""Checkpoint/rollback -- the Flashback analogue.

:class:`~repro.checkpoint.manager.CheckpointManager` drives a process
in checkpoint intervals, keeps a bounded history of
:class:`~repro.checkpoint.snapshot.Checkpoint` objects, accounts
copy-on-write page traffic (Tables 6-7), and implements the paper's
adaptive interval policy: when the COW page rate pushes checkpointing
overhead past a target, the interval grows, up to a maximum.
"""

from repro.checkpoint.snapshot import Checkpoint
from repro.checkpoint.manager import CheckpointManager, CheckpointStats

__all__ = ["Checkpoint", "CheckpointManager", "CheckpointStats"]
