"""The checkpoint manager.

Drives a process in intervals (the paper uses 200 ms; at this repo's
calibration that is :data:`DEFAULT_INTERVAL` instructions), takes a
checkpoint at each boundary, and keeps the most recent ``max_keep``
checkpoints for rollback.

Adaptive interval (paper Section 3): the manager monitors the COW page
rate.  If estimated checkpointing overhead (page-copy time over
interval time) exceeds ``overhead_target``, the interval grows
geometrically up to ``max_interval``; when the rate falls it shrinks
back toward the base interval.  Old checkpoints being discarded as the
interval grows keeps "the same length of history while keeping less
data in memory" (Table 7 discussion).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from repro.checkpoint.snapshot import Checkpoint
from repro.errors import CheckpointError
from repro.heap.base import PAGE_SIZE
from repro.process import Process
from repro.util.events import EventLog
from repro.vm.machine import RunReason, RunResult

#: 200 ms at the calibration of 10 us per instruction.
DEFAULT_INTERVAL = 20_000


@dataclass
class CheckpointStats:
    """Aggregate checkpointing statistics (feeds Table 7)."""

    checkpoints_taken: int = 0
    rollbacks: int = 0
    pages_copied_total: int = 0
    per_checkpoint_pages: List[int] = field(default_factory=list)
    per_checkpoint_interval: List[int] = field(default_factory=list)

    @property
    def bytes_per_checkpoint(self) -> float:
        if not self.per_checkpoint_pages:
            return 0.0
        return (sum(self.per_checkpoint_pages)
                / len(self.per_checkpoint_pages) * PAGE_SIZE)

    def bytes_per_second(self, instr_ns: int) -> float:
        """Average checkpoint traffic per simulated second."""
        total_bytes = self.pages_copied_total * PAGE_SIZE
        total_ns = sum(self.per_checkpoint_interval) * instr_ns
        if total_ns == 0:
            return 0.0
        return total_bytes / (total_ns / 1e9)


class CheckpointManager:
    """Periodic checkpointing and rollback for one process."""

    def __init__(self, process: Process,
                 interval: int = DEFAULT_INTERVAL,
                 max_keep: int = 64,
                 adaptive: bool = True,
                 overhead_target: float = 0.05,
                 max_interval: int = 20 * DEFAULT_INTERVAL,
                 events: Optional[EventLog] = None,
                 enabled: bool = True):
        self.process = process
        self.base_interval = interval
        self.interval = interval
        self.max_keep = max_keep
        self.adaptive = adaptive
        self.overhead_target = overhead_target
        self.max_interval = max_interval
        self.events = events if events is not None else EventLog()
        self.enabled = enabled
        self.checkpoints: Deque[Checkpoint] = deque(maxlen=max_keep)
        self.stats = CheckpointStats()
        self._next_index = 0

    # ------------------------------------------------------------------

    def take_checkpoint(self) -> Checkpoint:
        """Snapshot the process now and charge checkpoint costs."""
        process = self.process
        cow_pages = process.mem.dirty_page_count
        costs = process.costs
        process.clock.charge(costs.checkpoint_base_ns
                             + cow_pages * costs.page_copy_ns)
        ck = Checkpoint(self._next_index, process.clock.now_ns,
                        process.snapshot(), cow_pages, PAGE_SIZE)
        self._next_index += 1
        process.mem.clear_dirty()
        self.checkpoints.append(ck)
        self.stats.checkpoints_taken += 1
        self.stats.pages_copied_total += cow_pages
        self.stats.per_checkpoint_pages.append(cow_pages)
        self.stats.per_checkpoint_interval.append(self.interval)
        self.events.emit(process.clock.now_ns, "checkpoint",
                         index=ck.index, instr=ck.instr_count,
                         cow_pages=cow_pages, interval=self.interval)
        if self.adaptive:
            self._adapt(cow_pages)
        return ck

    def _adapt(self, cow_pages: int) -> None:
        """Grow the interval when COW traffic makes overhead too high,
        shrink it back when traffic is light."""
        costs = self.process.costs
        copy_ns = (cow_pages * costs.page_copy_ns
                   + costs.checkpoint_base_ns)
        interval_ns = self.interval * costs.instr_ns
        overhead = copy_ns / interval_ns if interval_ns else 0.0
        if overhead > self.overhead_target:
            self.interval = min(int(self.interval * 1.5),
                                self.max_interval)
        elif (overhead < self.overhead_target / 3
              and self.interval > self.base_interval):
            self.interval = max(int(self.interval / 1.5),
                                self.base_interval)

    # ------------------------------------------------------------------

    def run(self, max_steps: Optional[int] = None) -> RunResult:
        """Run the process with periodic checkpoints until something
        other than an interval boundary stops it (halt, fault, input
        exhaustion, or the optional step budget)."""
        process = self.process
        if self.enabled and not self.checkpoints:
            self.take_checkpoint()
        remaining = max_steps
        while True:
            if not self.enabled:
                return process.run(max_steps=remaining)
            boundary = process.instr_count + self.interval
            step = self.interval
            if remaining is not None:
                step = min(step, remaining)
            result = process.run(stop_at=process.instr_count + step)
            if remaining is not None:
                remaining -= step
                if remaining <= 0 and result.reason is RunReason.STOP:
                    return result
            if result.reason is not RunReason.STOP:
                return result
            if process.instr_count >= boundary:
                self.take_checkpoint()

    # ------------------------------------------------------------------

    def latest(self) -> Checkpoint:
        if not self.checkpoints:
            raise CheckpointError("no checkpoints taken yet")
        return self.checkpoints[-1]

    def recent(self, count: int) -> List[Checkpoint]:
        """Up to ``count`` checkpoints, most recent first."""
        items = list(self.checkpoints)[-count:]
        return items[::-1]

    def rollback_to(self, checkpoint: Checkpoint) -> None:
        """Restore the process to ``checkpoint`` and charge restore
        costs (rollbacks never rewind the clock)."""
        process = self.process
        costs = process.costs
        process.clock.charge(costs.restore_base_ns
                             + checkpoint.cow_pages * costs.page_restore_ns)
        process.restore(checkpoint.state)
        process.mem.clear_dirty()
        self.stats.rollbacks += 1
        self.events.emit(process.clock.now_ns, "rollback",
                         to_index=checkpoint.index,
                         instr=checkpoint.instr_count)

    def drop_after(self, checkpoint: Checkpoint) -> None:
        """Discard checkpoints newer than ``checkpoint`` (used after a
        recovery commits to an older state)."""
        while self.checkpoints and \
                self.checkpoints[-1].index > checkpoint.index:
            self.checkpoints.pop()
