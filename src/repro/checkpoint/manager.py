"""The checkpoint manager.

Drives a process in intervals (the paper uses 200 ms; at this repo's
calibration that is :data:`DEFAULT_INTERVAL` instructions), takes a
checkpoint at each boundary, and keeps the most recent ``max_keep``
checkpoints for rollback.

Checkpoints are **incremental**: each one stores only the pages dirtied
since the previous one (the COW page set Flashback would have copied),
with a full keyframe every ``keyframe_every`` checkpoints to bound the
restore chain.  A page cache dedupes identical page payloads across
checkpoints, so ``space_bytes`` per checkpoint measures real retained
bytes.  Rollback is in-place: the manager tracks which checkpoint the
heap currently derives from, computes the pages that can differ from
the target (per-interval dirty sets plus writes since the last
boundary), and rewrites only those -- O(pages changed), not O(heap).

Adaptive interval (paper Section 3): the manager monitors the COW page
rate.  If estimated checkpointing overhead (page-copy time over
interval time) exceeds ``overhead_target``, the interval grows
geometrically up to ``max_interval``; when the rate falls it shrinks
back toward the base interval.  Old checkpoints being discarded as the
interval grows keeps "the same length of history while keeping less
data in memory" (Table 7 discussion).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.checkpoint.snapshot import Checkpoint, pages_between
from repro.errors import CheckpointError, SampledGuardFault
from repro.heap.base import PAGE_SIZE
from repro.process import Process
from repro.util.events import EventLog
from repro.vm.machine import RunReason, RunResult

#: 200 ms at the calibration of 10 us per instruction.
DEFAULT_INTERVAL = 20_000

#: Full keyframe cadence: one keyframe, then K-1 deltas.
DEFAULT_KEYFRAME_EVERY = 8


@dataclass
class CheckpointStats:
    """Aggregate checkpointing statistics (feeds Table 7)."""

    checkpoints_taken: int = 0
    keyframes_taken: int = 0
    rollbacks: int = 0
    full_restores: int = 0
    pages_copied_total: int = 0
    pages_restored_total: int = 0
    #: Deduped delta payload bytes actually retained per checkpoint.
    delta_bytes_total: int = 0
    per_checkpoint_pages: List[int] = field(default_factory=list)
    per_checkpoint_bytes: List[int] = field(default_factory=list)
    per_checkpoint_interval: List[int] = field(default_factory=list)

    @property
    def bytes_per_checkpoint(self) -> float:
        """Average space retained per checkpoint.  Uses measured delta
        payload bytes when available; falls back to the page-count
        estimate for hand-built stats."""
        if self.per_checkpoint_bytes:
            return (sum(self.per_checkpoint_bytes)
                    / len(self.per_checkpoint_bytes))
        if not self.per_checkpoint_pages:
            return 0.0
        return (sum(self.per_checkpoint_pages)
                / len(self.per_checkpoint_pages) * PAGE_SIZE)

    def bytes_per_second(self, instr_ns: int) -> float:
        """Average checkpoint traffic per simulated second."""
        if self.per_checkpoint_bytes:
            total_bytes: float = sum(self.per_checkpoint_bytes)
        else:
            total_bytes = self.pages_copied_total * PAGE_SIZE
        total_ns = sum(self.per_checkpoint_interval) * instr_ns
        if total_ns == 0:
            return 0.0
        return total_bytes / (total_ns / 1e9)


class _CheckpointInstruments:
    """Registry instruments mirroring :class:`CheckpointStats`."""

    __slots__ = ("captures", "keyframes", "pages_copied", "delta_bytes",
                 "dirty_pages", "rollbacks", "pages_restored",
                 "full_restores", "interval")

    def __init__(self, registry):
        self.captures = registry.counter("checkpoint.captures")
        self.keyframes = registry.counter("checkpoint.keyframes")
        self.pages_copied = registry.counter("checkpoint.pages_copied")
        self.delta_bytes = registry.counter("checkpoint.delta_bytes")
        self.dirty_pages = registry.histogram("checkpoint.dirty_pages")
        self.rollbacks = registry.counter("checkpoint.rollbacks")
        self.pages_restored = registry.counter("checkpoint.pages_restored")
        self.full_restores = registry.counter("checkpoint.full_restores")
        self.interval = registry.gauge("checkpoint.interval_instrs")


class CheckpointManager:
    """Periodic checkpointing and rollback for one process."""

    def __init__(self, process: Process,
                 interval: int = DEFAULT_INTERVAL,
                 max_keep: int = 64,
                 adaptive: bool = True,
                 overhead_target: float = 0.05,
                 max_interval: int = 20 * DEFAULT_INTERVAL,
                 events: Optional[EventLog] = None,
                 enabled: bool = True,
                 incremental: bool = True,
                 keyframe_every: int = DEFAULT_KEYFRAME_EVERY,
                 telemetry=None,
                 chaos=None):
        if keyframe_every < 1:
            raise ValueError("keyframe_every must be >= 1")
        self.process = process
        self.base_interval = interval
        self.interval = interval
        self.max_keep = max_keep
        self.adaptive = adaptive
        self.overhead_target = overhead_target
        self.max_interval = max_interval
        self.events = events if events is not None else EventLog()
        self.enabled = enabled
        #: incremental=False reproduces the seed's full-copy behaviour
        #: (every checkpoint a keyframe, every rollback a full
        #: rebuild); kept for A/B benchmarks and ablations.
        self.incremental = incremental
        self.keyframe_every = keyframe_every if incremental else 1
        self.checkpoints: Deque[Checkpoint] = deque(maxlen=max_keep)
        self.stats = CheckpointStats()
        self._next_index = 0
        self._since_keyframe = 0
        #: The checkpoint the heap bytes currently derive from (via the
        #: tracked dirty set); None until the first checkpoint or after
        #: an untracked external restore.
        self._position: Optional[Checkpoint] = None
        self._mem_version = -1
        #: payload -> payload intern table deduping identical page
        #: contents across checkpoints.
        self._page_cache: Dict[bytes, bytes] = {}
        self._tm = (_CheckpointInstruments(telemetry.metrics)
                    if telemetry is not None and telemetry.enabled
                    else None)
        #: Optional hook invoked after each boundary checkpoint taken
        #: by :meth:`run` -- the runtime's periodic work (e.g. shared
        #: patch-store refresh) rides the checkpoint cadence instead of
        #: adding a second timer to the hot loop.
        self.on_boundary = None
        #: Optional :class:`~repro.chaos.ChaosPlan`; consulted only at
        #: rollback time, never on the instruction path.
        self.chaos = chaos

    # ------------------------------------------------------------------

    def _heap_in_sync(self) -> bool:
        """True when the heap still derives from ``_position`` through
        writes the dirty-page set has tracked."""
        return (self._position is not None
                and self.process.mem.version == self._mem_version)

    def take_checkpoint(self) -> Checkpoint:
        """Snapshot the process now and charge checkpoint costs."""
        process = self.process
        mem = process.mem
        dirty = mem.dirty_pages
        cow_pages = len(dirty)
        costs = process.costs
        # The simulated COW cost is the dirty pages either way: a
        # keyframe consolidates pages that are already resident, it
        # does not re-fault clean ones.
        process.clock.charge(costs.checkpoint_base_ns
                             + cow_pages * costs.page_copy_ns)
        keyframe = (not self.incremental
                    or self._since_keyframe % self.keyframe_every == 0
                    or not self._heap_in_sync())
        if keyframe:
            pages = mem.copy_pages(range(mem.page_count))
            parent = None
        else:
            pages = mem.copy_pages(dirty)
            parent = self._position
        new_bytes = self._intern_pages(pages)
        delta_bytes = (new_bytes if not keyframe else
                       sum(len(pages[i]) for i in dirty if i in pages))
        ck = Checkpoint(self._next_index, process.clock.now_ns,
                        process.snapshot_meta(), pages, mem.mapped_bytes,
                        dirty, parent=parent, prev=self._position,
                        is_keyframe=keyframe, new_bytes=new_bytes)
        self._next_index += 1
        self._since_keyframe = 1 if keyframe else self._since_keyframe + 1
        mem.clear_dirty()
        self._position = ck
        self._mem_version = mem.version
        self.checkpoints.append(ck)
        stats = self.stats
        stats.checkpoints_taken += 1
        if keyframe:
            stats.keyframes_taken += 1
            self._prune_page_cache()
        stats.pages_copied_total += cow_pages
        stats.delta_bytes_total += delta_bytes
        stats.per_checkpoint_pages.append(cow_pages)
        stats.per_checkpoint_bytes.append(delta_bytes)
        stats.per_checkpoint_interval.append(self.interval)
        tm = self._tm
        if tm is not None:
            tm.captures.inc()
            if keyframe:
                tm.keyframes.inc()
            tm.pages_copied.inc(cow_pages)
            tm.delta_bytes.inc(delta_bytes)
            tm.dirty_pages.observe(cow_pages)
            tm.interval.set(self.interval)
        self.events.emit(process.clock.now_ns, "checkpoint",
                         index=ck.index, instr=ck.instr_count,
                         cow_pages=cow_pages, interval=self.interval,
                         keyframe=keyframe, space_bytes=ck.space_bytes)
        if self.adaptive:
            self._adapt(cow_pages)
        return ck

    def _intern_pages(self, pages: Dict[int, bytes]) -> int:
        """Dedupe page payloads through the manager-wide cache; returns
        the number of bytes this checkpoint newly retained."""
        cache = self._page_cache
        new_bytes = 0
        for idx, payload in pages.items():
            cached = cache.get(payload)
            if cached is None:
                cache[payload] = payload
                new_bytes += len(payload)
            else:
                pages[idx] = cached
        return new_bytes

    def _prune_page_cache(self) -> None:
        """Drop cache entries no live checkpoint references (runs at
        keyframe boundaries, so its cost is amortized)."""
        live: Dict[bytes, bytes] = {}
        seen = set()
        stack = list(self.checkpoints)
        while stack:
            ck = stack.pop()
            if id(ck) in seen:
                continue
            seen.add(id(ck))
            for payload in ck.pages.values():
                live[payload] = payload
            if ck.parent is not None:
                stack.append(ck.parent)
        self._page_cache = live

    def retained_bytes(self) -> int:
        """Real bytes held by all reachable checkpoint payloads, with
        shared (deduped) payloads counted once."""
        seen_payloads = set()
        seen_cks = set()
        total = 0
        stack = list(self.checkpoints)
        while stack:
            ck = stack.pop()
            if id(ck) in seen_cks:
                continue
            seen_cks.add(id(ck))
            for payload in ck.pages.values():
                if id(payload) not in seen_payloads:
                    seen_payloads.add(id(payload))
                    total += len(payload)
            if ck.parent is not None:
                stack.append(ck.parent)
        return total

    def _adapt(self, cow_pages: int) -> None:
        """Grow the interval when COW traffic makes overhead too high,
        shrink it back when traffic is light."""
        costs = self.process.costs
        copy_ns = (cow_pages * costs.page_copy_ns
                   + costs.checkpoint_base_ns)
        interval_ns = self.interval * costs.instr_ns
        overhead = copy_ns / interval_ns if interval_ns else 0.0
        if overhead > self.overhead_target:
            self.interval = min(int(self.interval * 1.5),
                                self.max_interval)
        elif (overhead < self.overhead_target / 3
              and self.interval > self.base_interval):
            self.interval = max(int(self.interval / 1.5),
                                self.base_interval)

    # ------------------------------------------------------------------

    def run(self, max_steps: Optional[int] = None) -> RunResult:
        """Run the process with periodic checkpoints until something
        other than an interval boundary stops it (halt, fault, input
        exhaustion, or the optional step budget)."""
        process = self.process
        if self.enabled and not self.checkpoints:
            self.take_checkpoint()
            if self.on_boundary is not None:
                self.on_boundary()
        remaining = max_steps
        while True:
            if not self.enabled:
                return process.run(max_steps=remaining)
            boundary = process.instr_count + self.interval
            step = self.interval
            if remaining is not None:
                step = min(step, remaining)
            result = process.run(stop_at=process.instr_count + step)
            if remaining is not None:
                remaining -= step
                if remaining <= 0 and result.reason is RunReason.STOP:
                    return result
            if result.reason is not RunReason.STOP:
                return result
            if process.instr_count >= boundary:
                self.take_checkpoint()
                if self.on_boundary is not None:
                    self.on_boundary()
                fault = self._sweep_sampled_guards()
                if fault is not None:
                    return RunResult(RunReason.FAULT, fault)

    def _sweep_sampled_guards(self):
        """Boundary sweep of sampled guards (DESIGN.md §15): scan the
        guarded objects' redzones and free canaries right after each
        checkpoint.  A hit freezes the machine on the guard fault --
        exactly the state an in-run fault leaves -- so the failure
        flows through the ordinary monitor/diagnosis path.  A no-op
        (one attribute check) unless a sampler is attached and active.
        """
        extension = self.process.extension
        if extension.sampler is None:
            return None
        try:
            extension.check_sampled_guards()
        except SampledGuardFault as fault:
            machine = self.process.machine
            if fault.instr_id is None:
                frame = machine.frames[-1]
                fault.instr_id = (frame.func.name, frame.pc)
            machine.fault = fault
            self.events.emit(self.process.clock.now_ns,
                             "sampling.guard_hit",
                             detail=fault.describe())
            return fault
        return None

    # ------------------------------------------------------------------

    def latest(self) -> Checkpoint:
        if not self.checkpoints:
            raise CheckpointError("no checkpoints taken yet")
        return self.checkpoints[-1]

    def recent(self, count: int) -> List[Checkpoint]:
        """Up to ``count`` checkpoints, most recent first."""
        items = list(self.checkpoints)[-count:]
        return items[::-1]

    def rollback_to(self, checkpoint: Checkpoint) -> None:
        """Restore the process to ``checkpoint`` and charge restore
        costs (rollbacks never rewind the clock).

        When the heap still derives from a known checkpoint, only the
        pages that can differ from the target (per-interval dirty sets
        between the two, plus writes since the last boundary) are
        rewritten; otherwise the full state is materialized from the
        delta chain.
        """
        process = self.process
        mem = process.mem
        if self.chaos is not None:
            self._inject_rollback_faults(checkpoint)
        pages_restored = self._rollback_in_place(checkpoint)
        if pages_restored is None:
            process.restore(checkpoint.materialize())
            pages_restored = checkpoint.mapped_bytes // PAGE_SIZE
            self.stats.full_restores += 1
            if self._tm is not None:
                self._tm.full_restores.inc()
        costs = process.costs
        process.clock.charge(costs.restore_base_ns
                             + pages_restored * costs.page_restore_ns)
        mem.clear_dirty()
        self._position = checkpoint
        self._mem_version = mem.version
        self.stats.rollbacks += 1
        self.stats.pages_restored_total += pages_restored
        if self._tm is not None:
            self._tm.rollbacks.inc()
            self._tm.pages_restored.inc(pages_restored)
        self.events.emit(process.clock.now_ns, "rollback",
                         to_index=checkpoint.index,
                         instr=checkpoint.instr_count,
                         pages_restored=pages_restored)

    def _inject_rollback_faults(self, checkpoint: Checkpoint) -> None:
        """Armed chaos faults at the restore boundary (DESIGN.md §10):
        a missing snapshot aborts the rollback; a corrupt one restores
        scribbled pages and lets the re-execution run on garbage."""
        if self.chaos.take("checkpoint_missing"):
            self.events.emit(self.process.clock.now_ns,
                             "chaos.checkpoint_missing",
                             to_index=checkpoint.index)
            raise CheckpointError(
                f"checkpoint #{checkpoint.index} unavailable "
                f"(injected fault)")
        if self.chaos.take("checkpoint_corrupt"):
            page = self.chaos.scribble_checkpoint(checkpoint)
            # Force the full-restore path so the scribbled payload is
            # guaranteed to reach the heap (the in-place diff might not
            # cover it).
            self._position = None
            self.events.emit(self.process.clock.now_ns,
                             "chaos.checkpoint_corrupt",
                             to_index=checkpoint.index, page=page)

    def _rollback_in_place(self, checkpoint: Checkpoint) -> Optional[int]:
        """Try the O(pages changed) restore path; returns the number of
        pages rewritten, or None when a full restore is required."""
        if not self.incremental or not self._heap_in_sync():
            return None
        diff = pages_between(self._position, checkpoint)
        if diff is None:
            return None
        mem = self.process.mem
        limit = checkpoint.mapped_bytes // PAGE_SIZE
        payloads = {idx: checkpoint.resolve_page(idx)
                    for idx in (diff | mem.dirty_pages) if idx < limit}
        mem.load_pages(checkpoint.mapped_bytes, payloads,
                       dirty=checkpoint.dirty)
        # non-heap state is metadata-sized; restore it wholesale.
        self.process.restore(checkpoint.meta)
        return len(payloads)

    def drop_after(self, checkpoint: Checkpoint) -> None:
        """Discard checkpoints newer than ``checkpoint`` (used after a
        recovery commits to an older state)."""
        while self.checkpoints and \
                self.checkpoints[-1].index > checkpoint.index:
            self.checkpoints.pop()
