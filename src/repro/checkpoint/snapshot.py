"""Checkpoint objects: incremental (delta/keyframe) heap snapshots.

The paper's Flashback substrate copies only the pages a process dirtied
in each interval.  A :class:`Checkpoint` mirrors that: it stores the
*delta* -- copies of the pages dirtied since the previous checkpoint,
keyed by page index -- plus the full machine/allocator/extension state
(which is metadata-sized, not heap-sized).  Every ``keyframe_every``-th
checkpoint is a **keyframe** holding every mapped page, which bounds
the length of the chain a restore has to walk.

Two links tie checkpoints together:

* ``parent`` (strong) -- the *content* chain used to resolve page
  bytes: delta -> delta -> ... -> keyframe.  A keyframe has no parent.
* ``prev`` (weak) -- the *temporal* predecessor, crossing keyframe
  boundaries.  :func:`pages_between` walks these to compute which
  pages can possibly differ between two checkpoints, which is what
  makes in-place rollback O(pages changed) instead of O(heap).  The
  reference is weak so dropping old checkpoints actually frees their
  pages; if the link has died the manager falls back to a full restore.

``space_bytes`` is the number of *new* payload bytes this checkpoint
retained after the manager's page-cache deduplication -- real memory
cost, which is what Table 7 now reports (the seed estimated it as
``cow_pages * page_size``).
"""

from __future__ import annotations

import weakref
from typing import Dict, FrozenSet, Optional, Set

from repro.heap.base import PAGE_SIZE
from repro.process import ProcessSnapshot

_ZERO_PAGE = bytes(PAGE_SIZE)


class Checkpoint:
    """One in-memory checkpoint (delta or keyframe)."""

    __slots__ = ("index", "time_ns", "instr_count", "meta", "pages",
                 "mapped_bytes", "dirty", "parent", "_prev", "is_keyframe",
                 "cow_pages", "payload_bytes", "space_bytes", "__weakref__")

    def __init__(self, index: int, time_ns: int, meta: ProcessSnapshot,
                 pages: Dict[int, bytes], mapped_bytes: int,
                 dirty: FrozenSet[int],
                 parent: Optional["Checkpoint"] = None,
                 prev: Optional["Checkpoint"] = None,
                 is_keyframe: bool = False,
                 new_bytes: Optional[int] = None):
        self.index = index
        self.time_ns = time_ns
        self.instr_count = meta.instr_count
        #: Machine/allocator/extension snapshot with ``memory=None``.
        self.meta = meta
        #: Page payloads: the dirty pages for a delta, every mapped
        #: page for a keyframe.  Payloads may be shared across
        #: checkpoints via the manager's page cache.
        self.pages = pages
        self.mapped_bytes = mapped_bytes
        #: Pages dirtied since the temporal predecessor (== the delta
        #: key set for a delta checkpoint; a keyframe stores more
        #: pages than it dirtied).
        self.dirty = dirty
        self.parent = parent
        self._prev = weakref.ref(prev) if prev is not None else None
        self.is_keyframe = is_keyframe
        self.cow_pages = len(dirty)
        self.payload_bytes = sum(map(len, pages.values()))
        self.space_bytes = (new_bytes if new_bytes is not None
                            else self.payload_bytes)

    # ------------------------------------------------------------------
    # chain access
    # ------------------------------------------------------------------

    @property
    def prev(self) -> Optional["Checkpoint"]:
        """Temporal predecessor, or None if it was dropped."""
        return self._prev() if self._prev is not None else None

    @property
    def chain_length(self) -> int:
        """Content-chain links from here to the nearest keyframe."""
        length, node = 0, self
        while not node.is_keyframe and node.parent is not None:
            length += 1
            node = node.parent
        return length

    def resolve_page(self, idx: int) -> bytes:
        """The contents of page ``idx`` at this checkpoint: the newest
        delta in the content chain that captured it wins; pages grown
        after the keyframe and never written are zero."""
        node: Optional[Checkpoint] = self
        while node is not None:
            payload = node.pages.get(idx)
            if payload is not None:
                return payload
            if node.is_keyframe:
                break
            node = node.parent
        return _ZERO_PAGE

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------

    def materialize(self) -> ProcessSnapshot:
        """Reconstruct the full-state :class:`ProcessSnapshot` this
        checkpoint denotes by overlaying the delta chain onto its
        keyframe.  Costs O(heap) -- use the manager's in-place rollback
        for the common path; this exists for clones (validation) and
        cross-process restores."""
        buf = bytearray(self.mapped_bytes)
        needed: Set[int] = set(range(self.mapped_bytes // PAGE_SIZE))
        node: Optional[Checkpoint] = self
        while node is not None and needed:
            hit = needed.intersection(node.pages)
            for idx in hit:
                off = idx * PAGE_SIZE
                payload = node.pages[idx]
                buf[off:off + len(payload)] = payload
            needed -= hit
            if node.is_keyframe:
                break
            node = node.parent
        # pages never captured anywhere were grown after the keyframe
        # and never written -> already zero in ``buf``.
        meta = self.meta
        return ProcessSnapshot(
            machine=meta.machine,
            memory=(bytes(buf), self.dirty),
            allocator=meta.allocator,
            extension=meta.extension,
            randomized=meta.randomized)

    @property
    def state(self) -> ProcessSnapshot:
        """Full-state snapshot (materialized on demand)."""
        return self.materialize()

    def __repr__(self) -> str:
        kind = "keyframe" if self.is_keyframe else "delta"
        return (f"Checkpoint(#{self.index}, {kind}, "
                f"instr={self.instr_count}, "
                f"t={self.time_ns / 1e9:.3f}s, cow_pages={self.cow_pages})")


def pages_between(a: Checkpoint, b: Checkpoint) -> Optional[Set[int]]:
    """The set of pages that can differ between checkpoints ``a`` and
    ``b``, or None when their temporal chains share no live common
    ancestor (caller must fall back to a full restore).

    Walks the weak ``prev`` links to the nearest common ancestor and
    unions the per-interval dirty sets on both sides -- every page not
    in that union is bit-identical in both states, so an in-place
    rollback can leave it untouched.
    """
    ancestors = {}
    node: Optional[Checkpoint] = b
    while node is not None:
        ancestors[id(node)] = node
        node = node.prev
    pages: Set[int] = set()
    node = a
    while node is not None and id(node) not in ancestors:
        pages |= node.dirty
        node = node.prev
    if node is None:
        return None
    common = node
    node = b
    while node is not None and node is not common:
        pages |= node.dirty
        node = node.prev
    if node is None:  # pragma: no cover - common came from b's chain
        return None
    return pages
