"""Checkpoint objects."""

from __future__ import annotations

from repro.process import ProcessSnapshot


class Checkpoint:
    """One in-memory checkpoint.

    ``cow_pages`` is the number of pages dirtied since the *previous*
    checkpoint -- the pages a fork-based COW checkpoint would have had
    to copy for this one.  ``space_bytes`` is that in bytes, which is
    what Table 7 reports per checkpoint.
    """

    __slots__ = ("index", "time_ns", "instr_count", "state", "cow_pages",
                 "space_bytes")

    def __init__(self, index: int, time_ns: int, state: ProcessSnapshot,
                 cow_pages: int, page_size: int):
        self.index = index
        self.time_ns = time_ns
        self.instr_count = state.instr_count
        self.state = state
        self.cow_pages = cow_pages
        self.space_bytes = cow_pages * page_size

    def __repr__(self) -> str:
        return (f"Checkpoint(#{self.index}, instr={self.instr_count}, "
                f"t={self.time_ns / 1e9:.3f}s, cow_pages={self.cow_pages})")
