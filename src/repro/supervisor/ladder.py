"""The graceful-degradation ladder (paper §3.4/§5; DESIGN.md §10).

The paper's promise is not "every bug gets a patch" -- it is "the
service survives".  When targeted diagnosis cannot produce a patch (a
``NON_PATCHABLE`` verdict, a failed patched re-execution, or the
recovery machinery itself breaking), First-Aid falls back to weaker but
more robust strategies instead of dying.  The supervisor wraps every
failure-handling attempt in that ladder:

1. **PATCH** -- today's targeted path: diagnose, patch, re-execute,
   validate.  Byte-identical to the pre-supervisor runtime when it
   succeeds, which is the overwhelmingly common case.
2. **PREVENT_ALL** -- whole-program preventive mode: roll back to the
   *oldest* available checkpoint and re-execute the failure region with
   every preventive change active (pad all allocations, delay all
   frees, zero-fill, check parameters).  No diagnosis needed, so it
   survives a broken diagnostic engine; it trades memory overhead for
   robustness, exactly the paper's fallback mode.
3. **ROLLBACK** -- plain rollback re-execution from the latest
   checkpoint, hoping the failure was environment-dependent (the Rx
   wager, kept as a cheap next-to-last resort).
4. **RESTART** -- restart from scratch with the baseline's semantics
   (:mod:`repro.baselines.restart`): pay the downtime, lose the
   in-flight request, resync the stream at the next request boundary.
   The unconditional floor: it needs no checkpoint, no diagnosis, and
   no worker pool, so nothing the chaos harness injects can break it.

Each rung is attempted only while the per-failure simulated-time budget
(``FirstAidConfig.recovery_budget_ns``) and ``max_rungs`` allow; the
restart floor is budget-exempt (bounded instead by ``max_restarts``).
The chosen rung, per-rung outcomes, budget spend, and escalation
reasons are recorded on the :class:`~repro.core.runtime.RecoveryRecord`
(``rung``, ``rung_trail``, ``budget_spent_ns``), in telemetry
(``recovery.rung`` spans), and in the bug report's notes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from enum import IntEnum
from typing import List, Optional, Tuple

from repro.baselines.restart import RESTART_DOWNTIME_NS
from repro.core.changes import all_preventive_policy
from repro.core.diagnosis import Diagnosis, Verdict
from repro.core.report import BugReport
from repro.errors import CheckpointError
from repro.heap.extension import ExtensionMode
from repro.monitors.base import FailureEvent
from repro.parallel.tasks import PASS_REASONS
from repro.util.events import EventLog


class Rung(IntEnum):
    """Ladder rungs, in escalation order."""

    PATCH = 1          # targeted diagnosis + runtime patch
    PREVENT_ALL = 2    # whole-program preventive mode, oldest checkpoint
    ROLLBACK = 3       # plain rollback re-execution
    RESTART = 4        # restart from scratch (the floor)


@dataclass
class RungAttempt:
    """One rung's outcome inside a single failure's handling."""

    rung: int
    outcome: str                # "recovered" | "failed" | "error" | "skipped"
    reason: str = ""
    #: simulated time this rung consumed (0 for skipped rungs)
    spent_ns: int = 0
    #: budget left *after* this rung (None = unbounded budget)
    budget_remaining_ns: Optional[int] = None

    def describe(self) -> str:
        name = Rung(self.rung).name if self.rung in tuple(Rung) \
            else str(self.rung)
        text = f"rung {self.rung} ({name}): {self.outcome}"
        if self.reason:
            text += f" -- {self.reason}"
        return text


class RecoverySupervisor:
    """Runs the degradation ladder for one runtime's failures.

    One instance lives per :class:`~repro.core.runtime.FirstAidRuntime`
    so restart counting is cumulative across the session.  ``handle``
    never lets an exception escape a rung: whatever a rung raises
    (chaos-injected or genuine) is recorded as that rung's failure and
    the ladder escalates.
    """

    def __init__(self, runtime) -> None:
        self.runtime = runtime
        self.config = runtime.config
        #: cumulative restarts this session (rung 4 spends one each)
        self.restarts = 0
        self._forced_exhaust = False

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def handle(self, failure: FailureEvent):
        rt = self.runtime
        clock = rt.process.clock
        t0 = clock.now_ns
        self._forced_exhaust = False
        window_end = (failure.instr_count
                      + self.config.window_intervals
                      * rt.manager.interval)
        trail: List[RungAttempt] = []

        # Rung 1: the targeted path, untouched.  On success nothing is
        # added to the event log or span tree -- byte-identical to the
        # pre-supervisor runtime.
        record, attempt = self._rung_patch(failure, t0)
        trail.append(attempt)
        if record.succeeded:
            return self._finalize(record, trail, Rung.PATCH, t0)
        self._note_escalation(Rung.PATCH, attempt)

        for rung, runner in ((Rung.PREVENT_ALL, self._rung_prevent_all),
                             (Rung.ROLLBACK, self._rung_rollback)):
            skipped = self._gate(rung, t0)
            if skipped is not None:
                trail.append(skipped)
                continue
            attempt = self._run_rung(rung, runner, failure, window_end,
                                     t0)
            trail.append(attempt)
            if attempt.outcome == "recovered":
                return self._finalize(record, trail, rung, t0)
            self._note_escalation(rung, attempt)

        # Rung 4: the restart floor.  Budget-exempt; gated only by
        # max_rungs and max_restarts.
        if int(Rung.RESTART) > self.config.max_rungs:
            trail.append(RungAttempt(
                int(Rung.RESTART), "skipped",
                reason=f"max_rungs={self.config.max_rungs}",
                budget_remaining_ns=self._budget_left(t0)))
        else:
            attempt = self._run_rung(Rung.RESTART, self._rung_restart,
                                     failure, window_end, t0)
            trail.append(attempt)
            if attempt.outcome == "recovered":
                return self._finalize(record, trail, Rung.RESTART, t0,
                                      restarted=True)

        # Every allowed rung failed or was skipped: give up.  The
        # record stays succeeded=False and the runtime emits the
        # terminal recovery.gave_up event.
        record.rung = trail[-1].rung
        record.rung_trail = trail
        record.budget_spent_ns = rt.process.clock.now_ns - t0
        record.recovery_time_ns = record.budget_spent_ns
        record.notes.extend(a.describe() for a in trail[1:])
        return record

    # ------------------------------------------------------------------
    # rungs
    # ------------------------------------------------------------------

    def _rung_patch(self, failure: FailureEvent,
                    t0: int) -> Tuple[object, RungAttempt]:
        rt = self.runtime
        try:
            record = rt._handle_failure_traced(failure)
        except Exception as exc:  # noqa: BLE001 - the ladder's job
            from repro.core.runtime import RecoveryRecord
            record = RecoveryRecord(failure=failure)
            record.recovery_time_ns = rt.process.clock.now_ns - t0
            record.notes.append(f"targeted recovery raised: {exc!r}")
            return record, RungAttempt(
                int(Rung.PATCH), "error", reason=repr(exc),
                spent_ns=record.recovery_time_ns,
                budget_remaining_ns=self._budget_left(t0))
        if record.succeeded:
            outcome, reason = "recovered", ""
        else:
            outcome = "failed"
            reason = record.notes[-1] if record.notes else "diagnosis failed"
        return record, RungAttempt(
            int(Rung.PATCH), outcome, reason=reason,
            spent_ns=record.recovery_time_ns,
            budget_remaining_ns=self._budget_left(t0))

    def _rung_prevent_all(self, failure: FailureEvent,
                          window_end: int) -> Tuple[bool, str]:
        """Whole-program preventive mode from the oldest checkpoint."""
        rt = self.runtime
        if not rt.manager.checkpoints:
            return False, "no checkpoints available"
        oldest = rt.manager.checkpoints[0]
        with rt.telemetry.span("recovery.rung",
                               rung=int(Rung.PREVENT_ALL),
                               to_index=oldest.index) as span:
            with rt.telemetry.span("rollback", to_index=oldest.index):
                rt.manager.rollback_to(oldest)
            rt.manager.drop_after(oldest)
            rt.process.set_mode(ExtensionMode.NORMAL,
                                all_preventive_policy())
            rt.process.machine.trace_accesses = False
            rt.process.extension.trace_mm = False
            rt.process.reseed_entropy(self.config.entropy_seed + 8000
                                      + len(rt.recoveries))
            with rt.telemetry.span("reexec"):
                result = rt.process.run(stop_at=window_end)
            passed = result.reason in PASS_REASONS
            span.set(passed=passed)
        # Preventive mode covers the re-executed failure region only;
        # normal mode (with the targeted patch policy) resumes after.
        rt._back_to_normal()
        if passed:
            return True, ""
        return False, ("preventive re-execution from checkpoint "
                       f"#{oldest.index} failed: {result.reason.value}")

    def _rung_rollback(self, failure: FailureEvent,
                       window_end: int) -> Tuple[bool, str]:
        """Plain rollback re-execution -- the Rx wager."""
        rt = self.runtime
        try:
            latest = rt.manager.latest()
        except CheckpointError as exc:
            return False, str(exc)
        attempts = max(1, self.config.max_recovery_attempts)
        for attempt in range(attempts):
            with rt.telemetry.span("recovery.rung",
                                   rung=int(Rung.ROLLBACK),
                                   attempt=attempt) as span:
                with rt.telemetry.span("rollback",
                                       to_index=latest.index):
                    rt.manager.rollback_to(latest)
                rt.manager.drop_after(latest)
                rt._back_to_normal()
                rt.process.reseed_entropy(self.config.entropy_seed
                                          + 9000
                                          + 17 * len(rt.recoveries)
                                          + attempt)
                with rt.telemetry.span("reexec"):
                    result = rt.process.run(stop_at=window_end)
                passed = result.reason in PASS_REASONS
                span.set(passed=passed)
            if passed:
                return True, ""
        return False, (f"plain re-execution failed {attempts}x "
                       f"from checkpoint #{latest.index}")

    def _rung_restart(self, failure: FailureEvent,
                      window_end: int) -> Tuple[bool, str]:
        """Restart from scratch: the baseline's semantics on the
        runtime's shared clock/stream/output."""
        rt = self.runtime
        if self.restarts >= self.config.max_restarts:
            return False, (f"max_restarts={self.config.max_restarts} "
                           f"exhausted")
        self.restarts += 1
        with rt.telemetry.span("recovery.rung",
                               rung=int(Rung.RESTART),
                               n=self.restarts):
            rt.process.clock.charge(RESTART_DOWNTIME_NS)
            cursor = rt.process.input.cursor
            boundaries = self.config.restart_boundaries
            if boundaries:
                target = next((b for b in boundaries if b > cursor),
                              cursor)
            else:
                # No boundary map: the consumed tokens *are* the lost
                # in-flight request; resume exactly where the stream
                # stands.
                target = cursor
            resumed_at = rt.process.input.skip_to(target)
            rt._respawn()
        if rt.store is not None and rt.config.rollout:
            # The fresh process must reflect the fleet's *current*
            # stage view before serving again: a patch rolled back
            # while this process was crashing must not ride into the
            # restart through the stale local pool (the sync drops
            # every key the store has condemned).
            rt._store_sync()
        rt.events.emit(rt.process.clock.now_ns, "recovery.restart",
                       n=self.restarts, resumed_at=resumed_at,
                       downtime_ns=RESTART_DOWNTIME_NS)
        return True, ""

    # ------------------------------------------------------------------
    # budget / gating
    # ------------------------------------------------------------------

    def _budget_left(self, t0: int) -> Optional[int]:
        if self._forced_exhaust:
            return 0
        budget = self.config.recovery_budget_ns
        if budget is None:
            return None
        spent = self.runtime.process.clock.now_ns - t0
        return max(0, budget - spent)

    def _gate(self, rung: Rung, t0: int) -> Optional[RungAttempt]:
        """None when the rung may run; a skipped attempt otherwise."""
        if int(rung) > self.config.max_rungs:
            return RungAttempt(
                int(rung), "skipped",
                reason=f"max_rungs={self.config.max_rungs}",
                budget_remaining_ns=self._budget_left(t0))
        chaos = self.config.chaos
        if chaos is not None and chaos.take("budget_exhaust"):
            self._forced_exhaust = True
            self.runtime.events.emit(
                self.runtime.process.clock.now_ns,
                "chaos.budget_exhaust", before_rung=int(rung))
        left = self._budget_left(t0)
        if left == 0:
            return RungAttempt(int(rung), "skipped",
                               reason="recovery budget exhausted",
                               budget_remaining_ns=0)
        return None

    def _run_rung(self, rung: Rung, runner, failure: FailureEvent,
                  window_end: int, t0: int) -> RungAttempt:
        rt = self.runtime
        start = rt.process.clock.now_ns
        try:
            passed, reason = runner(failure, window_end)
            outcome = "recovered" if passed else "failed"
        except Exception as exc:  # noqa: BLE001 - escalate, never die
            outcome, reason = "error", repr(exc)
        return RungAttempt(int(rung), outcome, reason=reason,
                           spent_ns=rt.process.clock.now_ns - start,
                           budget_remaining_ns=self._budget_left(t0))

    def _note_escalation(self, rung: Rung,
                         attempt: RungAttempt) -> None:
        rt = self.runtime
        rt.events.emit(rt.process.clock.now_ns, "recovery.escalated",
                       from_rung=int(rung), outcome=attempt.outcome,
                       reason=attempt.reason)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------

    def _finalize(self, record, trail: List[RungAttempt], rung: Rung,
                  t0: int, restarted: bool = False):
        rt = self.runtime
        record.rung = int(rung)
        record.rung_trail = trail
        record.budget_spent_ns = rt.process.clock.now_ns - t0
        if rung is Rung.PATCH:
            # Success on the targeted path: the traced handler already
            # did every bit of bookkeeping; add nothing.
            return record
        record.succeeded = True
        record.restarted = restarted
        record.recovery_time_ns = record.budget_spent_ns
        record.notes.extend(a.describe() for a in trail)
        rt.events.emit(rt.process.clock.now_ns, "recovery.done",
                       time_s=record.recovery_time_ns / 1e9,
                       patches=0, rung=int(rung))
        record.report = self._escalated_report(record, trail)
        return record

    def _escalated_report(self, record,
                          trail: List[RungAttempt]) -> BugReport:
        """Escalated recoveries still owe the operator a report: which
        rung saved the service, and why the targeted path did not."""
        rt = self.runtime
        diagnosis = record.diagnosis
        if diagnosis is None:
            diagnosis = Diagnosis(verdict=Verdict.NON_PATCHABLE,
                                  failure=record.failure,
                                  notes=["targeted diagnosis did not "
                                         "complete"])
        flight = None
        if rt.telemetry.enabled:
            flight = rt.telemetry.recorder.snapshot(
                rt.process.clock.now_ns)
        return BugReport(
            program_name=rt.process.program.name,
            diagnosis=diagnosis,
            recovery_time_ns=record.recovery_time_ns,
            validation=record.validation,
            diagnosis_log=EventLog(),
            flight=flight,
            notes=[a.describe() for a in trail])
