"""Graceful-degradation ladder (DESIGN.md §10).

The recovery supervisor wraps every failure-handling attempt in a
four-rung ladder -- targeted patch, whole-program preventive mode,
plain rollback re-execution, restart-from-scratch -- gated by a
per-failure simulated-time budget, so the session degrades instead of
dying when the targeted path cannot help.
"""

from repro.supervisor.ladder import RecoverySupervisor, Rung, RungAttempt

__all__ = ["RecoverySupervisor", "Rung", "RungAttempt"]
