"""The standard monitor set (assertions + exceptions), matching the
paper's base implementation."""

from __future__ import annotations

from typing import List, Optional

from repro.errors import (
    AssertionFailure,
    DivisionByZeroFault,
    HeapCorruptionFault,
    SampledGuardFault,
    SegmentationFault,
)
from repro.monitors.base import ErrorMonitor, FailureEvent
from repro.process import Process
from repro.vm.machine import RunReason, RunResult


class _FaultTypeMonitor(ErrorMonitor):
    """Catches a specific family of simulated faults."""

    fault_types: tuple = ()

    def check(self, result: RunResult,
              process: Process) -> Optional[FailureEvent]:
        if result.reason is not RunReason.FAULT:
            return None
        if not isinstance(result.fault, self.fault_types):
            return None
        return FailureEvent(
            fault=result.fault,
            instr_count=process.instr_count,
            time_ns=process.clock.now_ns,
            monitor=self.name,
        )


class ExceptionMonitor(_FaultTypeMonitor):
    """Kernel-exception analogue: segfaults, division errors."""

    name = "exception"
    fault_types = (SegmentationFault, DivisionByZeroFault)


class AssertionMonitor(_FaultTypeMonitor):
    """Catches failed program assertions."""

    name = "assertion"
    fault_types = (AssertionFailure,)


class HeapCorruptionMonitor(_FaultTypeMonitor):
    """Catches allocator aborts (glibc-style 'double free or
    corruption')."""

    name = "heap-corruption"
    fault_types = (HeapCorruptionFault,)


class SampledDetectionMonitor(_FaultTypeMonitor):
    """Catches sampled guard hits (GWP-ASan-style pre-crash
    detections) and forwards the attribution the guard captured, so
    the diagnostic engine can take its fast path."""

    name = "sampled-detection"
    fault_types = (SampledGuardFault,)

    def check(self, result: RunResult,
              process: Process) -> Optional[FailureEvent]:
        event = super().check(result, process)
        if event is None:
            return None
        return FailureEvent(
            fault=event.fault, instr_count=event.instr_count,
            time_ns=event.time_ns, monitor=event.monitor,
            detection=getattr(result.fault, "detection", None))


def default_monitors() -> List[ErrorMonitor]:
    return [ExceptionMonitor(), AssertionMonitor(),
            HeapCorruptionMonitor(), SampledDetectionMonitor()]
