"""Error monitors.

The paper's error monitors are the cheap detectors that notice a
failure and hand control to the diagnostic engine: assertion failures
and kernel-raised exceptions in the base system, with room for plugging
in heavier detectors (AccMon-style) at deployment time.

Here the VM already catches :class:`~repro.errors.SimulatedFault` and
reports it in the :class:`~repro.vm.machine.RunResult`; a monitor's job
is to turn run results into :class:`FailureEvent` objects (or decide a
result is benign).  The monitor set is pluggable to mirror the paper's
architecture -- :class:`repro.core.runtime.FirstAidRuntime` consults
every registered monitor after each run segment.
"""

from repro.monitors.base import ErrorMonitor, FailureEvent
from repro.monitors.standard import (
    AssertionMonitor,
    ExceptionMonitor,
    HeapCorruptionMonitor,
    default_monitors,
)

__all__ = [
    "ErrorMonitor",
    "FailureEvent",
    "AssertionMonitor",
    "ExceptionMonitor",
    "HeapCorruptionMonitor",
    "default_monitors",
]
