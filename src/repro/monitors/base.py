"""Monitor interface."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import SimulatedFault
from repro.process import Process
from repro.vm.machine import RunResult


@dataclass(frozen=True)
class FailureEvent:
    """A detected failure, as handed to the diagnostic engine."""

    fault: SimulatedFault
    instr_count: int          # position of the failure in the execution
    time_ns: int              # simulated time of detection
    monitor: str              # which monitor caught it
    #: Attribution captured at a sampled guard hit
    #: (:class:`repro.sampling.SampledDetection`); None for every other
    #: failure family.  When present, the diagnostic engine can seed
    #: the change-group directly instead of running phase 1/2.
    detection: Optional[object] = None

    @property
    def instr_id(self) -> Optional[Tuple[str, int]]:
        return self.fault.instr_id

    def describe(self) -> str:
        return (f"{self.monitor}: {self.fault.describe()} "
                f"@instr={self.instr_count}")


class ErrorMonitor:
    """Inspects a run result; returns a FailureEvent if it detects a
    failure this monitor is responsible for, else None."""

    name = "monitor"

    def check(self, result: RunResult,
              process: Process) -> Optional[FailureEvent]:
        raise NotImplementedError
