"""Instruction set of the simulated machine.

Instructions are plain tuples ``(opcode, a, b, c, d)`` (unused operands
are ``None``); opcodes are small ints so the interpreter can dispatch on
them cheaply.  Operand conventions:

* ``dst``/``src`` operands are *local slot* indices within the current
  frame;
* ``imm`` operands are immediate Python ints;
* ``g`` operands index the global slot table;
* jump targets are absolute pcs within the current function (the
  builder resolves labels);
* memory operands: the effective address of LOAD/STORE is
  ``locals[addr_slot] + offset_imm``.

All values are unsigned 64-bit conceptually; arithmetic wraps at 64
bits, mirroring C behaviour on the platforms the paper targets.
"""

from __future__ import annotations

from typing import Optional, Tuple

# -- opcode numbering (dense, keep in sync with OPCODE_NAMES) -----------
NOP = 0
CONST = 1      # dst, imm
MOV = 2        # dst, src
ADD = 3        # dst, a, b
SUB = 4
MUL = 5
DIV = 6        # faults on zero divisor
MOD = 7        # faults on zero divisor
AND = 8
OR = 9
XOR = 10
SHL = 11
SHR = 12
LT = 13        # dst = 1 if a < b else 0   (unsigned compare)
LE = 14
GT = 15
GE = 16
EQ = 17
NE = 18
NOT = 19       # dst, src : logical not
NEG = 20       # dst, src : two's-complement negate
JMP = 21       # target_pc
JZ = 22        # src, target_pc
JNZ = 23       # src, target_pc
CALL = 24      # dst_or_None, func_name, arg_slots_tuple
RET = 25       # src_or_None
MALLOC = 26    # dst, size_slot
FREE = 27      # addr_slot
LOAD = 28      # dst, addr_slot, offset_imm, size_imm
STORE = 29     # addr_slot, offset_imm, size_imm, val_slot
MEMSET = 30    # addr_slot, val_slot, len_slot
MEMCPY = 31    # dst_slot, src_slot, len_slot
IN = 32        # dst : next input token (halts run when exhausted)
OUT = 33       # src : append to output log
ASSERT = 34    # src, msg_imm : AssertionFailure when src == 0
HALT = 35
GLOAD = 36     # dst, g
GSTORE = 37    # g, src
RAND = 38      # dst : non-checkpointed entropy (nondeterminism source)
ADDI = 39      # dst, src, imm  (fused add-immediate; hot in loops)

OPCODE_NAMES = [
    "NOP", "CONST", "MOV", "ADD", "SUB", "MUL", "DIV", "MOD", "AND",
    "OR", "XOR", "SHL", "SHR", "LT", "LE", "GT", "GE", "EQ", "NE",
    "NOT", "NEG", "JMP", "JZ", "JNZ", "CALL", "RET", "MALLOC", "FREE",
    "LOAD", "STORE", "MEMSET", "MEMCPY", "IN", "OUT", "ASSERT", "HALT",
    "GLOAD", "GSTORE", "RAND", "ADDI",
]

#: Binary arithmetic/comparison opcodes (used by builder and compiler).
BINOPS = {
    "+": ADD, "-": SUB, "*": MUL, "/": DIV, "%": MOD,
    "&": AND, "|": OR, "^": XOR, "<<": SHL, ">>": SHR,
    "<": LT, "<=": LE, ">": GT, ">=": GE, "==": EQ, "!=": NE,
}

VALID_MEM_SIZES = (1, 2, 4, 8)

Instr = Tuple[int, Optional[object], Optional[object],
              Optional[object], Optional[object]]


def make(op: int, a=None, b=None, c=None, d=None) -> Instr:
    return (op, a, b, c, d)


def render_instr(instr: Instr) -> str:
    op = instr[0]
    args = ", ".join(repr(x) for x in instr[1:] if x is not None)
    return f"{OPCODE_NAMES[op]} {args}" if args else OPCODE_NAMES[op]
