"""Assembler-level builders for VM programs.

:class:`FunctionBuilder` emits instructions with symbolic labels and
named locals; :class:`ProgramBuilder` collects functions and globals.
The MiniC code generator targets these builders, and tests use them to
construct precise scenarios (e.g. a program whose one STORE overflows a
specific object).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.errors import ProgramError
from repro.vm import isa
from repro.vm.program import Function, Program

SlotRef = Union[int, str]


class FunctionBuilder:
    """Builds one function; locals may be referred to by name."""

    def __init__(self, name: str, params: Sequence[str] = ()):
        self.name = name
        self._locals: Dict[str, int] = {}
        self._code: List[list] = []
        self._labels: Dict[str, int] = {}
        self._fixups: List[tuple] = []  # (pc, operand_index, label)
        for p in params:
            self.local(p)
        self.n_params = len(params)

    # -- slots ----------------------------------------------------------

    def local(self, name: str) -> int:
        """Declare (or look up) a named local; returns its slot index."""
        if name not in self._locals:
            self._locals[name] = len(self._locals)
        return self._locals[name]

    def slot(self, ref: SlotRef) -> int:
        if isinstance(ref, int):
            return ref
        return self.local(ref)

    def temp(self) -> int:
        """A fresh anonymous slot."""
        return self.local(f"$t{len(self._locals)}")

    # -- labels -----------------------------------------------------------

    def label(self, name: str) -> None:
        if name in self._labels:
            raise ProgramError(f"{self.name}: duplicate label {name}")
        self._labels[name] = len(self._code)

    def _target(self, pc: int, operand_index: int, label: str) -> int:
        """Record a fixup; returns a placeholder."""
        self._fixups.append((pc, operand_index, label))
        return -1

    # -- emission ---------------------------------------------------------

    def _emit(self, op: int, a=None, b=None, c=None, d=None) -> int:
        pc = len(self._code)
        self._code.append([op, a, b, c, d])
        return pc

    def const(self, dst: SlotRef, imm: int) -> None:
        self._emit(isa.CONST, self.slot(dst), imm)

    def mov(self, dst: SlotRef, src: SlotRef) -> None:
        self._emit(isa.MOV, self.slot(dst), self.slot(src))

    def binop(self, op: str, dst: SlotRef, a: SlotRef, b: SlotRef) -> None:
        if op not in isa.BINOPS:
            raise ProgramError(f"unknown binop {op!r}")
        self._emit(isa.BINOPS[op], self.slot(dst), self.slot(a),
                   self.slot(b))

    def addi(self, dst: SlotRef, src: SlotRef, imm: int) -> None:
        self._emit(isa.ADDI, self.slot(dst), self.slot(src), imm)

    def logical_not(self, dst: SlotRef, src: SlotRef) -> None:
        self._emit(isa.NOT, self.slot(dst), self.slot(src))

    def neg(self, dst: SlotRef, src: SlotRef) -> None:
        self._emit(isa.NEG, self.slot(dst), self.slot(src))

    def jmp(self, label: str) -> None:
        pc = self._emit(isa.JMP, None)
        self._code[pc][1] = self._target(pc, 1, label)

    def jz(self, src: SlotRef, label: str) -> None:
        pc = self._emit(isa.JZ, self.slot(src), None)
        self._code[pc][2] = self._target(pc, 2, label)

    def jnz(self, src: SlotRef, label: str) -> None:
        pc = self._emit(isa.JNZ, self.slot(src), None)
        self._code[pc][2] = self._target(pc, 2, label)

    def call(self, dst: Optional[SlotRef], func: str,
             args: Sequence[SlotRef] = ()) -> None:
        self._emit(isa.CALL,
                   None if dst is None else self.slot(dst),
                   func, tuple(self.slot(a) for a in args))

    def ret(self, src: Optional[SlotRef] = None) -> None:
        self._emit(isa.RET, None if src is None else self.slot(src))

    def malloc(self, dst: SlotRef, size: SlotRef) -> None:
        self._emit(isa.MALLOC, self.slot(dst), self.slot(size))

    def free(self, addr: SlotRef) -> None:
        self._emit(isa.FREE, self.slot(addr))

    def load(self, dst: SlotRef, addr: SlotRef, offset: int = 0,
             size: int = 8) -> None:
        self._emit(isa.LOAD, self.slot(dst), self.slot(addr), offset, size)

    def store(self, addr: SlotRef, val: SlotRef, offset: int = 0,
              size: int = 8) -> None:
        self._emit(isa.STORE, self.slot(addr), offset, size, self.slot(val))

    def memset(self, addr: SlotRef, val: SlotRef, length: SlotRef) -> None:
        self._emit(isa.MEMSET, self.slot(addr), self.slot(val),
                   self.slot(length))

    def memcpy(self, dst: SlotRef, src: SlotRef, length: SlotRef) -> None:
        self._emit(isa.MEMCPY, self.slot(dst), self.slot(src),
                   self.slot(length))

    def input(self, dst: SlotRef) -> None:
        self._emit(isa.IN, self.slot(dst))

    def output(self, src: SlotRef) -> None:
        self._emit(isa.OUT, self.slot(src))

    def assert_(self, src: SlotRef, msg: str = "") -> None:
        self._emit(isa.ASSERT, self.slot(src), msg)

    def halt(self) -> None:
        self._emit(isa.HALT)

    def gload(self, dst: SlotRef, g: int) -> None:
        self._emit(isa.GLOAD, self.slot(dst), g)

    def gstore(self, g: int, src: SlotRef) -> None:
        self._emit(isa.GSTORE, g, self.slot(src))

    def rand(self, dst: SlotRef) -> None:
        self._emit(isa.RAND, self.slot(dst))

    # -- finish -----------------------------------------------------------

    def build(self) -> Function:
        code = [list(instr) for instr in self._code]
        label_at_end = any(pos == len(code)
                           for pos in self._labels.values())
        # Implicit return: for fall-off-the-end functions, and as the
        # landing pad for labels that point one past the last
        # instruction (e.g. the exit label of a trailing loop).
        if (not code or label_at_end
                or code[-1][0] not in (isa.RET, isa.HALT, isa.JMP)):
            code.append([isa.RET, None, None, None, None])
        for pc, idx, label in self._fixups:
            if label not in self._labels:
                raise ProgramError(
                    f"{self.name}: undefined label {label!r}")
            code[pc][idx] = self._labels[label]
        return Function(self.name, self.n_params, len(self._locals),
                        [tuple(i) for i in code])


class ProgramBuilder:
    """Collects functions and a global-slot table into a Program."""

    def __init__(self, name: str = "program"):
        self.name = name
        self._functions: List[Function] = []
        self._globals: Dict[str, int] = {}

    def global_slot(self, name: str) -> int:
        if name not in self._globals:
            self._globals[name] = len(self._globals)
        return self._globals[name]

    def function(self, name: str, params: Sequence[str] = ()) \
            -> FunctionBuilder:
        return FunctionBuilder(name, params)

    def add(self, fb: FunctionBuilder) -> None:
        self._functions.append(fb.build())

    def add_function(self, fn: Function) -> None:
        self._functions.append(fn)

    def build(self) -> Program:
        return Program(self._functions, n_globals=max(len(self._globals), 1),
                       name=self.name)
