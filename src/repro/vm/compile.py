"""Template JIT: MiniC bytecode -> specialized Python closures.

The reference interpreter (:meth:`Machine._run_reference`) pays a
40-way ``elif`` dispatch plus operand-tuple indexing on every
instruction.  Recovery multiplies that cost by thousands: each
diagnosis probe, validation run, and chaos re-execution re-runs the
*same* program, so interpretation dominates every phase's wall clock.

This module removes the dispatch entirely.  Each function's bytecode is
split into extended basic blocks, and each block entry point is
``exec``-compiled -- on demand, the first time execution reaches it --
into one Python closure with every operand baked in as a constant::

    LOAD t, base, 8, 8          _o1 = loc[2] + 8 - mbase
    ADDI t, t, 1          ==>   _v1 = _fb(mbuf[_o1:_o1+8], "little")
    STORE base, 8, 8, t         loc[4] = _v1
                                ...

Equivalence is the hard constraint, not the speed: the compiled tier
must preserve every observable of the reference interpreter --
byte-identical :class:`~repro.vm.state.MachineSnapshot` contents,
identical sim-time charging (batched ``pending_ns`` with flushes at
MALLOC/FREE/OUT and run exits, inline MEMSET/MEMCPY fill costs), exact
``instr_count`` so ``stop_at`` checkpoint boundaries land on the same
instruction, identical fault ``instr_id`` and call-site capture, and
identical ``trace_accesses`` behaviour.  The generated code therefore
performs every architectural write (superinstructions forward *values*
through Python temps; they never elide a ``frame.locals`` store), and a
``stop_at`` that lands strictly inside a block falls back to the
reference interpreter for the remainder, which steps and stops with
per-instruction precision.

Superinstruction fusion, applied during emission:

* **constant propagation** -- a slot written by CONST (or folded
  arithmetic) is tracked; later reads in the same block bake the
  literal into the using expression, so CONST+ADD/ADDI chains collapse
  into pre-folded Python constants;
* **value forwarding** -- a slot whose value is re-read within the next
  few instructions is written through a Python temp, so LOAD -> op ->
  STORE chains never re-index ``frame.locals``;
* **compare+branch** -- a comparison immediately consumed by JZ/JNZ
  branches on the raw Python bool (the 0/1 architectural write still
  happens);
* **jump threading** -- an unconditional JMP is followed at compile
  time, so a block extends across it (the JMP still costs one
  instruction tick, it just emits no code);
* **loop closing** -- a block whose terminator branches back to its own
  entry compiles into a Python ``while`` loop, so hot loop iterations
  never return to the dispatch loop at all (the per-iteration budget
  check keeps ``stop_at`` exact);
* **inline memory access** -- LOAD/STORE emit the simulated heap's
  bounds check, byte conversion, and dirty-page marking inline,
  delegating to :class:`~repro.heap.base.Memory` only on the faulting
  path (which re-raises the byte-identical ``SegmentationFault``).

Compiled programs are cached process-wide keyed by *code identity*
(:meth:`Program.code_key`), so the thousands of re-executions a single
recovery performs -- including tasks decoded in ``ForkExecutor`` worker
processes, which inherit the parent's cache across the fork -- compile
each block exactly once.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    AssertionFailure,
    DivisionByZeroFault,
    ProgramError,
    SimulatedFault,
)
from repro.heap.base import PAGE_SIZE
from repro.heap.extension import ExtensionMode
from repro.vm import isa
from repro.vm.state import Frame

#: Machine.run tier names (FirstAidConfig.vm_tier takes these values).
TIER_REFERENCE = "reference"
TIER_COMPILED = "compiled"
TIERS = (TIER_REFERENCE, TIER_COMPILED)

#: Dispatch codes returned by block closures to the compiled run loop.
CONTINUE = 0      # block done, frame.pc points at the successor
HALTED = 1        # HALT or final RET: machine.halted set
FAULTED = 2       # SimulatedFault: machine.fault set, state frozen
EXHAUSTED = 3     # IN found no token: rewound, counters settled
STEP = 4          # budget smaller than block: reference steps the tail

#: Emission cap per block; a pathological straight line splits with an
#: explicit goto so compilation stays incremental.
MAX_BLOCK = 2048

_MASK = "0xFFFFFFFFFFFFFFFF"

#: Ops that end a block's straight-line emission (JMP is *followed*,
#: not listed: jump threading).
_BRANCHING = (isa.JZ, isa.JNZ, isa.CALL, isa.RET, isa.HALT)

_CMP_EXPR = {
    isa.LT: "<", isa.LE: "<=", isa.GT: ">", isa.GE: ">=",
    isa.EQ: "==", isa.NE: "!=",
}

_ARITH = {
    isa.ADD: "({a} + {b}) & " + _MASK,
    isa.SUB: "({a} - {b}) & " + _MASK,
    isa.MUL: "({a} * {b}) & " + _MASK,
    isa.AND: "{a} & {b}",
    isa.OR: "{a} | {b}",
    isa.XOR: "{a} ^ {b}",
    isa.SHL: "({a} << ({b} & 63)) & " + _MASK,
    isa.SHR: "{a} >> ({b} & 63)",
}

_FOLD = {
    isa.ADD: lambda a, b: (a + b) & 0xFFFFFFFFFFFFFFFF,
    isa.SUB: lambda a, b: (a - b) & 0xFFFFFFFFFFFFFFFF,
    isa.MUL: lambda a, b: (a * b) & 0xFFFFFFFFFFFFFFFF,
    isa.AND: lambda a, b: a & b,
    isa.OR: lambda a, b: a | b,
    isa.XOR: lambda a, b: a ^ b,
    isa.SHL: lambda a, b: (a << (b & 63)) & 0xFFFFFFFFFFFFFFFF,
    isa.SHR: lambda a, b: a >> (b & 63),
}

#: Slots read by each opcode (operand positions into the instr tuple).
_READS = {
    isa.MOV: (2,), isa.ADD: (2, 3), isa.SUB: (2, 3), isa.MUL: (2, 3),
    isa.DIV: (2, 3), isa.MOD: (2, 3), isa.AND: (2, 3), isa.OR: (2, 3),
    isa.XOR: (2, 3), isa.SHL: (2, 3), isa.SHR: (2, 3), isa.LT: (2, 3),
    isa.LE: (2, 3), isa.GT: (2, 3), isa.GE: (2, 3), isa.EQ: (2, 3),
    isa.NE: (2, 3), isa.NOT: (2,), isa.NEG: (2,), isa.ADDI: (2,),
    isa.JZ: (1,), isa.JNZ: (1,), isa.MALLOC: (2,), isa.FREE: (1,),
    isa.LOAD: (2,), isa.STORE: (1, 4), isa.MEMSET: (1, 2, 3),
    isa.MEMCPY: (1, 2, 3), isa.OUT: (1,), isa.ASSERT: (1,),
    isa.GSTORE: (2,),
}

#: Opcodes that write instr[1] as a local slot.
_WRITES_DST = frozenset((
    isa.CONST, isa.MOV, isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.MOD,
    isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR, isa.LT, isa.LE, isa.GT,
    isa.GE, isa.EQ, isa.NE, isa.NOT, isa.NEG, isa.ADDI, isa.MALLOC,
    isa.LOAD, isa.IN, isa.GLOAD, isa.RAND,
))


def _slots_read(instr) -> Tuple[int, ...]:
    op = instr[0]
    if op == isa.CALL:
        return tuple(instr[3])
    if op == isa.RET:
        return () if instr[1] is None else (instr[1],)
    positions = _READS.get(op, ())
    return tuple(instr[p] for p in positions)


def _slot_written(instr) -> Optional[int]:
    return instr[1] if instr[0] in _WRITES_DST else None


def _used_soon(code, pc: int, slot: int, horizon: int = 8) -> bool:
    """True when ``slot`` is read again within ``horizon`` instructions
    before being overwritten (drives value forwarding).  Follows
    unconditional JMPs -- mirroring jump threading, which emits the
    successors into the same block -- and stops conservatively at
    conditional branches."""
    j = pc + 1
    seen = set()
    steps = 0
    while steps < horizon and 0 <= j < len(code) and j not in seen:
        instr = code[j]
        if instr[0] == isa.JMP:
            seen.add(j)
            j = instr[1]
            continue
        if slot in _slots_read(instr):
            return True
        if _slot_written(instr) == slot:
            return False
        if instr[0] in _BRANCHING:
            return False
        j += 1
        steps += 1
    return False


class FusionStats:
    """Counts of superinstruction rewrites applied during compilation
    (exposed for tests and the microbenchmark's report)."""

    __slots__ = ("const_folds", "value_forwards", "cmp_branches",
                 "threaded_jumps", "closed_loops", "blocks",
                 "instructions")

    def __init__(self) -> None:
        self.const_folds = 0
        self.value_forwards = 0
        self.cmp_branches = 0
        self.threaded_jumps = 0
        self.closed_loops = 0
        self.blocks = 0
        self.instructions = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class _Emitter:
    """Collects the Python source of one block closure."""

    def __init__(self, cf: "CompiledFunction", entry_pc: int):
        self.cf = cf
        self.entry_pc = entry_pc
        self.lines: List[str] = []
        self.consts: Dict[int, int] = {}    # slot -> known literal
        self.temps: Dict[int, str] = {}     # slot -> live Python temp
        self.globals: Dict[str, object] = {}
        self.done: Dict[int, int] = {}      # ip -> instrs incl. faulter
        self.unflushed: Dict[int, int] = {} # ip -> unflushed instrs
        self.last_flush = -1                # emission index of last flush
        self.temp_serial = 0
        self.needs: set = set()
        self.dirty: set = set()     # slots with a deferred loc store
        self.stats = cf.stats

    # -- operand helpers ------------------------------------------------

    def read(self, slot: int) -> str:
        if slot in self.consts:
            self.stats.const_folds += 1
            return repr(self.consts[slot])
        if slot in self.temps:
            return self.temps[slot]
        return f"loc[{slot}]"

    def read_value(self, slot: int):
        """The known literal for ``slot``, or None."""
        return self.consts.get(slot)

    def kill(self, slot: int) -> None:
        self.consts.pop(slot, None)
        self.temps.pop(slot, None)
        self.dirty.discard(slot)

    def fresh_temp(self) -> str:
        self.temp_serial += 1
        return f"_v{self.temp_serial}"

    def write(self, slot: int, expr: str, used_soon: bool,
              literal: Optional[int] = None) -> None:
        """Architectural write of ``expr`` into ``slot``.

        A value that is re-read soon lives in a Python temp, and the
        ``frame.locals`` store is *deferred*: frame state is only
        observable at a fault freeze, an input-exhaustion exit, or a
        block boundary, so :meth:`flush_locals` materializes pending
        stores exactly there, and a slot overwritten before any such
        point never stores its intermediate value at all."""
        self.kill(slot)
        if literal is not None:
            self.consts[slot] = literal
            self.dirty.add(slot)
            return
        if used_soon:
            name = self.fresh_temp()
            self.emit(f"{name} = {expr}")
            self.temps[slot] = name
            self.dirty.add(slot)
            self.stats.value_forwards += 1
        else:
            self.emit(f"loc[{slot}] = {expr}")

    def flush_locals(self) -> None:
        """Materialize deferred ``frame.locals`` stores.  Called before
        anything that can make frame state observable: a faulting op
        (freeze), IN (exhaustion exit), and every block exit/backedge."""
        for slot in sorted(self.dirty):
            if slot in self.temps:
                self.emit(f"loc[{slot}] = {self.temps[slot]}")
            else:
                self.emit(f"loc[{slot}] = {self.consts[slot]!r}")
        self.dirty.clear()

    def emit(self, line: str) -> None:
        self.lines.append(line)

    def emit_counters(self, indent: str = "") -> None:
        if "counters" in self.needs:
            self.emit(indent + "vm._reads += nr")
            self.emit(indent + "vm._writes += nw")

    # -- bookkeeping -----------------------------------------------------

    def breadcrumb(self, pc: int, index: int) -> None:
        """Record fault-recovery tables and drop the ``ip`` marker the
        except handler keys on.  Deferred local stores flush here: a
        fault freeze makes the frame observable."""
        self.flush_locals()
        self.emit(f"ip = {pc}")
        self.done[pc] = index + 1
        self.unflushed[pc] = index - self.last_flush

    def flush_expr(self, index: int) -> str:
        """Pending sim-time through emission index ``index``.  Counters
        live in closure locals (``_ic``/``_pd``) and sync back to the
        machine only at exits, so hot loop iterations never pay
        attribute stores."""
        mult = index - self.last_flush
        if mult:
            return f"_pd + {mult} * instr_ns"
        return "_pd"

    def mark_flushed(self, index: int) -> None:
        self.last_flush = index

    def settle(self, n: int) -> None:
        """Account the block's instructions and unflushed sim-time
        (emitted once per exit path / loop backedge)."""
        self.emit(f"_ic += {n}")
        mult = (n - 1) - self.last_flush
        if mult:
            self.emit(f"_pd += {mult} * instr_ns")

    def sync(self, indent: str = "") -> None:
        """Write the local counters back to the machine; emitted on
        every path that leaves the closure."""
        self.emit(indent + "vm.instr_count = _ic")
        self.emit(indent + "vm._pending = _pd")


class CompiledFunction:
    """Per-function block cache: entry pc -> compiled closure."""

    __slots__ = ("name", "code", "program_meta", "blocks", "sources",
                 "stats")

    def __init__(self, name: str, code, program_meta: Dict[str, int],
                 stats: FusionStats):
        self.name = name
        self.code = code
        #: callee name -> n_locals (for CALL frame construction).
        self.program_meta = program_meta
        self.blocks: Dict[int, object] = {}
        self.sources: Dict[int, str] = {}
        self.stats = stats

    def block(self, pc: int):
        blk = self.blocks.get(pc)
        if blk is None:
            blk = self.compile_block(pc)
        return blk

    # ------------------------------------------------------------------
    # block planning
    # ------------------------------------------------------------------

    def block_plan(self, entry_pc: int) -> Tuple[List[int], Tuple]:
        """The emission plan for the block entered at ``entry_pc``:
        the pcs executed (in order, jump-threaded across JMPs) and the
        terminator, one of ``("op", pc)`` (JZ/JNZ/CALL/RET/HALT at the
        final pc), ``("goto", pc)`` (emission cap or a jump into
        already-emitted code), or ``("loop",)`` (a JMP straight back to
        the entry)."""
        code = self.code
        if not (0 <= entry_pc < len(code)):
            raise ProgramError(
                f"{self.name}: block entry {entry_pc} out of range")
        pcs: List[int] = []
        seen = set()
        pc = entry_pc
        while True:
            if pc in seen:
                return pcs, (("loop",) if pc == entry_pc
                             else ("goto", pc))
            if len(pcs) >= MAX_BLOCK:
                return pcs, ("goto", pc)
            op = code[pc][0]
            seen.add(pc)
            pcs.append(pc)
            if op == isa.JMP:
                pc = code[pc][1]
            elif op in _BRANCHING:
                return pcs, ("op", pc)
            else:
                pc += 1

    # ------------------------------------------------------------------
    # block compilation
    # ------------------------------------------------------------------

    def compile_block(self, entry_pc: int):
        code = self.code
        pcs, term = self.block_plan(entry_pc)
        n = len(pcs)
        em = _Emitter(self, entry_pc)
        em.stats.blocks += 1
        em.stats.instructions += n

        # A terminator that branches back to this block's entry turns
        # the closure into a Python loop: iterations never return to
        # the dispatch loop.
        loop_form = term[0] == "loop"
        if term[0] == "op":
            tinstr = code[term[1]]
            if tinstr[0] in (isa.JZ, isa.JNZ):
                if tinstr[2] == entry_pc or term[1] + 1 == entry_pc:
                    loop_form = True
        if loop_form:
            em.stats.closed_loops += 1

        body = pcs[:-1] if term[0] == "op" else pcs
        for index, bpc in enumerate(body):
            self._emit_instr(em, bpc, index, code[bpc])

        if term[0] == "loop":
            em.flush_locals()
            em.settle(n)
            em.emit("continue")
        elif term[0] == "goto":
            em.flush_locals()
            em.emit_counters()
            em.settle(n)
            em.sync()
            em.emit(f"frame.pc = {term[1]}")
            em.emit("return 0")
        else:
            self._emit_terminator(em, term[1], n, code[term[1]],
                                  prev_pc=pcs[-2] if n > 1 else None)

        return self._assemble(em, n, loop_form)

    # -- straight-line ops ----------------------------------------------

    def _emit_instr(self, em: _Emitter, pc: int, index: int,
                    instr) -> None:
        op = instr[0]
        if op == isa.NOP:
            return
        if op == isa.JMP:
            # Threaded: costs one instruction tick, emits no code.
            em.stats.threaded_jumps += 1
            return
        if op == isa.CONST:
            em.write(instr[1], "", False,
                     literal=instr[2] & 0xFFFFFFFFFFFFFFFF)
            return
        if op == isa.MOV:
            src = instr[2]
            lit = em.read_value(src)
            if lit is not None:
                em.write(instr[1], "", False, literal=lit)
            else:
                em.write(instr[1], em.read(src),
                         _used_soon(self.code, pc, instr[1]))
            return
        if op in _ARITH:
            a, b = em.read_value(instr[2]), em.read_value(instr[3])
            if a is not None and b is not None:
                em.write(instr[1], "", False, literal=_FOLD[op](a, b))
            else:
                expr = _ARITH[op].format(a=em.read(instr[2]),
                                         b=em.read(instr[3]))
                em.write(instr[1], expr,
                         _used_soon(self.code, pc, instr[1]))
            return
        if op == isa.ADDI:
            a = em.read_value(instr[2])
            if a is not None:
                em.write(instr[1], "", False,
                         literal=(a + instr[3]) & 0xFFFFFFFFFFFFFFFF)
            else:
                em.write(instr[1],
                         f"({em.read(instr[2])} + {instr[3]!r}) & "
                         + _MASK,
                         _used_soon(self.code, pc, instr[1]))
            return
        if op in _CMP_EXPR:
            sym = _CMP_EXPR[op]
            em.write(instr[1],
                     f"1 if {em.read(instr[2])} {sym} "
                     f"{em.read(instr[3])} else 0",
                     _used_soon(self.code, pc, instr[1]))
            return
        if op == isa.NOT:
            em.write(instr[1], f"1 if {em.read(instr[2])} == 0 else 0",
                     _used_soon(self.code, pc, instr[1]))
            return
        if op == isa.NEG:
            em.write(instr[1], f"(-{em.read(instr[2])}) & " + _MASK,
                     _used_soon(self.code, pc, instr[1]))
            return
        if op in (isa.DIV, isa.MOD):
            sym = "//" if op == isa.DIV else "%"
            b = em.read_value(instr[3])
            if b is not None and b != 0:
                # Divisor is a known non-zero constant: the op cannot
                # fault, so no breadcrumb, no zero test, no flush.
                a = em.read_value(instr[2])
                if a is not None:
                    em.write(instr[1], "", False,
                             literal=a // b if op == isa.DIV else a % b)
                else:
                    em.write(instr[1],
                             f"{em.read(instr[2])} {sym} {b!r}",
                             _used_soon(self.code, pc, instr[1]))
                return
            em.needs.add("fault")
            em.breadcrumb(pc, index)
            d = em.fresh_temp()
            em.emit(f"{d} = {em.read(instr[3])}")
            em.emit(f"if {d} == 0:")
            msg = ("division by zero" if op == isa.DIV
                   else "modulo by zero")
            em.emit(f"    raise _DivZero({msg!r})")
            em.write(instr[1], f"{em.read(instr[2])} {sym} {d}",
                     _used_soon(self.code, pc, instr[1]))
            return
        if op == isa.LOAD:
            self._emit_load(em, pc, index, instr)
            return
        if op == isa.STORE:
            self._emit_store(em, pc, index, instr)
            return
        if op == isa.MALLOC:
            em.needs.update(("fault", "ext", "clock", "costs"))
            em.breadcrumb(pc, index)
            em.emit(f"clock.charge({em.flush_expr(index)}"
                    " + costs.alloc_ns)")
            em.emit("_pd = 0")
            em.mark_flushed(index)
            em.unflushed[pc] = 0
            size = em.read(instr[2])
            em.kill(instr[1])
            em.emit(f"loc[{instr[1]}] = ext.malloc({size},"
                    " None if ext.mode is _OFF"
                    f" else vm.current_callsite({pc}))")
            return
        if op == isa.FREE:
            em.needs.update(("fault", "ext", "clock", "costs"))
            em.breadcrumb(pc, index)
            em.emit(f"clock.charge({em.flush_expr(index)}"
                    " + costs.alloc_ns)")
            em.emit("_pd = 0")
            em.mark_flushed(index)
            em.unflushed[pc] = 0
            em.emit(f"ext.free({em.read(instr[1])},"
                    " None if ext.mode is _OFF"
                    f" else vm.current_callsite({pc}))")
            return
        if op == isa.MEMSET:
            em.needs.update(("fault", "mem", "trace", "clock", "costs",
                             "counters"))
            em.breadcrumb(pc, index)
            ln = em.fresh_temp()
            em.emit(f"{ln} = {em.read(instr[3])}")
            em.emit(f"if {ln}:")
            a = em.fresh_temp()
            em.emit(f"    {a} = {em.read(instr[1])}")
            em.globals[f"_iid{pc}"] = (self.name, pc)
            em.emit("    if trace:")
            em.emit(f"        ext.note_access({a}, {ln}, True, "
                    f"_iid{pc})")
            em.emit(f"    mem.fill({a}, {em.read(instr[2])} & 255, "
                    f"{ln})")
            em.emit(f"    clock.charge(costs.fill_cost({ln}))")
            em.emit("    nw += 1")
            return
        if op == isa.MEMCPY:
            em.needs.update(("fault", "mem", "trace", "clock", "costs",
                             "counters"))
            em.breadcrumb(pc, index)
            ln = em.fresh_temp()
            em.emit(f"{ln} = {em.read(instr[3])}")
            em.emit(f"if {ln}:")
            d = em.fresh_temp()
            s = em.fresh_temp()
            em.emit(f"    {d} = {em.read(instr[1])}")
            em.emit(f"    {s} = {em.read(instr[2])}")
            em.globals[f"_iid{pc}"] = (self.name, pc)
            em.emit("    if trace:")
            em.emit(f"        ext.note_access({s}, {ln}, False, "
                    f"_iid{pc})")
            em.emit(f"        ext.note_access({d}, {ln}, True, "
                    f"_iid{pc})")
            em.emit(f"    mem.copy_within({d}, {s}, {ln})")
            em.emit(f"    clock.charge(costs.fill_cost({ln}))")
            em.emit("    nr += 1")
            em.emit("    nw += 1")
            return
        if op == isa.IN:
            em.needs.add("input")
            em.flush_locals()  # exhaustion exit exposes the frame
            t = em.fresh_temp()
            em.emit(f"{t} = inp.next()")
            em.emit(f"if {t} is None:")
            em.emit(f"    frame.pc = {pc}")
            ic = f"_ic + {index}" if index else "_ic"
            em.emit(f"    vm.instr_count = {ic}")
            # Completed-but-uncharged instructions only: the rewound
            # IN is neither counted nor timed (Machine rewind fix).
            mult = (index - 1) - em.last_flush
            pd = f"_pd + {mult} * instr_ns" if mult > 0 else "_pd"
            em.emit(f"    vm._pending = {pd}")
            em.emit_counters("    ")
            em.emit("    return 3")
            em.write(instr[1], f"{t} & " + _MASK, False)
            return
        if op == isa.OUT:
            em.needs.update(("clock", "output"))
            p = em.fresh_temp()
            em.emit(f"{p} = {em.flush_expr(index)}")
            em.emit(f"if {p}:")
            em.emit(f"    clock.charge({p})")
            em.emit("_pd = 0")
            em.mark_flushed(index)
            em.emit(f"out.emit(clock.now_ns, {em.read(instr[1])})")
            return
        if op == isa.ASSERT:
            em.needs.add("fault")
            em.breadcrumb(pc, index)
            em.emit(f"if {em.read(instr[1])} == 0:")
            msg = instr[2] or "assertion failed"
            em.emit(f"    raise _AssertFail({msg!r})")
            return
        if op == isa.GLOAD:
            em.needs.add("globals")
            em.write(instr[1], f"glb[{instr[2]}]",
                     _used_soon(self.code, pc, instr[1]))
            return
        if op == isa.GSTORE:
            em.needs.add("globals")
            em.emit(f"glb[{instr[1]}] = {em.read(instr[2])}")
            return
        if op == isa.RAND:
            em.needs.add("entropy")
            em.kill(instr[1])
            em.emit(f"loc[{instr[1]}] = ent.next_u64()")
            return
        # Unknown opcode: fault exactly like the reference loop.
        em.needs.add("fault")
        em.breadcrumb(pc, index)
        em.emit(f"raise _SimFault('illegal opcode {op}')")

    # -- inline memory access --------------------------------------------

    def _addr_expr(self, em: _Emitter, base_slot: int,
                   off: int) -> str:
        """The effective-address expression for a memory op.  A known
        literal base folds to a constant; a zero offset reuses the base
        atom directly (``em.read`` always yields an atom); otherwise a
        temp holds the sum since it is used more than once."""
        lit = em.read_value(base_slot)
        if lit is not None:
            return repr(lit + off)
        base = em.read(base_slot)
        if not off:
            return base
        a = em.fresh_temp()
        em.emit(f"{a} = {base} + {off!r}")
        return a

    def _emit_load(self, em: _Emitter, pc: int, index: int,
                   instr) -> None:
        em.needs.update(("fault", "mem", "trace", "counters"))
        em.breadcrumb(pc, index)
        size = instr[4]
        a = self._addr_expr(em, instr[2], instr[3])
        em.globals[f"_iid{pc}"] = (self.name, pc)
        em.emit("if trace:")
        em.emit(f"    ext.note_access({a}, {size!r}, False, _iid{pc})")
        # Memory.read_uint inlined: bounds check + little-endian
        # decode; the failing branch calls the real method, which
        # raises the byte-identical SegmentationFault.
        o = em.fresh_temp()
        em.emit(f"{o} = {a} - mbase")
        em.emit(f"if {o} < 0 or {o} + {size} > len(mbuf):")
        em.emit(f"    mread({a}, {size!r})")
        em.write(instr[1], f"_fb(mbuf[{o}:{o} + {size}], 'little')",
                 _used_soon(self.code, pc, instr[1]))
        em.emit("nr += 1")

    def _emit_store(self, em: _Emitter, pc: int, index: int,
                    instr) -> None:
        em.needs.update(("fault", "mem", "trace", "counters"))
        em.breadcrumb(pc, index)
        size = instr[3]
        val_slot = instr[4]
        a = self._addr_expr(em, instr[1], instr[2])
        em.globals[f"_iid{pc}"] = (self.name, pc)
        em.emit("if trace:")
        em.emit(f"    ext.note_access({a}, {size!r}, True, _iid{pc})")
        o = em.fresh_temp()
        em.emit(f"{o} = {a} - mbase")
        lit = em.read_value(val_slot)
        fallback_val = repr(lit) if lit is not None else em.read(val_slot)
        em.emit(f"if {o} < 0 or {o} + {size} > len(mbuf):")
        em.emit(f"    mwrite({a}, {size!r}, {fallback_val})")
        if lit is not None:
            data = (lit & ((1 << (8 * size)) - 1)).to_bytes(size,
                                                            "little")
            em.emit(f"mbuf[{o}:{o} + {size}] = {data!r}")
        else:
            mask = (1 << (8 * size)) - 1
            em.emit(f"mbuf[{o}:{o} + {size}] = "
                    f"({em.read(val_slot)} & {mask!r})"
                    f".to_bytes({size}, 'little')")
        # Memory._mark_dirty inlined (spans at most two pages for the
        # word sizes the ISA allows).
        p0 = em.fresh_temp()
        em.emit(f"{p0} = {o} // {PAGE_SIZE}")
        if size > 1:
            p1 = em.fresh_temp()
            em.emit(f"{p1} = ({o} + {size - 1}) // {PAGE_SIZE}")
            em.emit(f"mdirty.add({p0})")
            em.emit(f"if {p1} != {p0}:")
            em.emit(f"    mdirty.add({p1})")
        else:
            em.emit(f"mdirty.add({p0})")
        em.emit("nw += 1")

    # -- terminators ------------------------------------------------------

    def _emit_terminator(self, em: _Emitter, pc: int, n: int,
                         instr, prev_pc: Optional[int]) -> None:
        op = instr[0]
        if op in (isa.JZ, isa.JNZ):
            self._emit_branch(em, pc, n, instr, prev_pc)
            return
        if op == isa.CALL:
            em.needs.add("frames")
            em.flush_locals()
            em.emit_counters()
            em.settle(n)
            em.sync()
            callee = instr[2]
            n_locals = self.program_meta[callee]
            em.emit(f"frame.pc = {pc + 1}")
            em.emit(f"_nl = [0] * {n_locals}")
            for i, slot in enumerate(instr[3]):
                em.emit(f"_nl[{i}] = {em.read(slot)}")
            em.emit("vm.frames.append(_Frame("
                    f"vm.program.functions[{callee!r}], 0, _nl, "
                    f"{instr[1]!r}))")
            em.emit("return 0")
            return
        if op == isa.RET:
            em.flush_locals()
            em.emit_counters()
            em.settle(n)
            em.sync()
            em.emit(f"frame.pc = {pc + 1}")
            value = "0" if instr[1] is None else em.read(instr[1])
            em.emit(f"_rv = {value}")
            em.emit("_fr = vm.frames")
            em.emit("_fr.pop()")
            em.emit("if not _fr:")
            em.emit("    vm.halted = True")
            em.emit("    return 1")
            em.emit("_rd = frame.ret_dst")
            em.emit("if _rd is not None:")
            em.emit("    _fr[-1].locals[_rd] = _rv")
            em.emit("return 0")
            return
        if op == isa.HALT:
            em.flush_locals()
            em.emit_counters()
            em.settle(n)
            em.sync()
            em.emit(f"frame.pc = {pc + 1}")
            em.emit("vm.halted = True")
            em.emit("return 1")
            return
        raise ProgramError(
            f"{self.name}+{pc}: unexpected terminator {op}")

    def _emit_branch(self, em: _Emitter, pc: int, n: int, instr,
                     prev_pc: Optional[int]) -> None:
        op = instr[0]
        taken_target = instr[2]
        fall_target = pc + 1
        entry = em.entry_pc

        em.flush_locals()
        held = self._fused_condition(em, instr, prev_pc)
        if held is None:
            value = em.read(instr[1])
            taken_expr = (f"{value} == 0" if op == isa.JZ
                          else f"{value} != 0")
            fall_expr = (f"{value} != 0" if op == isa.JZ
                         else f"{value} == 0")
        else:
            taken_expr = f"not {held}" if op == isa.JZ else held
            fall_expr = held if op == isa.JZ else f"not {held}"

        if taken_target == entry and fall_target == entry:
            em.settle(n)
            em.emit("continue")
            return
        if fall_target == entry:
            # exit on the taken side, loop on fall-through
            em.settle(n)
            em.emit(f"if {taken_expr}:")
            em.emit(f"    frame.pc = {taken_target}")
            em.emit_counters("    ")
            em.sync("    ")
            em.emit("    return 0")
            em.emit("continue")
            return
        if taken_target == entry:
            em.settle(n)
            em.emit(f"if {fall_expr}:")
            em.emit(f"    frame.pc = {fall_target}")
            em.emit_counters("    ")
            em.sync("    ")
            em.emit("    return 0")
            em.emit("continue")
            return
        em.emit_counters()
        em.settle(n)
        em.sync()
        em.emit(f"if {taken_expr}:")
        em.emit(f"    frame.pc = {taken_target}")
        em.emit("else:")
        em.emit(f"    frame.pc = {fall_target}")
        em.emit("return 0")

    def _fused_condition(self, em: _Emitter, instr,
                         prev_pc: Optional[int]) -> Optional[str]:
        """When the emission-order predecessor is a comparison (or NOT)
        whose dst feeds this branch, return a truthy expression for
        "the comparison held" so the branch skips re-reading the 0/1
        from ``frame.locals`` (compare+branch superinstruction).  Only
        fuses through the value-forwarding temp (or a known literal) so
        the comparison is evaluated exactly once."""
        if prev_pc is None:
            return None
        prev = self.code[prev_pc]
        if prev[0] not in _CMP_EXPR and prev[0] != isa.NOT:
            return None
        if _slot_written(prev) != instr[1]:
            return None
        fwd = em.temps.get(instr[1])
        if fwd is None:
            lit = em.read_value(instr[1])
            if lit is None:
                return None
            em.stats.cmp_branches += 1
            return repr(bool(lit))
        em.stats.cmp_branches += 1
        return fwd

    # -- assembly ---------------------------------------------------------

    def _assemble(self, em: _Emitter, n_instrs: int, loop_form: bool):
        needs = em.needs
        pre: List[str] = [
            "def _block(vm, frame, limit):",
            "    loc = frame.locals",
            "    instr_ns = vm.costs.instr_ns",
            "    _ic = vm.instr_count",
            "    _pd = vm._pending",
        ]
        if "mem" in needs:
            pre.append("    mem = vm.mem")
            pre.append("    mbase = mem.base")
            pre.append("    mbuf = mem._buf")
            pre.append("    mdirty = mem._dirty_pages")
            pre.append("    mread = mem.read_uint")
            pre.append("    mwrite = mem.write_uint")
        if "trace" in needs:
            pre.append("    trace = vm.trace_accesses")
        if "trace" in needs or "ext" in needs:
            pre.append("    ext = vm.extension")
        if "clock" in needs:
            pre.append("    clock = vm.clock")
        if "costs" in needs:
            pre.append("    costs = vm.costs")
        if "globals" in needs:
            pre.append("    glb = vm.globals")
        if "input" in needs:
            pre.append("    inp = vm.input")
        if "output" in needs:
            pre.append("    out = vm.output")
        if "entropy" in needs:
            pre.append("    ent = vm.entropy")
        if "counters" in needs:
            pre.append("    nr = 0")
            pre.append("    nw = 0")
        fault = "fault" in needs
        if fault:
            pre.append("    ip = -1")

        indent = "    "
        src = list(pre)
        if loop_form:
            src.append("    while True:")
            indent += "    "
        src.append(f"{indent}if limit is not None and "
                   f"_ic + {n_instrs} > limit:")
        src.append(f"{indent}    vm.instr_count = _ic")
        src.append(f"{indent}    vm._pending = _pd")
        if "counters" in needs:
            src.append(f"{indent}    vm._reads += nr")
            src.append(f"{indent}    vm._writes += nw")
        src.append(f"{indent}    return 4")
        if fault:
            src.append(f"{indent}try:")
            body_indent = indent + "    "
        else:
            body_indent = indent
        src.extend(body_indent + line for line in em.lines)
        if fault:
            src.append(f"{indent}except _SimFault as fault:")
            h = indent + "    "
            src.append(f"{h}frame.pc = ip + 1")
            src.append(f"{h}vm.instr_count = _ic + _done[ip]")
            src.append(f"{h}vm._pending = _pd + _unf[ip] * instr_ns")
            if "counters" in needs:
                src.append(f"{h}vm._reads += nr")
                src.append(f"{h}vm._writes += nw")
            src.append(f"{h}fault.instr_id = ({self.name!r}, ip)")
            src.append(f"{h}vm.fault = fault")
            src.append(f"{h}return 2")
        source = "\n".join(src) + "\n"

        namespace = {
            "_SimFault": SimulatedFault,
            "_DivZero": DivisionByZeroFault,
            "_AssertFail": AssertionFailure,
            "_Frame": Frame,
            "_OFF": ExtensionMode.OFF,
            "_fb": int.from_bytes,
            "_done": em.done,
            "_unf": em.unflushed,
        }
        namespace.update(em.globals)
        exec(compile(source, f"<jit {self.name}+{em.entry_pc}>",
                     "exec"), namespace)
        fn = namespace["_block"]
        self.blocks[em.entry_pc] = fn
        self.sources[em.entry_pc] = source
        return fn


class CompiledProgram:
    """All compiled functions of one program plus fusion statistics."""

    __slots__ = ("key", "functions", "stats", "binds")

    def __init__(self, program) -> None:
        self.key = program.code_key()
        self.stats = FusionStats()
        meta = {name: fn.n_locals
                for name, fn in program.functions.items()}
        self.functions: Dict[str, CompiledFunction] = {
            name: CompiledFunction(
                name, tuple(tuple(i) for i in fn.code), meta,
                self.stats)
            for name, fn in program.functions.items()
        }
        #: How many Program instances bound to this compilation unit
        #: (cache-hit observability for tests and the benchmark).
        self.binds = 0


#: Process-wide compiled-program cache, keyed by code identity.  Bounded
#: so a harness that churns through many generated programs does not
#: grow it without limit; eviction is LRU, which is plenty for the
#: re-execution workloads the tier exists for.
_CACHE: "OrderedDict[object, CompiledProgram]" = OrderedDict()
_CACHE_MAX = 64


def compiled_for(program) -> CompiledProgram:
    """The (cached) compilation unit for ``program``: two programs with
    identical code share one unit, so every re-execution a recovery
    performs -- clones, probes, validation runs, forked workers --
    reuses the same compiled blocks."""
    key = program.code_key()
    unit = _CACHE.get(key)
    if unit is None:
        unit = CompiledProgram(program)
        if len(_CACHE) >= _CACHE_MAX:
            _CACHE.popitem(last=False)
        _CACHE[key] = unit
    else:
        _CACHE.move_to_end(key)
    return unit


def bind_program(program) -> CompiledProgram:
    """Attach the compiled tier to ``program``'s Function objects (the
    ``jit`` slot the compiled run loop dispatches through)."""
    unit = compiled_for(program)
    for name, fn in program.functions.items():
        fn.jit = unit.functions[name]
    unit.binds += 1
    return unit


def cache_size() -> int:
    return len(_CACHE)


def clear_cache() -> None:
    """Testing hook."""
    _CACHE.clear()
