"""The bytecode interpreter.

Design constraints, in order:

1. **Determinism.**  Given the same snapshot and the same input journal,
   execution is bit-identical.  The only sanctioned nondeterminism is
   the RAND opcode, whose entropy source is deliberately *not* part of
   snapshots (it models timing/environment nondeterminism; the runtime
   reseeds it per execution attempt).
2. **Faithful memory physics.**  Every LOAD/STORE goes through the
   simulated heap; MALLOC/FREE go through the allocator extension with
   a multi-level call-site; faults carry the faulting instruction.
3. **Interpreter speed.**  The dispatch loop avoids attribute lookups
   where it matters; experiments execute tens of millions of
   instructions.

The machine never raises :class:`SimulatedFault` out of :meth:`run`;
it catches the fault, freezes, and returns a :class:`RunResult` --
that catch *is* the cheapest error monitor the paper describes
(exceptions raised from the kernel).  Host errors still propagate.
"""

from __future__ import annotations

from enum import Enum
from typing import List, Optional

from repro.errors import (
    AssertionFailure,
    DivisionByZeroFault,
    SimulatedFault,
)
from repro.heap.base import Memory
from repro.heap.extension import AllocatorExtension, ExtensionMode
from repro.util.callsite import CallSite
from repro.util.rng import DeterministicRNG
from repro.util.simclock import CostModel, SimClock
from repro.vm import isa
from repro.vm.compile import TIER_REFERENCE, TIERS, bind_program
from repro.vm.io import OutputLog, ReplayableInput
from repro.vm.program import Program
from repro.vm.state import Frame, MachineSnapshot

_MASK64 = (1 << 64) - 1


class VMInstruments:
    """The machine's telemetry counters, batch-flushed.

    The dispatch loop tallies instruction and heap-access counts in
    plain locals and flushes them here only at run/stop boundaries
    (exactly like the clock-charging batching), so telemetry adds no
    per-instruction Python calls; with telemetry disabled the machine
    holds no instruments at all.
    """

    __slots__ = ("instructions", "heap_reads", "heap_writes")

    def __init__(self, registry):
        self.instructions = registry.counter("vm.instructions")
        self.heap_reads = registry.counter("vm.heap_reads")
        self.heap_writes = registry.counter("vm.heap_writes")

    def flush(self, instrs: int, reads: int, writes: int) -> None:
        self.instructions.inc(instrs)
        if reads:
            self.heap_reads.inc(reads)
        if writes:
            self.heap_writes.inc(writes)


class RunReason(Enum):
    HALT = "halt"                  # program executed HALT or main returned
    STOP = "stop"                  # reached the requested instruction count
    INPUT_EXHAUSTED = "input"      # IN found no more live input
    FAULT = "fault"                # a SimulatedFault occurred


class RunResult:
    __slots__ = ("reason", "fault")

    def __init__(self, reason: RunReason,
                 fault: Optional[SimulatedFault] = None):
        self.reason = reason
        self.fault = fault

    def __repr__(self) -> str:
        if self.fault is not None:
            return f"RunResult({self.reason.value}, {self.fault.describe()})"
        return f"RunResult({self.reason.value})"


class Machine:
    """One simulated process."""

    def __init__(self, program: Program, mem: Memory,
                 extension: AllocatorExtension,
                 input_stream: Optional[ReplayableInput] = None,
                 output: Optional[OutputLog] = None,
                 clock: Optional[SimClock] = None,
                 costs: Optional[CostModel] = None,
                 entropy_seed: int = 1,
                 tier: str = TIER_REFERENCE):
        if tier not in TIERS:
            raise ValueError(f"unknown vm tier {tier!r} "
                             f"(expected one of {TIERS})")
        self.program = program
        self.mem = mem
        self.extension = extension
        self.input = (input_stream if input_stream is not None
                      else ReplayableInput())
        self.output = output if output is not None else OutputLog()
        self.clock = clock or SimClock()
        self.costs = costs or CostModel()
        self.entropy = DeterministicRNG(entropy_seed)
        self.trace_accesses = False
        self.tier = tier
        #: Set by attach_metrics(); None keeps the hot path untouched.
        self.vm_metrics: Optional[VMInstruments] = None
        #: Compiled-tier batching: sim-time and telemetry accumulated
        #: across block closures, charged/flushed at run exits (the
        #: same discipline the reference loop keeps in locals).
        self._pending = 0
        self._reads = 0
        self._writes = 0
        self._jit_unit = None

        entry = program.entry
        self.frames: List[Frame] = [
            Frame(entry, 0, [0] * entry.n_locals, None)]
        self.globals: List[int] = [0] * program.n_globals
        self.instr_count = 0
        self.halted = False
        self.fault: Optional[SimulatedFault] = None

    def attach_metrics(self, registry) -> None:
        """Register the VM's counters against an *enabled* registry;
        a disabled registry leaves the machine uninstrumented."""
        self.vm_metrics = (VMInstruments(registry)
                           if getattr(registry, "enabled", False) else None)

    # ------------------------------------------------------------------
    # call-site capture
    # ------------------------------------------------------------------

    def current_callsite(self, pc: int) -> CallSite:
        """Multi-level call-site for the instruction at ``pc`` in the
        innermost frame: (this function, pc) plus up to two caller
        return addresses."""
        frames = self.frames
        addrs = [(frames[-1].func.name, pc)]
        for frame in frames[-2::-1]:
            addrs.append((frame.func.name, frame.pc))
            if len(addrs) == CallSite.DEPTH:
                break
        return CallSite.intern(addrs)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self, stop_at: Optional[int] = None,
            max_steps: Optional[int] = None) -> RunResult:
        """Execute until HALT, fault, input exhaustion, or a stop point.

        ``stop_at`` is an absolute ``instr_count`` at which to pause
        (the checkpoint manager's boundary); ``max_steps`` is a relative
        budget on this call.

        Dispatches to the tier selected at construction: the reference
        interpreter, or the template-JIT compiled tier
        (:mod:`repro.vm.compile`), which is observably identical and
        exists purely to make the thousands of re-executions a recovery
        performs cheap.
        """
        if self.fault is not None:
            return RunResult(RunReason.FAULT, self.fault)
        if self.halted:
            return RunResult(RunReason.HALT)

        if max_steps is not None:
            budget_stop = self.instr_count + max_steps
            stop_at = (budget_stop if stop_at is None
                       else min(stop_at, budget_stop))

        if self.tier == TIER_REFERENCE:
            return self._run_reference(stop_at)
        return self._run_compiled(stop_at)

    def _finish_run(self, pending_ns: int, entry_count: int,
                    n_reads: int, n_writes: int) -> None:
        """The one exit sequence every run path funnels through:
        charge batched sim-time, flush batched telemetry."""
        if pending_ns:
            self.clock.charge(pending_ns)
        if self.vm_metrics is not None:
            self.vm_metrics.flush(self.instr_count - entry_count,
                                  n_reads, n_writes)

    def _run_reference(self, stop_at: Optional[int]) -> RunResult:
        mem = self.mem
        clock = self.clock
        instr_ns = self.costs.instr_ns
        frames = self.frames
        glb = self.globals
        ext = self.extension
        # trace_accesses only changes between runs, never during one,
        # so the flag (and the extension it gates) hoists out of the
        # per-instruction path.
        trace = self.trace_accesses
        # Per-instruction time is accumulated locally and charged in
        # bulk at run/stop boundaries and before any operation that
        # reads the clock: a clock.charge() attribute call on every one
        # of tens of millions of instructions is pure dispatch
        # overhead, and the clock value is only *observed* at OUT,
        # MALLOC/FREE (extension bookkeeping), and run exits.
        pending_ns = 0
        # Telemetry counters batch the same way: locals in the loop,
        # one flush per exit.  tel is False whenever no registry is
        # attached, so the disabled path adds no calls.
        vm_metrics = self.vm_metrics
        tel = vm_metrics is not None
        entry_count = self.instr_count
        n_reads = 0
        n_writes = 0

        while True:
            if stop_at is not None and self.instr_count >= stop_at:
                self._finish_run(pending_ns, entry_count,
                                 n_reads, n_writes)
                return RunResult(RunReason.STOP)
            frame = frames[-1]
            # No bounds check: Program.finalize appends a sentinel RET
            # to every function that can fall through, so pc is always
            # in range.
            pc = frame.pc
            instr = frame.func.code[pc]
            op = instr[0]
            frame.pc = pc + 1
            self.instr_count += 1
            pending_ns += instr_ns
            loc = frame.locals

            try:
                if op == isa.LOAD:
                    addr = loc[instr[2]] + instr[3]
                    if trace:
                        ext.note_access(
                            addr, instr[4], False, (frame.func.name, pc))
                    loc[instr[1]] = mem.read_uint(addr, instr[4])
                    if tel:
                        n_reads += 1
                elif op == isa.STORE:
                    addr = loc[instr[1]] + instr[2]
                    if trace:
                        ext.note_access(
                            addr, instr[3], True, (frame.func.name, pc))
                    mem.write_uint(addr, instr[3], loc[instr[4]])
                    if tel:
                        n_writes += 1
                elif op == isa.CONST:
                    loc[instr[1]] = instr[2] & _MASK64
                elif op == isa.MOV:
                    loc[instr[1]] = loc[instr[2]]
                elif op == isa.ADD:
                    loc[instr[1]] = (loc[instr[2]] + loc[instr[3]]) & _MASK64
                elif op == isa.ADDI:
                    loc[instr[1]] = (loc[instr[2]] + instr[3]) & _MASK64
                elif op == isa.SUB:
                    loc[instr[1]] = (loc[instr[2]] - loc[instr[3]]) & _MASK64
                elif op == isa.MUL:
                    loc[instr[1]] = (loc[instr[2]] * loc[instr[3]]) & _MASK64
                elif op == isa.DIV:
                    d = loc[instr[3]]
                    if d == 0:
                        raise DivisionByZeroFault("division by zero")
                    loc[instr[1]] = loc[instr[2]] // d
                elif op == isa.MOD:
                    d = loc[instr[3]]
                    if d == 0:
                        raise DivisionByZeroFault("modulo by zero")
                    loc[instr[1]] = loc[instr[2]] % d
                elif op == isa.AND:
                    loc[instr[1]] = loc[instr[2]] & loc[instr[3]]
                elif op == isa.OR:
                    loc[instr[1]] = loc[instr[2]] | loc[instr[3]]
                elif op == isa.XOR:
                    loc[instr[1]] = loc[instr[2]] ^ loc[instr[3]]
                elif op == isa.SHL:
                    loc[instr[1]] = (loc[instr[2]]
                                     << (loc[instr[3]] & 63)) & _MASK64
                elif op == isa.SHR:
                    loc[instr[1]] = loc[instr[2]] >> (loc[instr[3]] & 63)
                elif op == isa.LT:
                    loc[instr[1]] = 1 if loc[instr[2]] < loc[instr[3]] else 0
                elif op == isa.LE:
                    loc[instr[1]] = 1 if loc[instr[2]] <= loc[instr[3]] else 0
                elif op == isa.GT:
                    loc[instr[1]] = 1 if loc[instr[2]] > loc[instr[3]] else 0
                elif op == isa.GE:
                    loc[instr[1]] = 1 if loc[instr[2]] >= loc[instr[3]] else 0
                elif op == isa.EQ:
                    loc[instr[1]] = 1 if loc[instr[2]] == loc[instr[3]] else 0
                elif op == isa.NE:
                    loc[instr[1]] = 1 if loc[instr[2]] != loc[instr[3]] else 0
                elif op == isa.NOT:
                    loc[instr[1]] = 1 if loc[instr[2]] == 0 else 0
                elif op == isa.NEG:
                    loc[instr[1]] = (-loc[instr[2]]) & _MASK64
                elif op == isa.JMP:
                    frame.pc = instr[1]
                elif op == isa.JZ:
                    if loc[instr[1]] == 0:
                        frame.pc = instr[2]
                elif op == isa.JNZ:
                    if loc[instr[1]] != 0:
                        frame.pc = instr[2]
                elif op == isa.CALL:
                    callee = self.program.functions[instr[2]]
                    new_locals = [0] * callee.n_locals
                    for i, slot in enumerate(instr[3]):
                        new_locals[i] = loc[slot]
                    frames.append(Frame(callee, 0, new_locals, instr[1]))
                elif op == isa.RET:
                    value = 0 if instr[1] is None else loc[instr[1]]
                    finished = frames.pop()
                    if not frames:
                        self.halted = True
                        self._finish_run(pending_ns, entry_count,
                                         n_reads, n_writes)
                        return RunResult(RunReason.HALT)
                    if finished.ret_dst is not None:
                        frames[-1].locals[finished.ret_dst] = value
                elif op == isa.MALLOC:
                    clock.charge(pending_ns + self.costs.alloc_ns)
                    pending_ns = 0
                    site = (None if ext.mode is ExtensionMode.OFF
                            else self.current_callsite(pc))
                    loc[instr[1]] = ext.malloc(loc[instr[2]], site)
                elif op == isa.FREE:
                    clock.charge(pending_ns + self.costs.alloc_ns)
                    pending_ns = 0
                    site = (None if ext.mode is ExtensionMode.OFF
                            else self.current_callsite(pc))
                    ext.free(loc[instr[1]], site)
                elif op == isa.MEMSET:
                    addr, val, ln = (loc[instr[1]], loc[instr[2]],
                                     loc[instr[3]])
                    if ln:
                        if trace:
                            ext.note_access(
                                addr, ln, True, (frame.func.name, pc))
                        mem.fill(addr, val & 0xFF, ln)
                        clock.charge(self.costs.fill_cost(ln))
                        if tel:
                            n_writes += 1
                elif op == isa.MEMCPY:
                    dst, src, ln = (loc[instr[1]], loc[instr[2]],
                                    loc[instr[3]])
                    if ln:
                        if trace:
                            iid = (frame.func.name, pc)
                            ext.note_access(src, ln, False, iid)
                            ext.note_access(dst, ln, True, iid)
                        mem.copy_within(dst, src, ln)
                        clock.charge(self.costs.fill_cost(ln))
                        if tel:
                            n_reads += 1
                            n_writes += 1
                elif op == isa.IN:
                    token = self.input.next()
                    if token is None:
                        # Rewind so a later feed()+run() re-executes IN.
                        # The rewound IN is excluded from the charge as
                        # well as the count: it never executed, so its
                        # instr_ns stays out of sim time and the flushed
                        # telemetry matches instr_count exactly.
                        frame.pc = pc
                        self.instr_count -= 1
                        self._finish_run(pending_ns - instr_ns,
                                         entry_count, n_reads, n_writes)
                        return RunResult(RunReason.INPUT_EXHAUSTED)
                    loc[instr[1]] = token & _MASK64
                elif op == isa.OUT:
                    if pending_ns:
                        clock.charge(pending_ns)
                        pending_ns = 0
                    self.output.emit(clock.now_ns, loc[instr[1]])
                elif op == isa.ASSERT:
                    if loc[instr[1]] == 0:
                        raise AssertionFailure(instr[2] or "assertion failed")
                elif op == isa.HALT:
                    self.halted = True
                    self._finish_run(pending_ns, entry_count,
                                     n_reads, n_writes)
                    return RunResult(RunReason.HALT)
                elif op == isa.GLOAD:
                    loc[instr[1]] = glb[instr[2]]
                elif op == isa.GSTORE:
                    glb[instr[1]] = loc[instr[2]]
                elif op == isa.RAND:
                    loc[instr[1]] = self.entropy.next_u64()
                elif op == isa.NOP:
                    pass
                else:  # pragma: no cover - finalize() rejects these
                    raise SimulatedFault(f"illegal opcode {op}")
            except SimulatedFault as fault:
                self._finish_run(pending_ns, entry_count,
                                 n_reads, n_writes)
                fault.instr_id = (frame.func.name, pc)
                self.fault = fault
                return RunResult(RunReason.FAULT, fault)

    # ------------------------------------------------------------------
    # compiled tier
    # ------------------------------------------------------------------

    def _compiled_exit(self, entry_count: int) -> None:
        """Charge and flush the batched state block closures left in
        ``_pending``/``_reads``/``_writes`` (the compiled analogue of
        the reference loop's exit sequence)."""
        self._finish_run(self._pending, entry_count,
                         self._reads, self._writes)
        self._pending = 0
        self._reads = 0
        self._writes = 0

    def _run_compiled(self, stop_at: Optional[int]) -> RunResult:
        if self._jit_unit is None:
            self._jit_unit = bind_program(self.program)
        frames = self.frames
        entry_count = self.instr_count
        self._pending = 0
        self._reads = 0
        self._writes = 0

        while True:
            if stop_at is not None and self.instr_count >= stop_at:
                self._compiled_exit(entry_count)
                return RunResult(RunReason.STOP)
            frame = frames[-1]
            jit = frame.func.jit
            block = jit.blocks.get(frame.pc)
            if block is None:
                block = jit.compile_block(frame.pc)
            code = block(self, frame, stop_at)
            if code == 0:
                continue
            if code == 4:
                # The remaining budget is smaller than this block: the
                # reference loop steps the tail with per-instruction
                # stop precision.  Settle the batched state first so
                # both tiers' charges and flushes compose to the same
                # totals (no observation happens in between).
                self._compiled_exit(entry_count)
                return self._run_reference(stop_at)
            self._compiled_exit(entry_count)
            if code == 1:
                return RunResult(RunReason.HALT)
            if code == 2:
                return RunResult(RunReason.FAULT, self.fault)
            return RunResult(RunReason.INPUT_EXHAUSTED)

    # ------------------------------------------------------------------
    # snapshot / restore (machine part only)
    # ------------------------------------------------------------------

    def snapshot(self) -> MachineSnapshot:
        return MachineSnapshot(self.frames, self.globals, self.instr_count,
                               self.halted, self.input.snapshot(),
                               self.output.snapshot())

    def restore(self, snap: MachineSnapshot) -> None:
        self.frames = snap.restore_frames()
        self.globals = list(snap.globals)
        self.instr_count = snap.instr_count
        self.halted = snap.halted
        self.fault = None
        self.input.restore(snap.input_cursor)
        self.output.restore(snap.output_length)
