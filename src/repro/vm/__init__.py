"""Deterministic register VM -- the execution substrate.

The paper diagnoses bugs in native processes by rolling them back and
deterministically re-executing them.  This package provides the same
property in simulation: programs are bytecode for a small 64-bit
register machine whose entire state (frames, globals, heap, input
cursor) can be snapshotted and restored, and whose memory accesses all
flow through the simulated heap so that memory bugs corrupt state and
fault exactly like their C counterparts.

Applications are normally written in MiniC (see :mod:`repro.lang`) and
compiled to this bytecode; tests also use the assembler-level
:class:`~repro.vm.builder.FunctionBuilder` directly.
"""

from repro.vm.isa import OPCODE_NAMES, Instr
from repro.vm.program import Function, Program
from repro.vm.builder import FunctionBuilder, ProgramBuilder
from repro.vm.io import OutputLog, ReplayableInput
from repro.vm.compile import (
    TIER_COMPILED,
    TIER_REFERENCE,
    TIERS,
    bind_program,
    compiled_for,
)
from repro.vm.machine import Machine, RunReason, RunResult

__all__ = [
    "OPCODE_NAMES",
    "Instr",
    "Function",
    "Program",
    "FunctionBuilder",
    "ProgramBuilder",
    "OutputLog",
    "ReplayableInput",
    "Machine",
    "RunReason",
    "RunResult",
    "TIER_COMPILED",
    "TIER_REFERENCE",
    "TIERS",
    "bind_program",
    "compiled_for",
]
