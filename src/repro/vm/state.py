"""Machine state: frames and snapshot plumbing.

Snapshots here cover only the *machine* part of a process (frames,
globals, instruction counter).  The checkpoint package composes this
with heap, allocator, extension, and I/O snapshots into a full process
checkpoint.
"""

from __future__ import annotations

from typing import List, Optional

from repro.vm.program import Function


class Frame:
    """One activation record."""

    __slots__ = ("func", "pc", "locals", "ret_dst")

    def __init__(self, func: Function, pc: int, local_slots: List[int],
                 ret_dst: Optional[int]):
        self.func = func
        self.pc = pc
        self.locals = local_slots
        self.ret_dst = ret_dst

    def copy(self) -> "Frame":
        return Frame(self.func, self.pc, list(self.locals), self.ret_dst)

    def __repr__(self) -> str:
        return f"Frame({self.func.name}@{self.pc})"


class MachineSnapshot:
    """Immutable copy of the machine-visible state.

    Frames are stored as plain ``(func, pc, locals-tuple, ret_dst)``
    tuples rather than :class:`Frame` objects: snapshots are taken at
    every checkpoint boundary, and tuples are both cheaper to build
    and genuinely immutable (a shared Frame would alias the live
    ``locals`` list).  :meth:`restore_frames` rebuilds live frames.
    """

    __slots__ = ("frames", "globals", "instr_count", "halted",
                 "input_cursor", "output_length")

    def __init__(self, frames: List[Frame], global_slots: List[int],
                 instr_count: int, halted: bool, input_cursor: int,
                 output_length: int):
        self.frames = tuple((f.func, f.pc, tuple(f.locals), f.ret_dst)
                            for f in frames)
        self.globals = tuple(global_slots)
        self.instr_count = instr_count
        self.halted = halted
        self.input_cursor = input_cursor
        self.output_length = output_length

    def restore_frames(self) -> List[Frame]:
        """Fresh mutable activation records from the stored tuples."""
        return [Frame(func, pc, list(local_slots), ret_dst)
                for func, pc, local_slots, ret_dst in self.frames]
