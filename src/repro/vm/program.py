"""Program and function containers.

A :class:`Program` is an immutable set of named :class:`Function`
objects plus a global-slot table size.  Programs are validated once at
link time (:meth:`Program.finalize`) so the interpreter can trust
operand shapes in its hot loop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ProgramError
from repro.vm import isa
from repro.vm.isa import Instr


class Function:
    """One function: parameter count, local-slot count, and code."""

    __slots__ = ("name", "n_params", "n_locals", "code", "jit")

    def __init__(self, name: str, n_params: int, n_locals: int,
                 code: Sequence[Instr]):
        if n_params > n_locals:
            raise ProgramError(
                f"{name}: {n_params} params but only {n_locals} locals")
        self.name = name
        self.n_params = n_params
        self.n_locals = n_locals
        self.code: List[Instr] = list(code)
        #: Compiled tier attachment (repro.vm.compile.CompiledFunction);
        #: bound lazily the first time a compiled-tier machine runs this
        #: program, None under the reference interpreter.
        self.jit = None

    def __repr__(self) -> str:
        return (f"Function({self.name}, params={self.n_params}, "
                f"locals={self.n_locals}, len={len(self.code)})")

    def disassemble(self) -> str:
        lines = [f"func {self.name}({self.n_params}) "
                 f"locals={self.n_locals}:"]
        for pc, instr in enumerate(self.code):
            lines.append(f"  {pc:4d}  {isa.render_instr(instr)}")
        return "\n".join(lines)


class Program:
    """A linked program, ready for execution."""

    ENTRY = "main"

    def __init__(self, functions: Sequence[Function], n_globals: int = 0,
                 name: str = "program"):
        self.name = name
        self.n_globals = n_globals
        self.functions: Dict[str, Function] = {}
        for fn in functions:
            if fn.name in self.functions:
                raise ProgramError(f"duplicate function {fn.name}")
            self.functions[fn.name] = fn
        self.finalize()

    def finalize(self) -> None:
        """Validate structure: entry point exists, jump targets are in
        range, called functions exist with matching arity, memory sizes
        are legal.  Raises :class:`ProgramError` on any violation.

        Also appends a sentinel RET to any function whose last
        instruction can fall through, so execution can never reach
        ``pc == len(code)``: the interpreter's hot loop then needs no
        per-instruction bounds check (the sentinel behaves exactly like
        the synthetic RET the loop used to fabricate).  Jump targets are
        validated against the original length first, so no branch can
        reach the sentinel directly; idempotent because a sentinel-
        terminated function ends in RET.
        """
        if self.ENTRY not in self.functions:
            raise ProgramError(f"program {self.name} has no 'main'")
        for fn in self.functions.values():
            self._check_function(fn)
        for fn in self.functions.values():
            if (not fn.code
                    or fn.code[-1][0] not in (isa.RET, isa.JMP, isa.HALT)):
                fn.code.append((isa.RET, None, None, None, None))

    def _check_function(self, fn: Function) -> None:
        n = len(fn.code)
        for pc, instr in enumerate(fn.code):
            op = instr[0]
            where = f"{fn.name}+{pc}"
            if op in (isa.JMP,):
                if not (0 <= instr[1] < n):
                    raise ProgramError(f"{where}: jump target {instr[1]}")
            elif op in (isa.JZ, isa.JNZ):
                if not (0 <= instr[2] < n):
                    raise ProgramError(f"{where}: jump target {instr[2]}")
            elif op == isa.CALL:
                callee = self.functions.get(instr[2])
                if callee is None:
                    raise ProgramError(f"{where}: unknown function "
                                       f"{instr[2]!r}")
                if len(instr[3]) != callee.n_params:
                    raise ProgramError(
                        f"{where}: {instr[2]} takes {callee.n_params} "
                        f"args, got {len(instr[3])}")
            elif op == isa.LOAD:
                if instr[4] not in isa.VALID_MEM_SIZES:
                    raise ProgramError(f"{where}: bad load size {instr[4]}")
            elif op == isa.STORE:
                if instr[3] not in isa.VALID_MEM_SIZES:
                    raise ProgramError(f"{where}: bad store size {instr[3]}")
            elif op in (isa.GLOAD, isa.GSTORE):
                g = instr[2] if op == isa.GLOAD else instr[1]
                if not (0 <= g < self.n_globals):
                    raise ProgramError(f"{where}: global {g} out of range")

    def code_key(self) -> Tuple:
        """Structural identity of this program's code: two Program
        instances with the same key execute identically, so the
        compiled-tier cache (repro.vm.compile) shares one compilation
        unit between them -- across clones, probes, and task
        encode/decode round-trips that rebuild the Program object."""
        key = getattr(self, "_code_key", None)
        if key is None:
            key = (self.n_globals, tuple(sorted(
                (fn.name, fn.n_params, fn.n_locals, tuple(
                    tuple(tuple(x) if isinstance(x, (list, tuple)) else x
                          for x in instr)
                    for instr in fn.code))
                for fn in self.functions.values())))
            self._code_key = key
        return key

    @property
    def entry(self) -> Function:
        return self.functions[self.ENTRY]

    def get(self, name: str) -> Optional[Function]:
        return self.functions.get(name)

    def disassemble(self) -> str:
        return "\n\n".join(fn.disassemble()
                           for fn in self.functions.values())
