"""Program I/O: the recorded input stream and the output log.

:class:`ReplayableInput` is the analogue of the paper's network proxy
(Section 3): during normal execution it pulls tokens from a live source
and journals every one; after a rollback the journal replays the exact
same tokens from the checkpointed cursor, so re-execution sees a
byte-identical request stream.

:class:`OutputLog` timestamps every OUT value with simulated time; the
throughput experiment (Figure 4) bins these timestamps.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple


class ReplayableInput:
    """Journal-backed input stream with a rewindable cursor."""

    def __init__(self, source: Iterable[int] = ()):
        self._source: Iterator[int] = iter(source)
        self._journal: List[int] = []
        self._cursor = 0
        self._exhausted = False

    def next(self) -> Optional[int]:
        """The next token, or None when the live source is exhausted."""
        if self._cursor < len(self._journal):
            token = self._journal[self._cursor]
            self._cursor += 1
            return token
        if self._exhausted:
            return None
        try:
            token = next(self._source)
        except StopIteration:
            self._exhausted = True
            return None
        self._journal.append(int(token))
        self._cursor += 1
        return token

    def feed(self, tokens: Iterable[int]) -> None:
        """Append more live input after the current source (used by
        interactive experiments that drive a server in phases)."""
        existing = self._source
        fresh = iter([int(t) for t in tokens])

        def chained():
            for t in existing:
                yield t
            for t in fresh:
                yield t

        self._source = chained()
        self._exhausted = False

    @property
    def cursor(self) -> int:
        return self._cursor

    @property
    def journal_length(self) -> int:
        return len(self._journal)

    def journal_slice(self, start: int, end: Optional[int] = None) \
            -> List[int]:
        return self._journal[start:end]

    def preload_journal(self, tokens: Iterable[int]) -> None:
        """Bulk-load recorded tokens into an untouched stream, leaving
        the cursor past them (as if every token had been consumed).

        Used when cloning a process: the clone replays the original's
        journal, and loading it in one call avoids the token-by-token
        ``next()`` loop that made cloning O(journal) Python iterations.
        A subsequent ``restore(cursor)`` rewinds into the preloaded
        region.
        """
        if self._journal or self._cursor:
            raise ValueError("preload_journal requires a fresh stream")
        self._journal = [int(t) for t in tokens]
        self._cursor = len(self._journal)

    def prefetch(self, count: int) -> int:
        """Pull up to ``count`` tokens from the live source into the
        journal *without* advancing the cursor.

        Re-execution tasks shipped to worker processes carry only the
        journal (workers cannot share the live source's iterator state),
        so before dispatching a batch the engine prefetches every token
        the re-execution window could possibly consume.  The live
        process later reads the same values back out of the journal, so
        behaviour is unchanged -- tokens just arrive in the journal a
        little earlier than on-demand ``next()`` would have put them.

        Returns the number of tokens actually journaled (less than
        ``count`` if the source ran dry).
        """
        added = 0
        while added < count and not self._exhausted:
            try:
                token = next(self._source)
            except StopIteration:
                self._exhausted = True
                break
            self._journal.append(int(token))
            added += 1
        return added

    def skip_to(self, position: int) -> int:
        """Advance the cursor forward to ``position``, pulling from the
        live source as needed and *discarding* the skipped tokens from
        the consumer's point of view (they stay in the journal).

        This is the restart resync: a fresh process resuming the same
        stream drops the in-flight request's remaining tokens and picks
        up at the next request boundary.  Clamped to the journal end
        when the source runs dry; never moves the cursor backward.
        Returns the cursor after the skip.
        """
        need = position - len(self._journal)
        if need > 0:
            self.prefetch(need)
        position = min(position, len(self._journal))
        if position > self._cursor:
            self._cursor = position
        return self._cursor

    def snapshot(self) -> int:
        return self._cursor

    def restore(self, cursor: int) -> None:
        if cursor > len(self._journal):
            raise ValueError("cursor beyond journal")
        self._cursor = cursor


class OutputLog:
    """Timestamped append-only output."""

    def __init__(self) -> None:
        self._entries: List[Tuple[int, int]] = []  # (time_ns, value)

    def emit(self, time_ns: int, value: int) -> None:
        self._entries.append((time_ns, value))

    def __len__(self) -> int:
        return len(self._entries)

    def values(self) -> List[int]:
        return [v for _, v in self._entries]

    def entries(self) -> List[Tuple[int, int]]:
        return list(self._entries)

    def since(self, index: int) -> List[Tuple[int, int]]:
        return self._entries[index:]

    def snapshot(self) -> int:
        return len(self._entries)

    def restore(self, length: int) -> None:
        del self._entries[length:]

    def preload(self, entries: List[Tuple[int, int]]) -> None:
        """Seed a fresh log with another log's history (used when
        cloning a process so the clone's output matches the original's
        up to the snapshot point)."""
        if self._entries:
            raise ValueError("preload requires an empty log")
        self._entries = [(int(t), int(v)) for t, v in entries]
