"""Serializable re-execution tasks.

A :class:`ReexecTask` is everything a worker process needs to reproduce
one deterministic re-execution from a checkpoint: the materialized
process state, the input journal, the output history up to the
snapshot, the policy (diagnostic probe) or patch set (validation run),
the entropy salt, and the instruction budget.  :func:`run_task` turns a
task into a :class:`TaskOutcome` and is deliberately a pure module-level
function: the serial backend calls it in-process and the fork backend
calls it inside worker processes, so both paths execute *identical*
code and produce identical outcomes.

Determinism is the load-bearing property (DESIGN.md §8): every input a
re-execution consumes -- heap state, journal, allocator layout, entropy
seed -- travels inside the task, so the outcome is a function of the
task alone, independent of which process runs it or when.

Program functions are not shipped inside snapshots.  Machine frames
reference :class:`~repro.vm.program.Function` objects, which are heavy
and already present in every worker (the fork backend loads the program
once per worker via its initializer), so :func:`encode_state` replaces
them with function *names* and :func:`decode_state` rebinds against the
local program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.core.heap_marking import HeapMarking
from repro.core.patches import PatchPool
from repro.heap.extension import (
    ChangePolicy,
    ExtensionMode,
    IllegalAccess,
    MMTraceEntry,
)
from repro.process import Process, ProcessSnapshot
from repro.util.simclock import CostModel
from repro.vm.machine import RunReason, RunResult
from repro.vm.program import Program
from repro.vm.state import MachineSnapshot

#: Run outcomes that count as "survived the failure region".
PASS_REASONS = (RunReason.STOP, RunReason.HALT, RunReason.INPUT_EXHAUSTED)


def encode_state(state: ProcessSnapshot) -> tuple:
    """A picklable encoding of a *materialized* process snapshot
    (``memory`` present).  Frames keep their shape but swap Function
    objects for function names."""
    if state.memory is None:
        raise ValueError("encode_state needs a materialized snapshot")
    m = state.machine
    frames = tuple((func.name, pc, local_slots, ret_dst)
                   for func, pc, local_slots, ret_dst in m.frames)
    machine = (frames, m.globals, m.instr_count, m.halted,
               m.input_cursor, m.output_length)
    return (machine, state.memory, state.allocator, state.extension,
            state.randomized)


def decode_state(encoded: tuple, program: Program) -> ProcessSnapshot:
    """Rebuild a :class:`ProcessSnapshot`, rebinding frame functions by
    name against ``program``."""
    machine, memory, allocator, extension, randomized = encoded
    (frames, global_slots, instr_count, halted,
     input_cursor, output_length) = machine
    snap = MachineSnapshot.__new__(MachineSnapshot)
    snap.frames = tuple(
        (program.functions[name], pc, tuple(local_slots), ret_dst)
        for name, pc, local_slots, ret_dst in frames)
    snap.globals = tuple(global_slots)
    snap.instr_count = instr_count
    snap.halted = halted
    snap.input_cursor = input_cursor
    snap.output_length = output_length
    return ProcessSnapshot(machine=snap, memory=memory,
                           allocator=allocator, extension=extension,
                           randomized=randomized)


@dataclass
class ReexecTask:
    """One re-execution: (state, policy-or-patches, budget) -> outcome."""

    kind: str                      # "probe" | "validation" | "baseline"
    label: str
    state: tuple                   # encode_state() payload
    journal: List[int]
    output_prefix: List[Tuple[int, int]]
    window_end: int                # run(stop_at=...) instruction budget
    costs: CostModel               # replay-rate cost model
    heap_limit: int
    quarantine_threshold: int
    patch_memory_limit: Optional[int]
    #: entropy seed for this attempt (diagnosis salt or seed*7919 for
    #: validation; 1 reproduces the unpatched baseline clone).
    salt: int
    policy: Optional[ChangePolicy] = None      # probes
    patches_json: Optional[List[dict]] = None  # validation patch set
    pool_name: str = ""
    seed: Optional[int] = None     # randomized-allocator seed
    mark: bool = False             # heap marking around the probe
    trace_mm: bool = False
    trace_accesses: bool = False
    #: Test hook: a worker that picks this task up dies immediately
    #: (exercises the serial-fallback path).  In-process execution
    #: ignores it.
    fail_marker: bool = False
    #: Chaos hook: executing this task raises
    #: :class:`~repro.chaos.ChaosError` instead of producing an
    #: outcome -- in a worker *and* in-process, modeling a probe that
    #: genuinely crashes wherever it runs.
    raise_marker: bool = False
    #: Chaos hook: a worker that picks this task up hangs (sleeps past
    #: the executor's task timeout).  In-process execution ignores it,
    #: so the timeout rescue produces the real outcome.
    hang_marker: bool = False
    #: VM execution tier for the re-execution; travels with the task so
    #: a forked worker runs the same tier (and hits the same
    #: process-wide compiled-program cache) as the live process.
    vm_tier: str = "reference"


@dataclass
class TaskOutcome:
    """Everything a re-execution observed, shipped back in-order."""

    label: str
    kind: str
    result: RunResult
    passed: bool
    #: The re-execution's own clock time (its clone clock starts at 0),
    #: i.e. exactly what this attempt would have cost the live process.
    time_ns: int
    manifestations: Any            # heap.extension.Manifestations
    mark_corruptions: List[Any]
    mm_trace: List[MMTraceEntry] = field(default_factory=list)
    illegal_accesses: List[IllegalAccess] = field(default_factory=list)
    #: The policy after the run -- diagnostic policies accumulate the
    #: observed call-site universe (seen_alloc_sites/seen_free_sites).
    policy: Optional[ChangePolicy] = None


def run_task(program: Program, task: ReexecTask) -> TaskOutcome:
    """Execute one task in the current process.

    Mirrors, step for step, what the in-process engines do to a clone:
    restore the snapshot, install the policy/patches, reseed entropy,
    run to the window end, then scan for manifestations.
    """
    if task.raise_marker:
        from repro.chaos.faults import ChaosError
        raise ChaosError(f"injected probe crash ({task.label})")
    state = decode_state(task.state, program)
    process = Process(program, mode=ExtensionMode.DIAGNOSTIC,
                      costs=task.costs, heap_limit=task.heap_limit,
                      quarantine_threshold=task.quarantine_threshold,
                      vm_tier=task.vm_tier)
    process.extension.patch_memory_limit = task.patch_memory_limit
    process.input.preload_journal(task.journal)
    process.output.preload(task.output_prefix)
    process.restore(state)
    if task.kind == "validation":
        pool = PatchPool.from_patches(task.pool_name,
                                      task.patches_json or [])
        process.use_randomized_allocator(task.seed or 0)
        policy: ChangePolicy = pool.policy()
        process.set_mode(ExtensionMode.VALIDATION, policy)
    elif task.kind == "baseline":
        policy = ChangePolicy()
        process.set_mode(ExtensionMode.DIAGNOSTIC, policy)
    else:
        policy = task.policy or ChangePolicy()
        process.set_mode(ExtensionMode.DIAGNOSTIC, policy)
    process.extension.trace_mm = task.trace_mm
    process.machine.trace_accesses = task.trace_accesses
    process.reseed_entropy(task.salt)
    marking = None
    if task.mark:
        marking = HeapMarking(process.mem, process.allocator)
        marking.apply()
    result = process.run(stop_at=task.window_end)
    manifestations = process.extension.scan_manifestations()
    corruptions = marking.scan() if marking is not None else []
    return TaskOutcome(
        label=task.label, kind=task.kind, result=result,
        passed=result.reason in PASS_REASONS,
        time_ns=process.clock.now_ns,
        manifestations=manifestations,
        mark_corruptions=corruptions,
        mm_trace=list(process.extension.mm_trace),
        illegal_accesses=list(process.extension.illegal_accesses),
        policy=policy)
