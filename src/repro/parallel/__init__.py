"""Parallel recovery engine: execution backends that fan diagnosis
probes and validation re-executions out across worker processes.

See DESIGN.md §8.  Public surface:

* :class:`~repro.parallel.executor.SerialExecutor` /
  :class:`~repro.parallel.executor.ForkExecutor` -- the backends;
* :func:`~repro.parallel.executor.make_executor` -- the runtime's
  selector (``FirstAidConfig.workers``);
* :func:`~repro.parallel.executor.schedule_ns` -- max-over-workers
  simulated-time accounting;
* :class:`~repro.parallel.tasks.ReexecTask` /
  :class:`~repro.parallel.tasks.TaskOutcome` /
  :func:`~repro.parallel.tasks.run_task` -- the task protocol.
"""

from repro.parallel.executor import (
    ForkExecutor,
    SerialExecutor,
    make_executor,
    schedule_ns,
)
from repro.parallel.tasks import (
    PASS_REASONS,
    ReexecTask,
    TaskOutcome,
    decode_state,
    encode_state,
    run_task,
)

__all__ = [
    "ForkExecutor",
    "SerialExecutor",
    "make_executor",
    "schedule_ns",
    "ReexecTask",
    "TaskOutcome",
    "PASS_REASONS",
    "encode_state",
    "decode_state",
    "run_task",
]
