"""Execution backends for re-execution tasks.

Two backends run :class:`~repro.parallel.tasks.ReexecTask` batches:

* :class:`SerialExecutor` executes tasks in-process, lazily, on first
  request -- the A/B control.  A consumer that stops early (the serial
  decision order) never pays for tasks it did not ask for.
* :class:`ForkExecutor` fans tasks out across worker processes via a
  fork-context :class:`~concurrent.futures.ProcessPoolExecutor`.  All
  tasks in a batch dispatch speculatively up front; results are merged
  **in deterministic task order**, never completion order.

Order-independent merge is safe because every task is a deterministic
function of its own payload (DESIGN.md §8): the same checkpoint, the
same journal, and the same entropy salt produce bit-identical outcomes
whether executed first or last, here or in a worker.

Failure bounding: if a worker dies mid-batch (or the pool breaks), the
affected tasks transparently re-execute in-process via the very same
:func:`~repro.parallel.tasks.run_task` the workers run, the
``parallel.worker_failures`` counter records each rescued task, and the
broken pool is discarded so the next batch starts a fresh one.  A
diagnosis is never lost to a dead worker.

Simulated-time accounting lives in :func:`schedule_ns`: a batch on
``workers`` spare cores costs the busiest lane (max-over-workers), not
the sum -- the spare-core semantics the paper uses for validation
(Section 5) applied uniformly.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence

from repro.parallel.tasks import ReexecTask, TaskOutcome, run_task
from repro.vm.program import Program


def schedule_ns(times: Sequence[int], workers: int) -> int:
    """Simulated duration of a task batch on ``workers`` spare cores.

    Tasks are assigned round-robin in task order; the busiest lane
    determines the batch duration.  One worker degenerates to the
    serial sum, so serial accounting is the ``workers=1`` special case
    of the same rule.
    """
    if workers <= 1:
        return sum(times)
    lanes = [0] * workers
    for i, t in enumerate(times):
        lanes[i % workers] += t
    return max(lanes)


# ---------------------------------------------------------------------
# worker-side plumbing
# ---------------------------------------------------------------------

_WORKER_PROGRAM: Optional[Program] = None
_IN_WORKER = False


def _init_worker(program: Program) -> None:
    global _WORKER_PROGRAM, _IN_WORKER
    _WORKER_PROGRAM = program
    _IN_WORKER = True


#: How long a chaos-hung worker actually sleeps.  Short enough that a
#: discarded pool's stragglers drain quickly at interpreter exit, long
#: enough to outlive any sane task timeout.
HANG_SLEEP_S = 3.0


def _worker_run(task: ReexecTask) -> TaskOutcome:
    if task.fail_marker and _IN_WORKER:
        # Fault-injection hook: die like a crashed worker (no Python
        # teardown, no exception back over the pipe).  The guard on
        # _IN_WORKER lets the serial-fallback path run the same task
        # in-process without re-dying.
        os._exit(43)
    if task.hang_marker and _IN_WORKER:
        # Chaos hook: hang past the executor's task timeout; the
        # consumer's deadline fires and the task is rescued in-process
        # (where the marker is ignored).
        time.sleep(HANG_SLEEP_S)
    assert _WORKER_PROGRAM is not None
    return run_task(_WORKER_PROGRAM, task)


# ---------------------------------------------------------------------
# backends
# ---------------------------------------------------------------------

class _ExecutorBase:
    """Shared telemetry plumbing for both backends."""

    name = "serial"
    workers = 1

    def __init__(self, program: Program, telemetry=None):
        from repro.obs.telemetry import Telemetry
        self.program = program
        self.telemetry = telemetry or Telemetry.disabled()
        metrics = self.telemetry.metrics
        self._m_tasks = metrics.counter("parallel.tasks")
        self._m_batches = metrics.counter("parallel.batches")
        self._m_discarded = metrics.counter("parallel.tasks_discarded")
        self._m_failures = metrics.counter("parallel.worker_failures")
        #: tasks rescued in-process after a worker death
        self.worker_failures = 0

    def _note_submit(self, tasks: List[ReexecTask]) -> None:
        self._m_batches.inc()
        self._m_tasks.inc(len(tasks))
        # Zero-width per-task spans: they document the dispatch in the
        # trace without adding width, so phase_breakdown() still
        # partitions recovery time exactly.
        for task in tasks:
            with self.telemetry.span("parallel.task", label=task.label,
                                     kind=task.kind, backend=self.name):
                pass

    def note_discarded(self, count: int) -> None:
        """Speculative tasks whose results the decision path never
        consumed.  They cost spare cores, not critical-path time, so
        they only show up as a counter."""
        if count > 0:
            self._m_discarded.inc(count)

    def close(self) -> None:
        pass


class _SerialBatch:
    """Lazy in-process batch: a task executes on first request."""

    def __init__(self, program: Program, tasks: List[ReexecTask]):
        self._program = program
        self.tasks = tasks
        self._results: Dict[int, TaskOutcome] = {}

    @property
    def executed(self) -> int:
        return len(self._results)

    def result(self, index: int) -> TaskOutcome:
        out = self._results.get(index)
        if out is None:
            out = run_task(self._program, self.tasks[index])
            self._results[index] = out
        return out


class SerialExecutor(_ExecutorBase):
    """In-process backend with the same batch protocol as the fork
    backend -- the serial half of every serial-vs-parallel A/B."""

    name = "serial"
    workers = 1

    def submit(self, tasks: Sequence[ReexecTask]) -> _SerialBatch:
        tasks = list(tasks)
        self._note_submit(tasks)
        return _SerialBatch(self.program, tasks)


class _ForkBatch:
    """All tasks submitted up front; results merged by task index."""

    def __init__(self, executor: "ForkExecutor",
                 tasks: List[ReexecTask]):
        self._ex = executor
        self.tasks = tasks
        try:
            pool = executor._ensure_pool()
            self._futures: List[Optional[object]] = [
                pool.submit(_worker_run, task) for task in tasks]
        except BaseException:
            # Pool already broken at submit time: fall back wholesale.
            executor._discard_pool()
            self._futures = [None] * len(tasks)
        #: every dispatched task runs (speculation has no brake), so a
        #: batch's waste is executed - consumed.
        self.executed = len(tasks)

    def result(self, index: int) -> TaskOutcome:
        future = self._futures[index]
        if future is None:
            return self._ex._rescue(self.tasks[index])
        try:
            return future.result(timeout=self._ex.task_timeout_s)
        except FutureTimeout:
            # A hung worker: discard the pool (its stragglers drain in
            # the background) and rescue this task in-process, where
            # run_task executes the identical pure function.
            self._ex.worker_timeouts += 1
            self._ex._m_timeouts.inc()
            self._ex._discard_pool()
            self._futures[index] = None
            return self._ex._rescue(self.tasks[index])
        except (BrokenProcessPool, OSError, EOFError, CancelledError):
            # CancelledError: a prior failure in this batch discarded
            # the pool with cancel_futures=True, so later indices of
            # the same batch surface as cancelled -- rescue them the
            # same way instead of letting the cancellation escape.
            self._ex._discard_pool()
            self._futures[index] = None
            return self._ex._rescue(self.tasks[index])


class ForkExecutor(_ExecutorBase):
    """Worker-process backend."""

    name = "fork"

    def __init__(self, workers: int, program: Program, telemetry=None,
                 task_timeout_s: Optional[float] = None):
        super().__init__(program, telemetry)
        self.workers = max(1, int(workers))
        self._pool: Optional[ProcessPoolExecutor] = None
        #: Host-side deadline per task result (None waits forever).
        #: Configure via FirstAidConfig.worker_timeout_s when chaos may
        #: hang workers; a fired deadline rescues the task in-process.
        self.task_timeout_s = task_timeout_s
        #: tasks rescued in-process after a hung worker's deadline
        self.worker_timeouts = 0
        self._m_timeouts = \
            self.telemetry.metrics.counter("parallel.worker_timeouts")
        self.telemetry.metrics.gauge("parallel.workers").set(self.workers)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            methods = mp.get_all_start_methods()
            ctx = mp.get_context("fork" if "fork" in methods else None)
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=ctx,
                initializer=_init_worker, initargs=(self.program,))
        return self._pool

    def submit(self, tasks: Sequence[ReexecTask]) -> _ForkBatch:
        tasks = list(tasks)
        self._note_submit(tasks)
        return _ForkBatch(self, tasks)

    def _rescue(self, task: ReexecTask) -> TaskOutcome:
        """Serial-fallback re-execution after a worker death.  Runs the
        identical pure function the worker would have run, so the
        outcome -- and therefore the diagnosis -- is unchanged."""
        self.worker_failures += 1
        self._m_failures.inc()
        return run_task(self.program, task)

    def _discard_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __del__(self):  # pragma: no cover - interpreter-exit safety
        try:
            self.close()
        except Exception:
            pass


def make_executor(workers: int, program: Program,
                  telemetry=None,
                  task_timeout_s: Optional[float] = None
                  ) -> Optional[ForkExecutor]:
    """The runtime's backend selector: ``None`` for ``workers <= 1``
    (the engines keep their legacy live-process serial paths, which
    stay bit-compatible with the seed), a :class:`ForkExecutor`
    otherwise."""
    if workers and workers > 1:
        return ForkExecutor(workers, program, telemetry,
                            task_timeout_s=task_timeout_s)
    return None
