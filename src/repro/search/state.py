"""Session-level search configuration and caches.

One :class:`SearchState` is owned by the runtime (or constructed ad hoc
by tests) and handed to every :class:`~repro.core.diagnosis.DiagnosticEngine`
it creates, so static-analysis results are computed once per program and
bandit arm statistics persist across failures.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import ReproError
from repro.search.bandit import SearchBandit
from repro.search.pruner import ProgramFacts, analyze_program
from repro.vm.program import Program

#: ``fixed``  -- the legacy schedule, untouched (baseline / ablation).
#: ``pruned`` -- static feasibility masks + call-site arm pruning only.
#: ``bandit`` -- pruning plus bandit-shaped speculation.
SEARCH_POLICIES = ("fixed", "pruned", "bandit")


class SearchState:
    """Policy + per-program static facts + (optional) bandit."""

    def __init__(self, policy: str = "fixed", seed: int = 1):
        if policy not in SEARCH_POLICIES:
            raise ReproError(
                f"unknown search policy {policy!r}; "
                f"expected one of {SEARCH_POLICIES}")
        self.policy = policy
        self.seed = seed
        self.bandit: Optional[SearchBandit] = (
            SearchBandit(seed) if policy == "bandit" else None)
        self._facts: Dict[Tuple, ProgramFacts] = {}

    @property
    def prunes(self) -> bool:
        return self.policy != "fixed"

    @property
    def speculates(self) -> bool:
        return self.policy == "bandit"

    def facts_for(self, program: Program) -> Optional[ProgramFacts]:
        """Static facts for ``program`` (cached on its structural
        key), or ``None`` under the fixed policy -- the legacy path
        must not even run the analysis."""
        if not self.prunes:
            return None
        key = program.code_key()
        facts = self._facts.get(key)
        if facts is None:
            facts = analyze_program(program)
            self._facts[key] = facts
        return facts
