"""Search policies for the diagnostic engine (DESIGN.md §13).

The diagnostic engine's probe schedule is a search over (change-group,
call-site-partition) candidates.  This package replaces the fixed
schedule with two cooperating layers:

* :mod:`repro.search.pruner` -- a cheap static analysis over MiniC
  bytecode (def-use provenance, typestate reachability, free-operand
  validity) that rules candidate arms out *before any re-execution*:
  probes whose outcome is statically forced are skipped, and call-site
  arms whose exposure is provably unobservable never enter the binary
  search.
* :mod:`repro.search.bandit` -- a deterministic bandit (UCB1 branch
  arms over the bisection tree, counterfactual-cost wave sizing for the
  checkpoint walk) that allocates the parallel executor's speculative
  worker slots to the most promising probes.  It shapes *speculation
  only*: the consumed decision path -- and therefore the diagnosis --
  is byte-identical to the fixed schedule.

:class:`~repro.search.state.SearchState` ties both together and is
owned by the runtime so arm statistics persist across failures.
"""

from repro.search.bandit import SearchBandit
from repro.search.pruner import ProgramFacts, analyze_program
from repro.search.state import SEARCH_POLICIES, SearchState

__all__ = [
    "SEARCH_POLICIES",
    "SearchState",
    "SearchBandit",
    "ProgramFacts",
    "analyze_program",
]
