"""Deterministic bandit allocation of speculative worker slots.

The bandit shapes **speculation only** (DESIGN.md §13): which probes the
parallel executor dispatches ahead of time, and how many.  The engine's
*consumed* decision path -- which probe results it actually acts on, in
which order, under which entropy salts -- is exactly the fixed
schedule's, so the diagnosis is byte-identical by construction.  A bad
prediction costs redispatch latency, never correctness.

Two arm families:

* **Bisect arms** (UCB1).  In the call-site binary search the fixed
  schedule speculates the full BFS frontier of the decision tree
  (breadth ``2**k``); the bandit instead walks the *predicted* root-to-
  leaf path -- at each node predicting whether the failing half is the
  first or second -- and dispatches the path plus a small hedge fanout.
  Arms are keyed by ``(bug_type, min(depth, 15))``; the reward is
  "prediction matched the consumed outcome".  The prior predicts the
  first half fails, which reproduces the fixed schedule's left-first
  BFS bias until real counts accumulate.
* **Walk waves** (counterfactual cost minimization).  The phase-1b
  checkpoint walk probes checkpoints newest-first until one passes; the
  fixed schedule speculates all ``max_checkpoint_search`` candidates at
  once.  The bandit picks the first wave size minimizing the average
  *counterfactual* dispatch cost over the observed depth history (waves
  double after a miss), so fleets whose failures are caught by the
  newest checkpoint stop paying for eight-wide speculation.

All tie-breaks come from a :class:`~repro.util.rng.DeterministicRNG`
forked from the configured seed -- no wall-clock, no :mod:`random` --
and every decision is appended to :attr:`trace`, which the repeated-run
determinism test compares across sessions.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.core.bugtypes import BugType
from repro.util.rng import DeterministicRNG

#: depth bucket cap for bisect arms (deeper nodes share one arm)
_MAX_DEPTH_KEY = 15

#: UCB1 exploration coefficient (sqrt(2) is the classic choice)
_UCB_C = math.sqrt(2.0)

#: relative cost of a redispatch round-trip vs one speculated probe,
#: used by the counterfactual wave-size model (a miss costs another
#: dispatch barrier; an over-wide wave costs discarded probes)
_REDISPATCH_COST = 2.0


class _Arm:
    __slots__ = ("pulls", "wins")

    def __init__(self) -> None:
        self.pulls = 0
        self.wins = 0


class SearchBandit:
    """Deterministic UCB1 + wave-sizing state, owned by the runtime so
    statistics persist across failures within a session."""

    def __init__(self, seed: int = 1):
        self._rng = DeterministicRNG(seed).fork(0x5EA2C4)
        #: (bug_type.value, depth_bucket) -> success counts for the
        #: "first half fails" prediction
        self._bisect: Dict[Tuple[int, int], _Arm] = {}
        #: consumed-depth history of phase-1b walks (1-based depth of
        #: the first passing checkpoint; ``n`` if none passed)
        self._walk_depths: List[int] = []
        #: every decision, for the determinism test:
        #: ("bisect", key, predict_first) | ("walk", n, first_wave)
        self.trace: List[Tuple] = []
        #: mispredicted bisect nodes + walk waves that missed --
        #: speculation wasted, the bandit's (latency) regret
        self.regret = 0

    # -- bisect arms ----------------------------------------------------

    @staticmethod
    def _key(bug_type: BugType, depth: int) -> Tuple[int, int]:
        return (bug_type.value, min(depth, _MAX_DEPTH_KEY))

    def predict_first_half_fails(self, bug_type: BugType,
                                 depth: int) -> bool:
        """UCB1 pick between "first half fails" and "second half
        fails" for one bisection node."""
        key = self._key(bug_type, depth)
        arm = self._bisect.get(key)
        if arm is None or arm.pulls == 0:
            decision = True    # matches the fixed schedule's BFS bias
        else:
            mean_first = arm.wins / arm.pulls
            bonus = _UCB_C * math.sqrt(
                math.log(arm.pulls + 1) / arm.pulls)
            ucb_first = mean_first + bonus
            ucb_second = (1.0 - mean_first) + bonus
            if ucb_first > ucb_second:
                decision = True
            elif ucb_first < ucb_second:
                decision = False
            else:
                decision = bool(self._rng.next_u64() & 1)
        self.trace.append(("bisect", key, decision))
        return decision

    def observe_bisect(self, bug_type: BugType, depth: int,
                       first_half_failed: bool,
                       predicted: "bool | None") -> None:
        """Update the arm with the consumed outcome.  ``predicted`` is
        the prediction made when this node was dispatched (``None`` for
        nodes speculated without a prediction, e.g. redispatch roots):
        a mismatch is counted as regret -- that speculation was
        wasted."""
        key = self._key(bug_type, depth)
        arm = self._bisect.setdefault(key, _Arm())
        arm.pulls += 1
        if first_half_failed:
            arm.wins += 1
        if predicted is not None and predicted != first_half_failed:
            self.regret += 1

    # -- walk waves -----------------------------------------------------

    def plan_walk_waves(self, n: int, workers: int) -> List[int]:
        """Partition an ``n``-candidate newest-first walk into
        speculation waves.  The first wave size minimizes average
        counterfactual cost over the observed depth history; later
        waves double (classic doubling search keeps the worst case
        within a constant factor of the fixed schedule)."""
        if n <= 0:
            return []
        first = min(n, max(1, self._walk_guess(n)))
        self.trace.append(("walk", n, first))
        waves = [first]
        done = first
        width = first
        while done < n:
            width = min(n - done, max(1, width * 2))
            waves.append(width)
            done += width
        return waves

    def _walk_guess(self, n: int) -> int:
        history = self._walk_depths[-32:]
        if not history:
            return 1
        best_w, best_cost = 1, None
        for w in range(1, n + 1):
            cost = 0.0
            for depth in history:
                d = min(depth, n)
                waves, done, width = 0, 0, w
                dispatched = 0
                while done < d:
                    step = min(n - done, width)
                    dispatched += step
                    done += step
                    waves += 1
                    width = max(1, width * 2)
                cost += dispatched + _REDISPATCH_COST * max(0, waves - 1)
            if best_cost is None or cost < best_cost:
                best_w, best_cost = w, cost
        return best_w

    def observe_walk(self, consumed_depth: int, extra_waves: int) -> None:
        """``consumed_depth``: 1-based index of the last candidate the
        engine actually consumed; ``extra_waves``: dispatch rounds
        beyond the first (each one is paid latency the fixed schedule's
        single full-width batch would not have paid)."""
        self._walk_depths.append(max(1, consumed_depth))
        self.regret += extra_waves

    # -- diagnostics ----------------------------------------------------

    def snapshot(self) -> Dict:
        return {
            "bisect_arms": {
                f"{bt}:{d}": (a.pulls, a.wins)
                for (bt, d), a in sorted(self._bisect.items())},
            "walk_depths": list(self._walk_depths),
            "decisions": len(self.trace),
            "regret": self.regret,
        }
