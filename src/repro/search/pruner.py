"""Static pruning analysis over MiniC bytecode.

One pass over a :class:`~repro.vm.program.Program` produces a
:class:`ProgramFacts`: which bug types can possibly manifest, which
allocation/deallocation call-sites can possibly flow into a heap read,
and whether the program is statically deterministic (no reachable RAND).
The diagnostic engine uses the facts three ways, each with its own
soundness argument (DESIGN.md §13):

* **Determinism gate.**  Probe outcomes depend on the entropy salt only
  through the RAND opcode; with no RAND reachable from ``main``, every
  re-execution is a pure function of (checkpoint, policy), so probes
  whose outcome is statically forced can be skipped outright.
* **Group feasibility masks.**  A phase-2 group probe differs from the
  all-preventive probe (which already passed) only by its exposing
  changes; if no reachable instruction can *observe* the difference --
  no FREE means no dangling/double-free evidence, no heap write means
  no canary-padding corruption -- the probe's outcome is forced and the
  group is skipped.  Masks are presence-level on purpose: an
  out-of-bounds write corrupts objects the writer never aliased, so
  per-site attribution is not sound for the direct manifestation types.
* **Call-site arm pruning.**  Exposure of a call-site is observable
  only if some read may touch that site's objects (canary fill at
  allocation for uninitialized reads, canary fill at deallocation for
  dangling reads).  The provenance analysis tracks which allocation
  sites each read can alias; a read is attributed per-site only when it
  is *provably in-bounds* -- any possibly-out-of-bounds or
  integer-derived address degrades to "may read everything".

The analysis is a flow-sensitive intraprocedural abstract
interpretation (per-local provenance: allocation-site set + offset
interval + may-be-plain-integer flag) under a flow-insensitive
interprocedural fixpoint (function summaries, global-slot values, one
heap blob).  Everything is conservative: *any* imprecision degrades
toward "feasible / may be read", never toward pruning a live arm.
Programs are small (hundreds of instructions), so the fixpoint costs
far less than a single diagnostic re-execution.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.bugtypes import BugType
from repro.util.callsite import CallSite
from repro.vm import isa
from repro.vm.program import Function, Program

#: Interval saturation bound.  Saturating (not wrapping) keeps interval
#: arithmetic sound under the VM's 64-bit wrap: a wrapped concrete value
#: is congruent to the unbounded integer mod 2**64, and the boundedness
#: check only ever accepts intervals well inside [0, 2**62), where the
#: two agree exactly.
_INF = 1 << 62

#: ``sites`` sentinel: may alias *every* allocation site.
ANY = None

_WIDEN_VISITS = 64     # intra-procedural joins per pc before widening
_WIDEN_JOINS = 8       # summary/global/blob joins before widening


class _AVal:
    """Abstract value: allocation-site provenance + offset interval.

    ``sites`` is a frozenset of allocation-site ids (``ANY`` = may point
    at any site); ``raw`` means the value may be a plain integer not
    derived from any tracked pointer (using it as an address may reach
    anything).  For pure integers the interval is the value range; for
    pointers it is the offset range relative to the site base.
    """

    __slots__ = ("sites", "raw", "lo", "hi")

    def __init__(self, sites, raw: bool, lo: int, hi: int):
        self.sites = sites
        self.raw = raw
        self.lo = max(-_INF, min(_INF, lo))
        self.hi = max(-_INF, min(_INF, hi))

    def key(self) -> Tuple:
        return (self.sites, self.raw, self.lo, self.hi)

    @property
    def is_pointer(self) -> bool:
        return self.sites is ANY or bool(self.sites)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        s = "ANY" if self.sites is ANY else sorted(self.sites)
        return f"AVal(sites={s}, raw={self.raw}, [{self.lo},{self.hi}])"


def _pure(lo: int, hi: int) -> _AVal:
    return _AVal(frozenset(), True, lo, hi)


def _pure_top() -> _AVal:
    return _pure(-_INF, _INF)


def _any_val() -> _AVal:
    return _AVal(ANY, True, -_INF, _INF)


def _join(a: Optional[_AVal], b: Optional[_AVal]) -> Optional[_AVal]:
    if a is None:
        return b
    if b is None:
        return a
    sites = ANY if (a.sites is ANY or b.sites is ANY) \
        else a.sites | b.sites
    return _AVal(sites, a.raw or b.raw, min(a.lo, b.lo), max(a.hi, b.hi))


def _widened(v: _AVal) -> _AVal:
    return _AVal(v.sites, v.raw, -_INF, _INF)


class _JoinCell:
    """A join-only slot (summary param/ret, global, heap blob) that
    widens its interval after too many refinements, bounding the
    interprocedural fixpoint."""

    __slots__ = ("val", "joins")

    def __init__(self):
        self.val: Optional[_AVal] = None
        self.joins = 0

    def absorb(self, v: Optional[_AVal]) -> bool:
        if v is None:
            return False
        new = _join(self.val, v)
        if self.val is not None and new.key() == self.val.key():
            return False
        self.joins += 1
        if self.joins > _WIDEN_JOINS:
            new = _widened(new)
            if self.val is not None and new.key() == self.val.key():
                return False
        self.val = new
        return True


class _FreeFact:
    """One reachable FREE instruction's operand facts."""

    __slots__ = ("fn", "pc", "sites", "valid_single", "multi_exec")

    def __init__(self, fn: str, pc: int, sites, valid_single: bool,
                 multi_exec: bool):
        self.fn = fn
        self.pc = pc
        self.sites = sites          # frozenset of site ids, or ANY
        self.valid_single = valid_single
        self.multi_exec = multi_exec


class ProgramFacts:
    """What the static pass proved about one program.  Every query is
    conservative: "True"/"may" answers are always safe to act on as
    "cannot rule out"."""

    def __init__(self, deterministic: bool, has_malloc: bool,
                 has_free: bool, has_heap_read: bool,
                 has_heap_write: bool, read_any: bool,
                 read_sites: FrozenSet[int],
                 double_free_possible: bool,
                 site_by_addr: Dict[Tuple[str, int], int],
                 free_by_addr: Dict[Tuple[str, int], _FreeFact],
                 n_sites: int):
        #: no RAND opcode reachable from main
        self.deterministic = deterministic
        self.has_malloc = has_malloc
        self.has_free = has_free
        self.has_heap_read = has_heap_read
        self.has_heap_write = has_heap_write
        #: some read's target set could not be bounded -- every
        #: allocation site must be assumed readable
        self.read_any = read_any
        #: allocation sites provably-bounded reads may alias
        self.read_sites = read_sites
        self.double_free_possible = double_free_possible
        self._site_by_addr = site_by_addr
        self._free_by_addr = free_by_addr
        self.n_sites = n_sites

    # -- feasibility masks (presence-level; see module docstring) ------

    def feasible(self, bug_type: BugType) -> bool:
        if bug_type is BugType.BUFFER_OVERFLOW:
            return self.has_malloc and self.has_heap_write
        if bug_type is BugType.DANGLING_WRITE:
            return self.has_free and self.has_heap_write
        if bug_type is BugType.DANGLING_READ:
            return self.has_free and self.has_heap_read
        if bug_type is BugType.UNINIT_READ:
            return self.has_malloc and self.has_heap_read
        if bug_type is BugType.DOUBLE_FREE:
            return self.double_free_possible
        return True

    def group_feasible(self, group: Sequence[BugType]) -> bool:
        return any(self.feasible(b) for b in group)

    # -- call-site arm relevance ---------------------------------------

    def may_read_alloc_site(self, addr: Tuple[str, int]) -> bool:
        """Can any read observe the contents of objects allocated at
        this MALLOC instruction?"""
        if self.read_any:
            return True
        sid = self._site_by_addr.get(addr)
        if sid is None:
            return True     # not a site we analyzed: keep the arm
        return sid in self.read_sites

    def may_read_freed(self, addr: Tuple[str, int]) -> bool:
        """Can any read observe the contents of objects freed at this
        FREE instruction?"""
        if self.read_any:
            return True
        fact = self._free_by_addr.get(addr)
        if fact is None:
            return True
        if fact.sites is ANY:
            return True
        return bool(fact.sites & self.read_sites)

    def site_relevant(self, bug_type: BugType, site: CallSite) -> bool:
        """Is this call-site a live arm for ``bug_type``'s binary
        search?  The innermost frame of a call-site is the address of
        the MALLOC/FREE instruction itself."""
        if bug_type is BugType.UNINIT_READ:
            return self.may_read_alloc_site(site.innermost)
        return self.may_read_freed(site.innermost)

    def describe(self) -> str:
        reads = "ANY" if self.read_any else str(len(self.read_sites))
        return (f"deterministic={self.deterministic} "
                f"sites={self.n_sites} readable_sites={reads} "
                f"malloc={self.has_malloc} free={self.has_free} "
                f"read={self.has_heap_read} write={self.has_heap_write} "
                f"double_free={self.double_free_possible}")


# ---------------------------------------------------------------------
# the analyzer
# ---------------------------------------------------------------------

class _Analyzer:
    def __init__(self, program: Program):
        self.program = program
        self.reachable = self._reachable_functions()
        #: (fn, pc) of each reachable MALLOC -> dense site id
        self.site_ids: Dict[Tuple[str, int], int] = {}
        for fname in sorted(self.reachable):
            fn = program.functions[fname]
            for pc, instr in enumerate(fn.code):
                if instr[0] == isa.MALLOC:
                    self.site_ids[(fname, pc)] = len(self.site_ids)
        self.summaries: Dict[str, Dict] = {
            f: {"params": [_JoinCell() for _ in
                           range(program.functions[f].n_params)],
                "ret": _JoinCell()}
            for f in self.reachable}
        # Globals start at 0 in the VM, so the initial pure [0,0] is a
        # real value, not bottom.
        self.globals_env = [_JoinCell() for _ in range(program.n_globals)]
        for cell in self.globals_env:
            cell.absorb(_pure(0, 0))
        #: single heap blob: join of every value ever stored
        self.mem = _JoinCell()
        #: site id -> joined size-operand interval (lo is the provable
        #: minimum allocation size)
        self.site_size: Dict[int, Tuple[int, int]] = {}
        #: fn -> per-pc joined entry state (tuple of Optional[_AVal])
        self.states: Dict[str, List[Optional[Tuple]]] = {}
        self._visits: Dict[str, List[int]] = {}
        self._dirty = True
        self.in_cycle: Dict[str, Set[int]] = {
            f: self._cycle_pcs(program.functions[f])
            for f in self.reachable}
        self.multiplicity = self._call_multiplicity()

    # -- structure -----------------------------------------------------

    def _reachable_functions(self) -> Set[str]:
        seen = {Program.ENTRY}
        work = [Program.ENTRY]
        while work:
            fn = self.program.functions.get(work.pop())
            if fn is None:
                continue
            for instr in fn.code:
                if instr[0] == isa.CALL and instr[2] not in seen:
                    seen.add(instr[2])
                    work.append(instr[2])
        return {f for f in seen if f in self.program.functions}

    @staticmethod
    def _successor_pcs(fn: Function, pc: int) -> List[int]:
        instr = fn.code[pc]
        op = instr[0]
        if op == isa.JMP:
            return [instr[1]]
        if op in (isa.JZ, isa.JNZ):
            return [instr[2], pc + 1]
        if op in (isa.RET, isa.HALT):
            return []
        return [pc + 1] if pc + 1 < len(fn.code) else []

    def _cycle_pcs(self, fn: Function) -> Set[int]:
        """pcs that lie on an intra-procedural CFG cycle (can reach
        themselves), i.e. may execute more than once per activation."""
        n = len(fn.code)
        succs = [self._successor_pcs(fn, pc) for pc in range(n)]
        on_cycle: Set[int] = set()
        for start in range(n):
            seen = [False] * n
            work = list(succs[start])
            hit = False
            while work and not hit:
                pc = work.pop()
                if pc == start:
                    hit = True
                    break
                if seen[pc]:
                    continue
                seen[pc] = True
                work.extend(succs[pc])
            if hit:
                on_cycle.add(start)
        return on_cycle

    def _call_multiplicity(self) -> Dict[str, int]:
        """Saturating (at 2) count of possible dynamic activations per
        reachable function; recursion and in-loop calls saturate."""
        mult = {f: 0 for f in self.reachable}
        mult[Program.ENTRY] = 1
        for _ in range(len(self.reachable) + 2):
            new = {f: 0 for f in self.reachable}
            new[Program.ENTRY] = 1
            for fname in self.reachable:
                m = mult[fname]
                if m == 0:
                    continue
                fn = self.program.functions[fname]
                cycles = self.in_cycle[fname]
                for pc, instr in enumerate(fn.code):
                    if instr[0] != isa.CALL:
                        continue
                    callee = instr[2]
                    if callee not in new:
                        continue
                    contrib = 2 if (m >= 2 or pc in cycles) else 1
                    new[callee] = min(2, new[callee] + contrib)
            if new == mult:
                break
            mult = new
        return mult

    # -- interprocedural fixpoint --------------------------------------

    def run(self) -> None:
        # Bounded by the widened lattice height; the cap is a backstop.
        for _ in range(64):
            self._dirty = False
            for fname in sorted(self.reachable):
                self._run_function(fname)
            if not self._dirty:
                break

    def _entry_state(self, fname: str) -> Tuple:
        fn = self.program.functions[fname]
        summary = self.summaries[fname]
        state: List[Optional[_AVal]] = [None] * fn.n_locals
        for i in range(fn.n_params):
            state[i] = summary["params"][i].val
        for i in range(fn.n_params, fn.n_locals):
            state[i] = _pure(0, 0)    # the VM zero-initializes locals
        return tuple(state)

    def _run_function(self, fname: str) -> None:
        fn = self.program.functions[fname]
        n = len(fn.code)
        states = self.states.setdefault(fname, [None] * n)
        visits = self._visits.setdefault(fname, [0] * n)
        work: List[int] = []
        if self._join_pc(states, visits, 0, self._entry_state(fname)):
            work.append(0)
        elif states[0] is not None:
            # Entry state unchanged, but upstream summaries/globals may
            # have moved: re-walk anyway (cheap; joins are monotone and
            # stop the walk as soon as nothing changes).
            work.append(0)
        while work:
            pc = work.pop()
            st = states[pc]
            if st is None:
                continue
            out, succs = self._transfer(fname, fn, pc, st)
            for s in succs:
                if self._join_pc(states, visits, s, out):
                    work.append(s)

    @staticmethod
    def _join_pc(states, visits, pc: int, incoming: Tuple) -> bool:
        cur = states[pc]
        if cur is None:
            states[pc] = incoming
            visits[pc] += 1
            return True
        changed = False
        merged = list(cur)
        for i, (a, b) in enumerate(zip(cur, incoming)):
            j = _join(a, b)
            if (j is None) != (a is None) or \
                    (j is not None and a is not None
                     and j.key() != a.key()):
                merged[i] = j
                changed = True
        if not changed:
            return False
        visits[pc] += 1
        if visits[pc] > _WIDEN_VISITS:
            merged = [_widened(v) if v is not None else None
                      for v in merged]
        states[pc] = tuple(merged)
        return True

    # -- transfer function ---------------------------------------------

    def _transfer(self, fname: str, fn: Function, pc: int,
                  st: Tuple) -> Tuple[Tuple, List[int]]:
        instr = fn.code[pc]
        op = instr[0]
        out = list(st)
        succs = self._successor_pcs(fn, pc)

        def get(slot) -> Optional[_AVal]:
            return st[slot]

        if op == isa.CONST:
            out[instr[1]] = _pure(instr[2], instr[2])
        elif op == isa.MOV:
            out[instr[1]] = get(instr[2])
        elif op in (isa.ADD, isa.ADDI):
            a = get(instr[2])
            b = (_pure(instr[3], instr[3]) if op == isa.ADDI
                 else get(instr[3]))
            out[instr[1]] = self._add(a, b)
        elif op == isa.SUB:
            out[instr[1]] = self._sub(get(instr[2]), get(instr[3]))
        elif op in (isa.MUL, isa.DIV, isa.MOD, isa.AND, isa.OR,
                    isa.XOR, isa.SHL, isa.SHR):
            out[instr[1]] = self._mix(get(instr[2]), get(instr[3]))
        elif op in (isa.LT, isa.LE, isa.GT, isa.GE, isa.EQ, isa.NE,
                    isa.NOT):
            a = get(instr[2])
            out[instr[1]] = None if a is None else _pure(0, 1)
        elif op == isa.NEG:
            a = get(instr[2])
            if a is None:
                out[instr[1]] = None
            elif a.is_pointer:
                out[instr[1]] = _any_val()
            else:
                out[instr[1]] = _pure_top()
        elif op == isa.MALLOC:
            sid = self.site_ids[(fname, pc)]
            size = get(instr[2])
            if size is not None:
                if size.is_pointer or size.raw is False:
                    interval = (-_INF, _INF)
                else:
                    interval = (size.lo, size.hi)
                old = self.site_size.get(sid)
                if old is None:
                    self.site_size[sid] = interval
                else:
                    self.site_size[sid] = (min(old[0], interval[0]),
                                           max(old[1], interval[1]))
            out[instr[1]] = _AVal(frozenset({sid}), False, 0, 0)
        elif op == isa.LOAD:
            # Loaded values may be anything ever stored (single heap
            # blob), possibly partially (size-mangled) -- so they stay
            # flagged raw and their interval is unknown.
            blob = self.mem.val
            sites = frozenset() if blob is None else blob.sites
            out[instr[1]] = _AVal(sites, True, -_INF, _INF)
        elif op == isa.STORE:
            if self.mem.absorb(get(instr[4])):
                self._dirty = True
        elif op in (isa.IN, isa.RAND):
            out[instr[1]] = _pure_top()
        elif op == isa.GLOAD:
            out[instr[1]] = self.globals_env[instr[2]].val
        elif op == isa.GSTORE:
            if self.globals_env[instr[1]].absorb(get(instr[2])):
                self._dirty = True
        elif op == isa.CALL:
            callee = instr[2]
            summary = self.summaries.get(callee)
            if summary is None:
                return tuple(out), []
            for i, slot in enumerate(instr[3]):
                if summary["params"][i].absorb(get(slot)):
                    self._dirty = True
            ret = summary["ret"].val
            if ret is None:
                # Callee not known to return yet: the fall-through is
                # unreachable until its summary produces a value.
                return tuple(out), []
            if instr[1] is not None:
                out[instr[1]] = ret
        elif op == isa.RET:
            val = _pure(0, 0) if instr[1] is None else get(instr[1])
            if self.summaries[fname]["ret"].absorb(val):
                self._dirty = True
        # FREE/MEMSET/MEMCPY/OUT/ASSERT/NOP/HALT/JMP/JZ/JNZ: no value
        # effects tracked beyond control flow (MEMCPY copies blob to
        # blob, a no-op on the single-blob summary).
        return tuple(out), succs

    @staticmethod
    def _add(a: Optional[_AVal], b: Optional[_AVal]) -> Optional[_AVal]:
        if a is None or b is None:
            return None
        if a.is_pointer and b.is_pointer:
            return _any_val()
        if b.is_pointer:
            a, b = b, a
        lo, hi = a.lo + b.lo, a.hi + b.hi
        if a.is_pointer:
            return _AVal(a.sites, a.raw, lo, hi)
        return _pure(lo, hi)

    @staticmethod
    def _sub(a: Optional[_AVal], b: Optional[_AVal]) -> Optional[_AVal]:
        if a is None or b is None:
            return None
        if b.is_pointer:
            # ptr - ptr is a plain distance; int - ptr is laundering.
            return _pure_top() if a.is_pointer else _any_val()
        lo, hi = a.lo - b.hi, a.hi - b.lo
        if a.is_pointer:
            return _AVal(a.sites, a.raw, lo, hi)
        return _pure(lo, hi)

    @staticmethod
    def _mix(a: Optional[_AVal], b: Optional[_AVal]) -> Optional[_AVal]:
        if a is None or b is None:
            return None
        if a.is_pointer or b.is_pointer:
            return _any_val()
        return _pure_top()

    # -- fact collection (post-fixpoint) -------------------------------

    def collect(self) -> ProgramFacts:
        uses_rand = has_malloc = has_free = False
        has_read = has_write = False
        for fname in self.reachable:
            for instr in self.program.functions[fname].code:
                op = instr[0]
                if op == isa.RAND:
                    uses_rand = True
                elif op == isa.MALLOC:
                    has_malloc = True
                elif op == isa.FREE:
                    has_free = True
                elif op in (isa.LOAD,):
                    has_read = True
                elif op in (isa.STORE, isa.MEMSET):
                    has_write = True
                elif op == isa.MEMCPY:
                    has_read = has_write = True

        read_any = False
        read_sites: Set[int] = set()
        free_facts: List[_FreeFact] = []
        for fname in sorted(self.reachable):
            fn = self.program.functions[fname]
            states = self.states.get(fname, [None] * len(fn.code))
            cycles = self.in_cycle[fname]
            multi_fn = self.multiplicity.get(fname, 0) >= 2
            for pc, instr in enumerate(fn.code):
                st = states[pc] if pc < len(states) else None
                if st is None:
                    continue    # abstractly unreachable: never executes
                op = instr[0]
                if op == isa.LOAD:
                    addr = st[instr[2]]
                    sites = self._access_sites(addr, instr[3], instr[4])
                    if sites is ANY:
                        read_any = True
                    else:
                        read_sites |= sites
                elif op == isa.MEMCPY:
                    addr = st[instr[2]]
                    length = st[instr[3]]
                    len_hi = (_INF if length is None or length.is_pointer
                              else length.hi)
                    sites = self._access_sites(addr, 0, len_hi)
                    if sites is ANY:
                        read_any = True
                    else:
                        read_sites |= sites
                elif op == isa.FREE:
                    val = st[instr[1]]
                    if val is None:
                        continue
                    if val.raw or val.sites is ANY:
                        sites = ANY
                        valid = False
                    else:
                        sites = val.sites
                        valid = bool(val.sites) and val.lo == 0 \
                            and val.hi == 0
                    free_facts.append(_FreeFact(
                        fname, pc, sites, valid,
                        pc in cycles or multi_fn))

        double_free = self._double_free_possible(free_facts)
        site_by_addr = dict(self.site_ids)
        free_by_addr = {(f.fn, f.pc): f for f in free_facts}
        return ProgramFacts(
            deterministic=not uses_rand,
            has_malloc=has_malloc, has_free=has_free,
            has_heap_read=has_read, has_heap_write=has_write,
            read_any=read_any, read_sites=frozenset(read_sites),
            double_free_possible=double_free,
            site_by_addr=site_by_addr, free_by_addr=free_by_addr,
            n_sites=len(self.site_ids))

    def _access_sites(self, addr: Optional[_AVal], offset: int,
                      length_hi: int):
        """Allocation sites a memory access may observe: its provenance
        set when provably in-bounds, else ANY (an out-of-bounds or
        integer-derived access may reach any object)."""
        if addr is None:
            return frozenset()   # unreachable operand state
        if addr.raw or addr.sites is ANY or not addr.sites:
            return ANY
        if length_hi >= _INF or addr.lo + offset < 0:
            return ANY
        for sid in addr.sites:
            size = self.site_size.get(sid)
            if size is None or size[0] <= 0:
                return ANY
            if addr.hi + offset + length_hi > size[0]:
                return ANY
        return addr.sites

    @staticmethod
    def _double_free_possible(free_facts: List[_FreeFact]) -> bool:
        """A double/invalid free needs either a possibly-invalid free
        operand (non-pointer, unknown provenance, or nonzero offset --
        the extension flags frees of non-live pointers), a free that
        can execute twice, or two distinct frees that may release the
        same site's objects."""
        for fact in free_facts:
            if not fact.valid_single or fact.multi_exec:
                return True
        for i, a in enumerate(free_facts):
            for b in free_facts[i + 1:]:
                if a.sites is ANY or b.sites is ANY \
                        or (a.sites & b.sites):
                    return True
        return False


def analyze_program(program: Program) -> ProgramFacts:
    """Run the static pass and return its facts.  Deterministic and
    pure: the same :meth:`Program.code_key` always produces the same
    facts, so callers cache on that key."""
    analyzer = _Analyzer(program)
    analyzer.run()
    return analyzer.collect()
