"""Hierarchical span tracing on the simulated clock.

A :class:`Span` is a named interval of simulated time with attributes
and children.  The :class:`Tracer` keeps a stack of open spans, so
spans nest strictly (LIFO close order) and -- because the
:class:`~repro.util.simclock.SimClock` is monotonic -- siblings never
overlap and a child's interval always lies within its parent's.  Every
recovery produces a tree shaped like::

    recovery
      diagnosis
        diagnosis.iteration      (one per re-execution probe)
          rollback
          reexec
      recovery.attempt
        rollback
        reexec
      validation
        validation.run           (clone time; zero width on this clock)

which is exactly the paper's Table 5 decomposition of recovery time.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.util.simclock import SimClock


class Span:
    """One named interval of simulated time."""

    __slots__ = ("span_id", "name", "start_ns", "end_ns", "parent_id",
                 "attrs", "children")

    def __init__(self, span_id: int, name: str, start_ns: int,
                 parent_id: Optional[int] = None,
                 attrs: Optional[Dict[str, Any]] = None):
        self.span_id = span_id
        self.name = name
        self.start_ns = start_ns
        self.end_ns: Optional[int] = None
        self.parent_id = parent_id
        self.attrs: Dict[str, Any] = attrs or {}
        self.children: List["Span"] = []

    @property
    def duration_ns(self) -> int:
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    def set(self, **attrs: Any) -> None:
        """Attach attributes after creation (same no-op on null spans)."""
        self.attrs.update(attrs)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def total_ns(self, name: str) -> int:
        """Summed duration of all descendant spans named ``name``."""
        return sum(s.duration_ns for s in self.walk() if s.name == name)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "parent_id": self.parent_id,
            "attrs": dict(sorted(self.attrs.items())),
        }

    @classmethod
    def from_dict(cls, row: Dict[str, Any]) -> "Span":
        span = cls(row["span_id"], row["name"], row["start_ns"],
                   row.get("parent_id"), dict(row.get("attrs") or {}))
        span.end_ns = row.get("end_ns")
        return span

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        dur_ms = self.duration_ns / 1e6
        extra = ""
        if self.attrs:
            pairs = " ".join(f"{k}={v}" for k, v
                             in sorted(self.attrs.items()))
            extra = f"  [{pairs}]"
        lines = [f"{pad}{self.name:<24s} {dur_ms:12.3f} ms"
                 f"  @{self.start_ns / 1e9:.6f}s{extra}"]
        lines += [child.render(indent + 1) for child in self.children]
        return "\n".join(lines)


class _NullSpan:
    """Stand-in handed out by a disabled tracer."""

    __slots__ = ()
    attrs: Dict[str, Any] = {}

    def set(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Builds span trees against one simulated clock.

    ``span()`` is a context manager; the span closes at the clock's
    value on exit.  Finished root spans accumulate in :attr:`roots`.
    A disabled tracer yields a shared null span and records nothing.
    """

    def __init__(self, clock: Optional[SimClock] = None,
                 enabled: bool = True):
        self.clock = clock
        self.enabled = enabled
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 1

    def bind_clock(self, clock: SimClock) -> None:
        self.clock = clock

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attrs: Any):
        if not self.enabled or self.clock is None:
            yield _NULL_SPAN
            return
        parent = self._stack[-1] if self._stack else None
        span = Span(self._next_id, name, self.clock.now_ns,
                    parent.span_id if parent else None, attrs)
        self._next_id += 1
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span.end_ns = self.clock.now_ns
            if parent is not None:
                parent.children.append(span)
            else:
                self.roots.append(span)

    # -- views ---------------------------------------------------------

    def spans(self) -> List[Span]:
        """All finished spans, depth-first over all roots."""
        out: List[Span] = []
        for root in self.roots:
            out.extend(root.walk())
        return out

    def find_roots(self, name: str) -> List[Span]:
        return [r for r in self.roots if r.name == name]

    def render(self) -> str:
        if not self.roots:
            return "  (no spans recorded)"
        return "\n".join(root.render(indent=1) for root in self.roots)


def rebuild_tree(rows: List[Dict[str, Any]]) -> List[Span]:
    """Reassemble exported span rows (see ``export.py``) into trees;
    returns the roots in first-seen order."""
    by_id = {row["span_id"]: Span.from_dict(row) for row in rows}
    roots: List[Span] = []
    for row in rows:
        span = by_id[row["span_id"]]
        parent = by_id.get(row.get("parent_id"))
        if parent is None:
            roots.append(span)
        else:
            parent.children.append(span)
    return roots


def phase_breakdown(recovery: Span) -> Dict[str, int]:
    """Table 5 decomposition of one ``recovery`` span.

    Returns simulated-ns totals for the rollback, re-execution,
    validation, and diagnosis-analysis phases.  The analysis phase is
    the recovery time not covered by the measured leaf phases (policy
    construction, manifestation scans -- free in this cost model, so it
    is normally 0), which makes the four phases partition the recovery
    span exactly.
    """
    rollback_ns = recovery.total_ns("rollback")
    reexec_ns = recovery.total_ns("reexec")
    validation_ns = recovery.total_ns("validation")
    analysis_ns = (recovery.duration_ns - rollback_ns - reexec_ns
                   - validation_ns)
    return {
        "rollback_ns": rollback_ns,
        "reexec_ns": reexec_ns,
        "diagnosis_ns": analysis_ns,
        "validation_ns": validation_ns,
        "recovery_ns": recovery.duration_ns,
    }
