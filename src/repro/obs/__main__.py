"""CLI: run an instrumented demo (or app) and render its telemetry.

Usage::

    python -m repro.obs                      # built-in overflow demo
    python -m repro.obs --app bc             # instrument a registry app
    python -m repro.obs --jsonl out.jsonl    # also export span/metric rows
    python -m repro.obs --render out.jsonl   # re-render a prior export
    python -m repro.obs --store store.json --app bc   # + health beacon
    python -m repro.obs fleet store.json     # fleet health report

The demo runs a small buggy server under FirstAidRuntime with telemetry
enabled, survives the injected overflow, and prints the span tree, the
Table 5 phase breakdown, and the metrics snapshot.  ``--render`` never
executes anything: it loads a JSONL export and prints the same report
from it.  ``fleet`` aggregates the health channel riding next to a
shared patch store (DESIGN.md §12) into the canonical fleet health
report; ``--json`` prints it as sorted JSON instead of text.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.export import export_jsonl, load_jsonl, render_report

#: The demo program: a server whose request handler overflows a
#: 32-byte buffer whenever a request exceeds it (same shape as the
#: paper's buffer-overflow case study).
DEMO_SERVER = """
int victim = 0;
int target = 0;
int handle(int n) {
    int buf = malloc(32);
    int i = 0;
    while (i < n) { store1(buf + i, 65); i = i + 1; }
    free(buf);
    return 0;
}
int main() {
    int hole = malloc(32);
    victim = malloc(48);
    target = malloc(48);
    store(target, 0);
    store(victim, target);
    free(hole);
    while (1) {
        int op = input();
        if (op == 0) { halt(); }
        handle(op);
        int p = load(victim);
        store(p, load(p) + 1);
        output(1);
    }
}
"""


def _demo_tokens(triggers: int) -> list:
    tokens = [8] * 20
    for _ in range(triggers):
        tokens += [64] + [8] * 60
    return tokens + [0]


def _run_demo(triggers: int):
    from repro.core.runtime import FirstAidConfig, FirstAidRuntime
    from repro.lang import compile_program

    program = compile_program(DEMO_SERVER, "obs-demo")
    config = FirstAidConfig(checkpoint_interval=2000, telemetry=True)
    runtime = FirstAidRuntime(program, input_tokens=_demo_tokens(triggers),
                              config=config)
    session = runtime.run()
    return runtime, session, program.name


def _run_app(name: str, triggers: int, store: str = None):
    from repro.apps.registry import get_app
    from repro.bench.harness import spaced_workload
    from repro.core.runtime import FirstAidConfig, FirstAidRuntime

    app = get_app(name)
    wl = spaced_workload(app, triggers)
    config = FirstAidConfig(telemetry=True, store_path=store)
    runtime = FirstAidRuntime(app.program(), input_tokens=wl.tokens,
                              config=config)
    session = runtime.run()
    return runtime, session, app.INFO.name


def _fleet_main(argv) -> int:
    import json
    import os

    from repro.obs.health import aggregate_store

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs fleet",
        description="Aggregate the fleet health channel next to a "
        "shared patch store into the canonical fleet health report.")
    parser.add_argument("store", metavar="STORE",
                        help="path to the shared patch store (or its "
                        ".health sidecar)")
    parser.add_argument("--json", action="store_true",
                        help="print the report as sorted JSON instead "
                        "of text")
    args = parser.parse_args(argv)
    report = aggregate_store(args.store)
    rollout = _rollout_section(args.store)
    try:
        if args.json:
            payload = report.to_json()
            if rollout is not None:
                payload["rollout"] = rollout
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(report.render())
            if rollout is not None:
                print()
                print(_render_rollout(rollout))
    except BrokenPipeError:  # e.g. piped into `head`
        os.close(sys.stdout.fileno())
    return 0


def _rollout_section(store_arg: str):
    """Rollout stages for the patch store next to the health channel,
    or None when the store carries no rollout metadata (pre-rollout
    fleets keep their exact report output)."""
    import os

    from repro.store import SharedPatchStore

    path = store_arg[:-len(".health")] \
        if store_arg.endswith(".health") else store_arg
    if not os.path.exists(path):
        return None
    try:
        state = SharedPatchStore(path, program_name=None).load()
    except Exception:
        return None
    has_envelopes = any(isinstance(p.get("rollout"), dict)
                        for p in state.patches.values())
    if not has_envelopes and not state.rolled_back:
        return None
    stages = state.stages()
    return {
        "generation": state.generation,
        "stages": stages,
        "since_ns": {
            key: int(payload["rollout"].get("since_ns", 0))
            for key, payload in sorted(state.patches.items())
            if isinstance(payload.get("rollout"), dict)},
        "rolled_back": {
            key: {"reason": str(record.get("reason", "")),
                  "time_ns": int(record.get("time_ns", 0)),
                  "count": int(record.get("count", 0))}
            for key, record in sorted(state.rolled_back.items())},
    }


def _render_rollout(rollout: dict) -> str:
    lines = [f"rollout stages (store generation "
             f"{rollout['generation']})"]
    for key, stage in sorted(rollout["stages"].items()):
        since = rollout["since_ns"].get(key)
        suffix = f" since={since}ns" if since is not None else ""
        record = rollout["rolled_back"].get(key)
        if record and record["reason"]:
            suffix += f"  ({record['reason']})"
        lines.append(f"  {stage:<12s} {key}{suffix}")
    return "\n".join(lines)


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "fleet":
        return _fleet_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Run an instrumented First-Aid session and render "
        "its telemetry (spans, phase breakdown, metrics).")
    parser.add_argument("--app", metavar="NAME",
                        help="instrument a registry app instead of the "
                        "built-in overflow demo")
    parser.add_argument("--triggers", type=int, default=1,
                        help="number of bug triggers in the workload "
                        "(default: 1)")
    parser.add_argument("--jsonl", metavar="PATH",
                        help="export spans + metrics as JSONL to PATH")
    parser.add_argument("--render", metavar="PATH",
                        help="render a previous JSONL export instead "
                        "of running anything")
    parser.add_argument("--store", metavar="PATH",
                        help="shared patch store path: the session "
                        "publishes patches and health beacons there "
                        "(render with `python -m repro.obs fleet PATH`)")
    args = parser.parse_args(argv)

    if args.render:
        with open(args.render) as fh:
            loaded = load_jsonl(fh)
        title = loaded["meta"].get("program", args.render)
        print(render_report(loaded, title=f"telemetry: {title}"))
        return 0

    if args.app:
        runtime, session, name = _run_app(args.app, args.triggers,
                                          store=args.store)
    elif args.store:
        parser.error("--store needs --app (the demo program has no "
                     "registry identity to share a store under)")
    else:
        runtime, session, name = _run_demo(args.triggers)

    telemetry = runtime.telemetry
    now_ns = runtime.process.clock.now_ns
    print(render_report(telemetry, title=f"telemetry: {name}"))
    print()
    print(f"session: reason={session.reason} "
          f"recoveries={len(session.recoveries)} "
          f"survived_all={session.survived_all}")

    if args.jsonl:
        health = []
        if runtime.health is not None:
            health = list(
                runtime.health.load().live_beacons().values())
        with open(args.jsonl, "w") as fh:
            rows = export_jsonl(telemetry, fh, time_ns=now_ns,
                                meta={"program": name,
                                      "time_ns": now_ns,
                                      "reason": session.reason},
                                health=health)
        print(f"wrote {rows} rows to {args.jsonl}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
