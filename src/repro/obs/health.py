"""The fleet health telemetry plane (DESIGN.md §12).

First-aid's fleet-wide prevention story only works if someone can *see*
the fleet.  Every process running under
:class:`~repro.core.runtime.FirstAidRuntime` with a shared patch store
periodically publishes a :class:`HealthBeacon` -- a compact,
sim-time-stamped digest of its patch triggers, failure/recovery
counts, degradation-ladder rung distribution, and recovery-time /
request-latency histograms -- into a health channel that lives next to
the patch store and reuses the exact crash-safe machinery
(:class:`~repro.store.base.SharedStateChannel`: sidecar locking,
merge-on-write, tombstones, atomic double-written commits, corruption
quarantine).  A torn, corrupt, or stale beacon must never crash
recovery or aggregation: failures surface as ``health.error`` events
and quarantined files, mirroring ``store.error`` handling.

:class:`FleetHealthAggregator` merges any set of beacons into a
canonical :class:`FleetHealthReport`.  Determinism is load-bearing
(the benchmark gates on it): beacons carry only simulated time, every
aggregate iterates in sorted order, and duplicate beacons for one
process resolve by highest ``(seq, time_ns)`` -- so the report is
byte-identical regardless of beacon arrival order and identical
between serial and forked fleet runs.

``python -m repro.obs fleet <store>`` renders the report for a store
on disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.metrics import Histogram
from repro.store.base import SharedStateChannel
from repro.store.faults import FaultPlan as StoreFaultPlan
from repro.store.locking import DEFAULT_STALE_AFTER

BEACON_FORMAT = "first-aid-health-beacon"
BEACON_VERSION = 1

HEALTH_FORMAT = "first-aid-health-plane"
HEALTH_VERSION = 1

#: Recovery-time histogram bounds, simulated nanoseconds.  Recoveries
#: on the paper's workloads land between ~1 ms (cheap rollback) and
#: seconds (deep diagnosis or a restart with downtime).
RECOVERY_BOUNDS = (1_000_000, 10_000_000, 50_000_000, 100_000_000,
                   500_000_000, 1_000_000_000, 5_000_000_000,
                   10_000_000_000)

#: Request-latency histogram bounds, simulated nanoseconds between
#: consecutive outputs.  Normal requests cost well under 10 ms; a
#: recovery or restart in between shows up in the tail buckets.
LATENCY_BOUNDS = (100_000, 1_000_000, 10_000_000, 100_000_000,
                  1_000_000_000, 10_000_000_000)


def health_path(store_path: str) -> str:
    """The health channel file that rides next to a patch store.
    Unconditional suffixing: the old "already ends in .health" pass-
    through mapped the health channel onto the *store file itself* for
    any store that happened to end in ``.health`` (two channels, one
    file -- each would quarantine the other's commits as corruption).
    Consumers that accept a sidecar path directly (the fleet CLI)
    resolve it *before* calling this."""
    return store_path + ".health"


def _require(payload: dict, key: str):
    try:
        return payload[key]
    except KeyError as exc:
        raise ValueError(f"health beacon missing {key!r}") from exc


def _hist_payload(payload: object, name: str) -> dict:
    """Validate a histogram payload by round-tripping it through
    :class:`Histogram`; raises ``ValueError`` on garbage."""
    if not isinstance(payload, dict):
        raise ValueError(f"beacon histogram {name!r} is not a mapping")
    return Histogram.from_snapshot(name, payload).to_snapshot()


@dataclass
class HealthBeacon:
    """One process's health digest at one simulated instant."""

    process_id: str
    app: str
    #: Monotonic per-process publish counter; the merge and the
    #: aggregator keep the beacon with the highest (seq, time_ns).
    seq: int
    #: Simulated clock at publish time (never wall time: determinism).
    time_ns: int
    #: Session state: "running" for mid-session beacons, else the
    #: session exit reason ("halt" | "input" | "budget" | "died").
    reason: str = "running"
    failures: int = 0            # recoveries observed so far
    recovered: int = 0           # ... of which succeeded
    gave_up: int = 0             # ... of which exhausted every rung
    restarts: int = 0            # rung-4 restarts
    retractions: int = 0         # patches retracted after validation
    #: rung (as str, JSON keys) -> attempts that actually ran, from
    #: RecoveryRecord.rung_trail (skipped rungs excluded).
    rung_counts: Dict[str, int] = field(default_factory=dict)
    #: patch_key -> {"triggers": locally-attributed trigger count,
    #: "validated": bool, "created_time_ns": int, "diagnosed": number
    #: of local recoveries that produced this patch}.  ``triggers``
    #: counts only this process's preventive hits, never the fleet max
    #: absorbed from the store, so beacons stay deterministic under
    #: concurrent publishing.
    patches: Dict[str, dict] = field(default_factory=dict)
    #: Histogram payloads (Histogram.to_snapshot shape).
    recovery_ns: dict = field(default_factory=dict)
    latency_ns: dict = field(default_factory=dict)
    #: Rollout cohort membership (repro.rollout, DESIGN.md §14).
    #: Serialized only when True, so rollout-disabled fleets emit
    #: byte-identical beacons to the pre-rollout plane.
    canary: bool = False
    #: Sampled always-on detection counters (repro.sampling, DESIGN.md
    #: §15): rate, allocs, sampled_allocs, sampled_frees, detections,
    #: suppressed, guard_scans, first_detection_ns, prevented.
    #: Serialized only when non-empty, so pre-sampling beacons stay
    #: byte-identical.
    sampling: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.recovery_ns:
            self.recovery_ns = _empty_hist("recovery_ns",
                                           RECOVERY_BOUNDS)
        if not self.latency_ns:
            self.latency_ns = _empty_hist("latency_ns", LATENCY_BOUNDS)

    def to_json(self) -> dict:
        payload = {
            "format": BEACON_FORMAT,
            "version": BEACON_VERSION,
            "process_id": self.process_id,
            "app": self.app,
            "seq": self.seq,
            "time_ns": self.time_ns,
            "reason": self.reason,
            "failures": self.failures,
            "recovered": self.recovered,
            "gave_up": self.gave_up,
            "restarts": self.restarts,
            "retractions": self.retractions,
            "rung_counts": dict(sorted(self.rung_counts.items())),
            "patches": {k: dict(v) for k, v
                        in sorted(self.patches.items())},
            "recovery_ns": self.recovery_ns,
            "latency_ns": self.latency_ns,
        }
        if self.canary:
            payload["canary"] = True
        if self.sampling:
            payload["sampling"] = {k: self.sampling[k]
                                   for k in sorted(self.sampling)}
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "HealthBeacon":
        """Parse one beacon payload; anything malformed -- wrong
        format, future version, missing fields, scrambled histograms --
        raises ``ValueError`` (the aggregator and channel catch it and
        degrade, never crash)."""
        if not isinstance(payload, dict):
            raise ValueError("health beacon is not a mapping")
        if payload.get("format") != BEACON_FORMAT:
            raise ValueError(f"not a health beacon: "
                             f"format={payload.get('format')!r}")
        if int(payload.get("version", 0)) > BEACON_VERSION:
            raise ValueError(
                f"health beacon version {payload.get('version')} is "
                f"newer than supported {BEACON_VERSION}")
        try:
            return cls(
                process_id=str(_require(payload, "process_id")),
                app=str(_require(payload, "app")),
                seq=int(_require(payload, "seq")),
                time_ns=int(_require(payload, "time_ns")),
                reason=str(payload.get("reason", "running")),
                failures=int(payload.get("failures", 0)),
                recovered=int(payload.get("recovered", 0)),
                gave_up=int(payload.get("gave_up", 0)),
                restarts=int(payload.get("restarts", 0)),
                retractions=int(payload.get("retractions", 0)),
                rung_counts={str(k): int(v) for k, v in
                             dict(payload.get("rung_counts", {})).items()},
                patches={str(k): dict(v) for k, v in
                         dict(payload.get("patches", {})).items()},
                recovery_ns=_hist_payload(
                    payload.get("recovery_ns", _empty_hist(
                        "recovery_ns", RECOVERY_BOUNDS)), "recovery_ns"),
                latency_ns=_hist_payload(
                    payload.get("latency_ns", _empty_hist(
                        "latency_ns", LATENCY_BOUNDS)), "latency_ns"),
                canary=bool(payload.get("canary", False)),
                sampling={str(k): int(v) for k, v in
                          dict(payload.get("sampling", {})).items()},
            )
        except (TypeError, KeyError) as exc:
            raise ValueError(f"malformed health beacon: {exc!r}") from exc

    @property
    def survived(self) -> bool:
        return self.gave_up == 0 and self.reason != "died"

    @property
    def triggers_total(self) -> int:
        return sum(int(p.get("triggers", 0))
                   for p in self.patches.values())


def _empty_hist(name: str, bounds: Tuple[int, ...]) -> dict:
    return Histogram(name, bounds).to_snapshot()


# ---------------------------------------------------------------------
# the shared health channel
# ---------------------------------------------------------------------

class HealthFaultPlan(StoreFaultPlan):
    """Armed faults for the health channel.  The file-level kinds
    (``torn_write`` / ``stale_lock`` / ``corrupt``) reuse the store's
    effects through the shared :class:`repro.chaos.plan.FaultPlan`
    protocol; ``stale_beacon`` is health-specific: the next publish
    lands a stale snapshot (seq and time rolled back to 0), modelling a
    delayed write reordered onto disk -- merge and aggregation must
    shrug it off by (seq, time_ns) precedence."""

    KINDS = ("torn_write", "stale_lock", "corrupt", "stale_beacon")


@dataclass
class HealthState:
    """The health channel's committed state: latest beacon payload per
    process, plus tombstones for retired processes."""

    program: str
    generation: int = 0
    #: process_id -> HealthBeacon.to_json() payload (possibly corrupt;
    #: consumers parse defensively).
    beacons: Dict[str, dict] = field(default_factory=dict)
    #: process_id -> generation at which the process was retired.
    retired: Dict[str, int] = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "format": HEALTH_FORMAT,
            "version": HEALTH_VERSION,
            "program": self.program,
            "generation": self.generation,
            "beacons": self.beacons,
            "retired": self.retired,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "HealthState":
        if payload.get("format") != HEALTH_FORMAT:
            raise ValueError(f"not a health plane: "
                             f"format={payload.get('format')!r}")
        if int(payload.get("version", 0)) > HEALTH_VERSION:
            raise ValueError(
                f"health plane version {payload.get('version')} is "
                f"newer than supported {HEALTH_VERSION}")
        return cls(
            program=str(payload["program"]),
            generation=int(payload["generation"]),
            beacons={str(k): v for k, v
                     in dict(payload["beacons"]).items()},
            retired={str(k): int(v)
                     for k, v in dict(payload["retired"]).items()},
        )

    def live_beacons(self) -> Dict[str, dict]:
        return {pid: payload for pid, payload in self.beacons.items()
                if pid not in self.retired}


class HealthChannel(SharedStateChannel):
    """The crash-safe shared health file for one program's fleet.

    ``program_name`` of None reads whatever program the file belongs
    to (the CLI's mode); publishers always name their program."""

    def __init__(self, path: str, program_name: Optional[str],
                 lock_timeout: float = 5.0,
                 stale_lock_after: float = DEFAULT_STALE_AFTER,
                 faults: Optional[StoreFaultPlan] = None):
        super().__init__(path, program_name,
                         lock_timeout=lock_timeout,
                         stale_lock_after=stale_lock_after,
                         faults=faults)
        self.publishes = 0
        self.retirements = 0

    def _empty_state(self) -> HealthState:
        return HealthState(self.program_name or "")

    def _parse(self, payload: dict) -> HealthState:
        return HealthState.from_json(payload)

    # ------------------------------------------------------------------

    @staticmethod
    def _precedence(payload: object) -> Tuple[int, int]:
        """Merge precedence of a committed payload; unparsable entries
        rank lowest so a fresh beacon always replaces garbage."""
        if not isinstance(payload, dict):
            return (-1, -1)
        try:
            return (int(payload.get("seq", -1)),
                    int(payload.get("time_ns", -1)))
        except (TypeError, ValueError):
            return (-1, -1)

    def publish(self, beacon: HealthBeacon) -> HealthState:
        """Merge one beacon into the channel.  Keyed by process id;
        the higher ``(seq, time_ns)`` wins, so delayed or replayed
        publishes never roll a process's health backwards.  Publishing
        clears the process's tombstone (it is demonstrably alive)."""
        payload = beacon.to_json()
        if self.faults.take("stale_beacon"):
            payload = dict(payload, seq=0, time_ns=0)
        pid = beacon.process_id

        def merge(state: HealthState) -> HealthState:
            state.retired.pop(pid, None)
            current = state.beacons.get(pid)
            if current is None or (self._precedence(payload)
                                   >= self._precedence(current)):
                state.beacons[pid] = payload
            return state

        state = self._mutate(merge)
        self.publishes += 1
        return state

    def retire(self, process_ids: Iterable[str]) -> HealthState:
        """Drop processes from the fleet view and tombstone them, so a
        stale replayed beacon cannot resurrect a decommissioned
        process.  A later publish (the process came back) clears the
        tombstone."""
        pids = list(process_ids)

        def remove(state: HealthState) -> HealthState:
            for pid in pids:
                state.beacons.pop(pid, None)
                state.retired[pid] = state.generation + 1
            return state

        state = self._mutate(remove)
        self.retirements += 1
        return state


# ---------------------------------------------------------------------
# fleet aggregation
# ---------------------------------------------------------------------

@dataclass
class FleetHealthReport:
    """The canonical fleet health digest.  ``to_json()`` (dumped with
    ``sort_keys=True``) and ``render()`` are byte-identical regardless
    of the order beacons were added in."""

    program: str
    processes: List[dict]
    patches: List[dict]
    fleet: dict
    beacon_errors: int

    def to_json(self) -> dict:
        return {
            "program": self.program,
            "processes": self.processes,
            "patches": self.patches,
            "fleet": self.fleet,
            "beacon_errors": self.beacon_errors,
        }

    def render(self) -> str:
        out = [f"== fleet health: {self.program or '(no beacons)'} =="]
        fleet = self.fleet
        out.append(
            f"  processes={fleet.get('processes', 0)} "
            f"survived={fleet.get('survived', 0)} "
            f"failures={fleet.get('failures', 0)} "
            f"recovered={fleet.get('recovered', 0)} "
            f"restarts={fleet.get('restarts', 0)} "
            f"retractions={fleet.get('retractions', 0)} "
            f"beacon_errors={self.beacon_errors}")
        rungs = fleet.get("rung_counts") or {}
        if rungs:
            mix = " ".join(f"{r}:{n}" for r, n in sorted(rungs.items()))
            out.append(f"  rung mix: {mix}")
        sampling = fleet.get("sampling")
        if sampling:
            out.append(
                f"  sampling: detections={sampling['detections']} "
                f"prevented={sampling['prevented']} "
                f"suppressed={sampling['suppressed']} "
                f"guarded={sampling['sampled_allocs']}"
                f"/{sampling['allocs']} "
                f"(effective rate {sampling['effective_rate']:.4f} "
                f"across {sampling['processes']} processes)")
        for label, key in (("recovery", "recovery_ns"),
                           ("latency", "latency_ns")):
            q = fleet.get(key) or {}
            if q.get("total"):
                out.append(
                    f"  {label} p50={q['p50'] / 1e6:.1f}ms "
                    f"p95={q['p95'] / 1e6:.1f}ms "
                    f"p99={q['p99'] / 1e6:.1f}ms "
                    f"(n={q['total']})")
        out.append("")
        out.append("per-process:")
        if not self.processes:
            out.append("  (none)")
        for row in self.processes:
            rungs = " ".join(f"{r}:{n}" for r, n
                             in sorted((row["rung_counts"] or {}).items()))
            rec = row["recovery_ns"]
            canary = " [canary]" if row.get("canary") else ""
            out.append(
                f"  {row['process_id']:<16s}{canary} "
                f"reason={row['reason']:<8s} "
                f"failures={row['failures']} "
                f"recovered={row['recovered']} "
                f"restarts={row['restarts']} "
                f"triggers={row['triggers']} "
                f"rungs=[{rungs}] "
                f"recovery_p95={rec['p95'] / 1e6:.1f}ms")
        out.append("")
        out.append("per-patch:")
        if not self.patches:
            out.append("  (none)")
        for row in self.patches:
            out.append(
                f"  {row['key']}")
            out.append(
                f"    triggers={row['triggers_total']} "
                f"processes={row['processes']} "
                f"validated={row['validated']} "
                f"diagnosed_in={row['diagnosed_in']} "
                f"prevented_in={row['prevented_in']} "
                f"post_patch_failure_rate="
                f"{row['post_patch_failure_rate']:.2f} "
                f"time_to_first_patch="
                f"{row['time_to_first_patch_ns'] / 1e6:.1f}ms")
        return "\n".join(out)


class FleetHealthAggregator:
    """Merges beacons (objects, payload dicts, or whole channel
    states) into one canonical fleet report.

    Arrival order never matters: duplicate process ids resolve by
    highest ``(seq, time_ns)``, and every derived structure is built in
    sorted order.  Unparsable payloads are counted (and surfaced as
    ``health.error`` events when an event log is attached), never
    raised."""

    def __init__(self, events=None):
        self._beacons: Dict[str, HealthBeacon] = {}
        self.errors = 0
        self.events = events

    # -- feeding ------------------------------------------------------

    def _error(self, op: str, detail: str) -> None:
        self.errors += 1
        if self.events is not None:
            self.events.emit(0, "health.error", op=op, error=detail)

    def add(self, beacon: HealthBeacon) -> bool:
        current = self._beacons.get(beacon.process_id)
        if current is not None and (current.seq, current.time_ns) \
                > (beacon.seq, beacon.time_ns):
            return False
        self._beacons[beacon.process_id] = beacon
        return True

    def add_payload(self, payload: object) -> bool:
        try:
            beacon = HealthBeacon.from_json(payload)  # type: ignore
        except ValueError as exc:
            self._error("parse", str(exc))
            return False
        return self.add(beacon)

    def add_state(self, state: HealthState) -> int:
        """Feed every live (non-retired) beacon of a channel state;
        returns how many parsed and were kept."""
        added = 0
        for _, payload in sorted(state.live_beacons().items()):
            if self.add_payload(payload):
                added += 1
        return added

    def beacons(self) -> List[HealthBeacon]:
        return [self._beacons[pid] for pid in sorted(self._beacons)]

    # -- the report ---------------------------------------------------

    def _merged_hist(self, attr: str, name: str,
                     bounds: Tuple[int, ...]) -> dict:
        merged = Histogram(name, bounds)
        for beacon in self.beacons():
            try:
                merged.merge_from(
                    Histogram.from_snapshot(name, getattr(beacon, attr)))
            except ValueError as exc:
                self._error("merge", f"{beacon.process_id}: {exc}")
        return merged.to_snapshot()

    def report(self) -> FleetHealthReport:
        beacons = self.beacons()
        program = sorted({b.app for b in beacons})[0] if beacons else ""

        processes = []
        for b in beacons:
            processes.append({
                "process_id": b.process_id,
                "app": b.app,
                "seq": b.seq,
                "time_ns": b.time_ns,
                "canary": b.canary,
                "reason": b.reason,
                "survived": b.survived,
                "failures": b.failures,
                "recovered": b.recovered,
                "gave_up": b.gave_up,
                "restarts": b.restarts,
                "retractions": b.retractions,
                "rung_counts": dict(sorted(b.rung_counts.items())),
                "triggers": b.triggers_total,
                "recovery_ns": _hist_payload(b.recovery_ns,
                                             "recovery_ns"),
                "latency_ns": _hist_payload(b.latency_ns, "latency_ns"),
            })
            if b.sampling:
                # Present only when the beacon carries the sampling
                # plane, so pre-sampling reports stay byte-identical.
                processes[-1]["sampling"] = {k: b.sampling[k]
                                             for k in sorted(b.sampling)}

        keys = sorted({k for b in beacons for k in b.patches})
        patches = []
        for key in keys:
            rows = [(b, b.patches[key]) for b in beacons
                    if key in b.patches]
            diagnosed_total = sum(int(p.get("diagnosed", 0))
                                  for _, p in rows)
            first = [int(p.get("created_time_ns", 0)) for _, p in rows
                     if int(p.get("diagnosed", 0)) > 0
                     and int(p.get("created_time_ns", 0)) > 0]
            if not first:
                first = [int(p.get("created_time_ns", 0))
                         for _, p in rows
                         if int(p.get("created_time_ns", 0)) > 0]
            post_patch_failures = max(0, diagnosed_total - 1)
            patches.append({
                "key": key,
                "triggers_total": sum(int(p.get("triggers", 0))
                                      for _, p in rows),
                "processes": len(rows),
                "validated": any(bool(p.get("validated", False))
                                 for _, p in rows),
                "diagnosed_in": sum(1 for _, p in rows
                                    if int(p.get("diagnosed", 0)) > 0),
                "prevented_in": sum(
                    1 for _, p in rows
                    if int(p.get("triggers", 0)) > 0
                    and int(p.get("diagnosed", 0)) == 0),
                "post_patch_failures": post_patch_failures,
                "post_patch_failure_rate": (post_patch_failures
                                            / len(rows) if rows else 0.0),
                "time_to_first_patch_ns": min(first) if first else 0,
            })

        rung_counts: Dict[str, int] = {}
        for b in beacons:
            for rung, n in b.rung_counts.items():
                rung_counts[rung] = rung_counts.get(rung, 0) + n
        fleet = {
            "processes": len(beacons),
            "survived": sum(1 for b in beacons if b.survived),
            "failures": sum(b.failures for b in beacons),
            "recovered": sum(b.recovered for b in beacons),
            "gave_up": sum(b.gave_up for b in beacons),
            "restarts": sum(b.restarts for b in beacons),
            "retractions": sum(b.retractions for b in beacons),
            "rung_counts": dict(sorted(rung_counts.items())),
            "recovery_ns": self._merged_hist("recovery_ns",
                                             "recovery_ns",
                                             RECOVERY_BOUNDS),
            "latency_ns": self._merged_hist("latency_ns", "latency_ns",
                                            LATENCY_BOUNDS),
        }
        sampled = [b for b in beacons if b.sampling]
        if sampled:
            # The sampling aggregate exists only when at least one
            # beacon carries it; sampling-free fleets render and
            # serialize byte-identically to the pre-sampling plane.
            allocs = sum(int(b.sampling.get("allocs", 0))
                         for b in sampled)
            sampled_allocs = sum(int(b.sampling.get("sampled_allocs", 0))
                                 for b in sampled)
            fleet["sampling"] = {
                "processes": len(sampled),
                "allocs": allocs,
                "sampled_allocs": sampled_allocs,
                "effective_rate": (sampled_allocs / allocs
                                   if allocs else 0.0),
                "detections": sum(int(b.sampling.get("detections", 0))
                                  for b in sampled),
                "prevented": sum(int(b.sampling.get("prevented", 0))
                                 for b in sampled),
                "suppressed": sum(int(b.sampling.get("suppressed", 0))
                                  for b in sampled),
            }
        return FleetHealthReport(program=program, processes=processes,
                                 patches=patches, fleet=fleet,
                                 beacon_errors=self.errors)


def aggregate_store(store_path: str,
                    events=None) -> FleetHealthReport:
    """Load the health channel riding next to ``store_path`` and
    aggregate it into a report (the CLI's path).  A path that already
    names a ``.health`` sidecar is used as the channel directly
    (``health_path`` itself never pass-throughs: appending
    unconditionally is what keeps a store named ``*.health`` from
    aliasing its own sidecar).  Corruption is quarantined by the
    channel; a missing file yields an empty report."""
    path = store_path if store_path.endswith(".health") \
        else health_path(store_path)
    channel = HealthChannel(path, program_name=None)
    aggregator = FleetHealthAggregator(events=events)
    aggregator.add_state(channel.load())
    return aggregator.report()
