"""The Telemetry facade: one object components accept.

Bundles a :class:`~repro.obs.metrics.MetricsRegistry`, a
:class:`~repro.obs.tracing.Tracer`, and a
:class:`~repro.obs.recorder.FlightRecorder` behind a single ``enabled``
flag.  Components receive a ``Telemetry`` (or None) and attach their
instruments once at construction; when disabled, the registry hands out
no instruments and the tracer yields null spans, so no per-operation
cost is added anywhere.

The facade is deliberately clock-late-bound: the runtime builds its
process first, then calls :meth:`bind_clock` so spans are stamped with
that process's simulated clock.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FlightRecorder
from repro.obs.tracing import Tracer
from repro.util.simclock import SimClock


class Telemetry:
    """Metrics + tracing + flight recorder, enabled or disabled as one."""

    def __init__(self, clock: Optional[SimClock] = None,
                 enabled: bool = True,
                 event_capacity: int = 256,
                 mm_capacity: int = 256):
        self.enabled = enabled
        self.metrics = MetricsRegistry(enabled=enabled)
        self.tracer = Tracer(clock, enabled=enabled)
        self.recorder = FlightRecorder(event_capacity=event_capacity,
                                       mm_capacity=mm_capacity,
                                       enabled=enabled)

    @classmethod
    def disabled(cls) -> "Telemetry":
        return cls(enabled=False)

    def bind_clock(self, clock: SimClock) -> None:
        self.tracer.bind_clock(clock)

    # -- convenience passthroughs -------------------------------------

    def span(self, name: str, **attrs):
        return self.tracer.span(name, **attrs)

    def snapshot(self, time_ns: Optional[int] = None):
        return self.metrics.snapshot(time_ns)
