"""Bounded flight recorder.

A production process cannot afford to keep its whole history around on
the off chance of a crash; it keeps *recent* history in fixed-size ring
buffers and dumps them when something goes wrong (the black-box /
flight-recorder pattern; GWP-ASan keeps exactly such bounded
allocation-site rings).  This module provides that for First-Aid:

* recent structured :class:`~repro.util.events.Event` records,
* the last N allocation/deallocation records, and
* the last N traced illegal accesses,

each in a ``deque(maxlen=...)``.  At failure time the runtime calls
:meth:`FlightRecorder.snapshot` and attaches the frozen
:class:`FlightRecording` to the bug report -- replacing the previous
practice of attaching unbounded traces.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from repro.util.events import Event

#: Default ring capacities, sized so a dump stays readable.
DEFAULT_EVENT_CAPACITY = 256
DEFAULT_MM_CAPACITY = 256
DEFAULT_ACCESS_CAPACITY = 128


@dataclass(frozen=True)
class MMRecord:
    """One allocation/deallocation, as the flight recorder keeps it."""

    time_ns: int
    op: str                     # "malloc" | "free"
    user_addr: int
    size: int
    site: Optional[str]         # innermost call-site function, if known
    patch_id: Optional[int]

    def render(self) -> str:
        site = f" @{self.site}" if self.site else ""
        patch = f" (patch {self.patch_id})" if self.patch_id is not None \
            else ""
        if self.op == "malloc":
            return (f"[{self.time_ns / 1e9:10.6f}s] malloc({self.size})"
                    f" = 0x{self.user_addr:x}{site}{patch}")
        return (f"[{self.time_ns / 1e9:10.6f}s] free(0x{self.user_addr:x})"
                f"{site}{patch}")


@dataclass(frozen=True)
class AccessRecord:
    """One traced illegal access, bounded-history form."""

    time_ns: int
    kind: str
    instr: str                  # "function:pc"
    offset: int
    is_write: bool

    def render(self) -> str:
        rw = "write" if self.is_write else "read"
        return (f"[{self.time_ns / 1e9:10.6f}s] {self.kind} {rw} "
                f"at {self.instr} offset {self.offset}")


@dataclass
class FlightRecording:
    """Frozen dump of the recorder's rings at one instant."""

    time_ns: int
    events: List[Event] = field(default_factory=list)
    mm_records: List[MMRecord] = field(default_factory=list)
    accesses: List[AccessRecord] = field(default_factory=list)
    events_dropped: int = 0
    mm_dropped: int = 0

    def render(self, limit: int = 40) -> str:
        out: List[str] = []
        dropped = (f" ({self.events_dropped} older dropped)"
                   if self.events_dropped else "")
        out.append(f"  last {len(self.events)} event(s){dropped}:")
        out += [f"    {e.render()}" for e in self.events[-limit:]]
        dropped = (f" ({self.mm_dropped} older dropped)"
                   if self.mm_dropped else "")
        out.append(f"  last {len(self.mm_records)} "
                   f"allocation record(s){dropped}:")
        out += [f"    {r.render()}" for r in self.mm_records[-limit:]]
        if self.accesses:
            out.append(f"  last {len(self.accesses)} illegal access(es):")
            out += [f"    {a.render()}" for a in self.accesses[-limit:]]
        return "\n".join(out)


class FlightRecorder:
    """Fixed-capacity rings of recent events and memory operations."""

    def __init__(self,
                 event_capacity: int = DEFAULT_EVENT_CAPACITY,
                 mm_capacity: int = DEFAULT_MM_CAPACITY,
                 access_capacity: int = DEFAULT_ACCESS_CAPACITY,
                 enabled: bool = True):
        self.enabled = enabled
        self.event_capacity = event_capacity
        self.mm_capacity = mm_capacity
        self.access_capacity = access_capacity
        self._events: Deque[Event] = deque(maxlen=event_capacity)
        self._mm: Deque[MMRecord] = deque(maxlen=mm_capacity)
        self._accesses: Deque[AccessRecord] = deque(maxlen=access_capacity)
        self.events_seen = 0
        self.mm_seen = 0

    # -- feeds ---------------------------------------------------------

    def record_event(self, event: Event) -> None:
        self.events_seen += 1
        self._events.append(event)

    def record_mm(self, time_ns: int, op: str, user_addr: int, size: int,
                  site: Optional[str], patch_id: Optional[int]) -> None:
        self.mm_seen += 1
        self._mm.append(MMRecord(time_ns, op, user_addr, size, site,
                                 patch_id))

    def record_access(self, time_ns: int, kind: str, instr: str,
                      offset: int, is_write: bool) -> None:
        self._accesses.append(AccessRecord(time_ns, kind, instr,
                                           offset, is_write))

    # -- dumping -------------------------------------------------------

    def snapshot(self, time_ns: int) -> FlightRecording:
        return FlightRecording(
            time_ns=time_ns,
            events=list(self._events),
            mm_records=list(self._mm),
            accesses=list(self._accesses),
            events_dropped=max(0, self.events_seen - len(self._events)),
            mm_dropped=max(0, self.mm_seen - len(self._mm)),
        )

    def clear(self) -> None:
        self._events.clear()
        self._mm.clear()
        self._accesses.clear()
        self.events_seen = 0
        self.mm_seen = 0
