"""First-Aid's telemetry subsystem.

Production memory-safety tooling lives or dies by cheap always-on
telemetry; the paper's whole evaluation (Tables 5-8) is a quantitative
breakdown of where recovery time and checkpoint traffic go.  This
package provides that observability surface as three cooperating
pieces, all stamped with *simulated* time so results are deterministic
across replays:

* :class:`~repro.obs.metrics.MetricsRegistry` -- counters, gauges, and
  fixed-bucket histograms registered by the VM, the allocator
  extension, the checkpoint manager, and the diagnosis/validation
  engines.
* :class:`~repro.obs.tracing.Tracer` -- hierarchical spans
  (``recovery`` -> ``rollback`` / ``reexec`` / ``diagnosis.iteration``
  / ``validation.run``) on the :class:`~repro.util.simclock.SimClock`,
  so every recovery yields a parseable phase breakdown mirroring the
  paper's Table 5 decomposition.
* :class:`~repro.obs.recorder.FlightRecorder` -- bounded ring buffers
  over recent events and allocation/access records, dumped into bug
  reports at failure time.

The :class:`~repro.obs.telemetry.Telemetry` facade bundles the three
and is what components accept.  Telemetry is off-by-default-cheap: a
disabled facade hands out no instruments, so the VM hot path performs
no extra Python calls.

``python -m repro.obs`` runs a demo fault-injection recovery and
renders the span tree, phase breakdown, and metrics snapshot; see
``--help``.
"""

from repro.obs.health import (
    FleetHealthAggregator,
    FleetHealthReport,
    HealthBeacon,
    HealthChannel,
    HealthFaultPlan,
    HealthState,
    aggregate_store,
    health_path,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
)
from repro.obs.recorder import FlightRecorder, FlightRecording
from repro.obs.telemetry import Telemetry
from repro.obs.tracing import Span, Tracer

__all__ = [
    "Counter",
    "FleetHealthAggregator",
    "FleetHealthReport",
    "Gauge",
    "HealthBeacon",
    "HealthChannel",
    "HealthFaultPlan",
    "HealthState",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "FlightRecorder",
    "FlightRecording",
    "Span",
    "Telemetry",
    "Tracer",
    "aggregate_store",
    "health_path",
]
