"""JSONL export/import and the text report.

The export format is line-delimited JSON with a ``type`` field per
row::

    {"type": "meta", "program": ..., "time_ns": ...}
    {"type": "span", "span_id": 1, "name": "recovery", ...}
    {"type": "metrics", "time_ns": ..., "counters": {...}, ...}

Rows carry only simulated time, so exporting the same run twice yields
byte-identical files.  ``render_report`` turns a telemetry object (or a
loaded export) back into the human-readable report the
``python -m repro.obs`` CLI prints: the span tree, the Table 5 phase
breakdown per recovery, and the metrics snapshot.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, List, Optional, Union

from repro.obs.telemetry import Telemetry
from repro.obs.tracing import Span, phase_breakdown, rebuild_tree


def export_jsonl(telemetry: Telemetry, fh: IO[str],
                 time_ns: Optional[int] = None,
                 meta: Optional[Dict[str, Any]] = None,
                 health: Optional[List[Any]] = None) -> int:
    """Write spans + a metrics snapshot (+ optional health beacons) as
    JSONL; returns rows written.  ``health`` items are either
    :class:`~repro.obs.health.HealthBeacon` objects or their
    ``to_json()`` payloads; rows are written in canonical (process id,
    seq) order so exporting the same fleet twice is byte-identical."""
    rows = 0
    if meta:
        fh.write(json.dumps({"type": "meta", **meta}, sort_keys=True)
                 + "\n")
        rows += 1
    for span in telemetry.tracer.spans():
        fh.write(json.dumps({"type": "span", **span.to_dict()},
                            sort_keys=True) + "\n")
        rows += 1
    fh.write(json.dumps({"type": "metrics",
                         **telemetry.metrics.snapshot(time_ns)},
                        sort_keys=True) + "\n")
    rows += 1
    if health:
        payloads = [b.to_json() if hasattr(b, "to_json") else dict(b)
                    for b in health]
        payloads.sort(key=lambda p: (str(p.get("process_id", "")),
                                     int(p.get("seq", 0))))
        for payload in payloads:
            fh.write(json.dumps({"type": "health", **payload},
                                sort_keys=True) + "\n")
            rows += 1
    return rows


def load_jsonl(fh: IO[str]) -> Dict[str, Any]:
    """Parse an export back into ``{"meta", "roots", "metrics",
    "health"}``."""
    meta: Dict[str, Any] = {}
    span_rows: List[Dict[str, Any]] = []
    metrics: Dict[str, Any] = {}
    health: List[Dict[str, Any]] = []
    for line in fh:
        line = line.strip()
        if not line:
            continue
        row = json.loads(line)
        kind = row.pop("type", None)
        if kind == "meta":
            meta = row
        elif kind == "span":
            span_rows.append(row)
        elif kind == "metrics":
            metrics = row
        elif kind == "health":
            health.append(row)
    return {"meta": meta, "roots": rebuild_tree(span_rows),
            "metrics": metrics, "health": health}


# ---------------------------------------------------------------------
# text report
# ---------------------------------------------------------------------

def _render_phase_table(recoveries: List[Span]) -> List[str]:
    out: List[str] = []
    for i, recovery in enumerate(recoveries):
        phases = phase_breakdown(recovery)
        total = phases["recovery_ns"]
        out.append(f"  recovery #{i}: {total / 1e9:.3f} s total")
        for key, label in (("rollback_ns", "rollback"),
                           ("reexec_ns", "re-execution"),
                           ("diagnosis_ns", "diagnosis (analysis)"),
                           ("validation_ns", "validation (on-clock)")):
            ns = phases[key]
            share = 100.0 * ns / total if total else 0.0
            out.append(f"    {label:<22s} {ns / 1e9:9.3f} s  "
                       f"({share:5.1f}%)")
        clone_ns = sum(int(s.attrs.get("clone_time_ns", 0))
                       for s in recovery.walk()
                       if s.name == "validation.run")
        if clone_ns:
            out.append(f"    {'validation (off-path)':<22s} "
                       f"{clone_ns / 1e9:9.3f} s  (clone clock)")
        for span in recovery.walk():
            # Search-policy accounting rides on the diagnosis span
            # (repro.search): how many probes ran vs. were statically
            # pruned away, next to the phase costs they would have
            # added to.
            if span.name == "diagnosis" and "search_policy" in span.attrs:
                out.append(
                    f"    {'search':<22s} "
                    f"policy={span.attrs['search_policy']} "
                    f"executed={span.attrs.get('probes_executed', 0)} "
                    f"consumed={span.attrs.get('probes_consumed', 0)} "
                    f"pruned={span.attrs.get('probes_pruned', 0)} "
                    f"arms_pruned={span.attrs.get('arms_pruned', 0)}")
    return out


def _render_metrics_snapshot(metrics: Dict[str, Any]) -> List[str]:
    out: List[str] = []
    for section in ("counters", "gauges"):
        for name, value in sorted((metrics.get(section) or {}).items()):
            out.append(f"  {name:<36s} {value}")
    for name, h in sorted((metrics.get("histograms") or {}).items()):
        total = h.get("total", 0)
        mean = h.get("sum", 0) / total if total else 0.0
        line = f"  {name:<36s} total={total} mean={mean:.1f}"
        if "p50" in h:
            line += (f" p50={h['p50']:g} p95={h['p95']:g} "
                     f"p99={h['p99']:g}")
        out.append(line)
    return out


def render_report(source: Union[Telemetry, Dict[str, Any]],
                  title: str = "telemetry report") -> str:
    """Render spans + phase breakdown + metrics as text.

    ``source`` is either a live :class:`Telemetry` or the dict returned
    by :func:`load_jsonl`.
    """
    if isinstance(source, Telemetry):
        roots = source.tracer.roots
        metrics = source.metrics.snapshot()
        health: List[Dict[str, Any]] = []
    else:
        roots = source["roots"]
        metrics = source.get("metrics") or {}
        health = source.get("health") or []

    out: List[str] = [f"== {title} ==", "", "spans:"]
    if roots:
        out += [root.render(indent=1) for root in roots]
    else:
        out.append("  (no spans recorded)")

    recoveries = [r for r in roots if r.name == "recovery"]
    if recoveries:
        out += ["", "phase breakdown (Table 5):"]
        out += _render_phase_table(recoveries)

    out += ["", "metrics:"]
    rendered = _render_metrics_snapshot(metrics)
    out += rendered if rendered else ["  (no instruments)"]

    if health:
        from repro.obs.health import FleetHealthAggregator
        aggregator = FleetHealthAggregator()
        for payload in health:
            aggregator.add_payload(payload)
        out += ["", aggregator.report().render()]
    return "\n".join(out)
