"""Metrics registry: counters, gauges, fixed-bucket histograms.

Instruments are deliberately minimal: plain Python objects with
``__slots__`` and one mutating method each, because the allocator
extension touches them on every malloc/free.  Values carry no
wall-clock timestamps -- a snapshot is stamped with the simulated clock
by the caller -- so two identical runs produce byte-identical
snapshots.

A registry can be *disabled*: it then hands out a shared no-op
instrument and :meth:`MetricsRegistry.snapshot` returns an empty
mapping.  Components are expected to check :attr:`MetricsRegistry.enabled`
once at attach time and skip instrumentation wholesale on their hot
paths (the VM batches its counters and flushes only at run/stop
boundaries).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Union

#: Default histogram bucket upper bounds (values land in the first
#: bucket whose bound is >= value; the implicit last bucket is +inf).
DEFAULT_BUCKETS = (1, 4, 16, 64, 256, 1024, 4096, 16384, 65536)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A value that goes up and down (occupancy, footprint)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def add(self, delta: Union[int, float]) -> None:
        self.value += delta


class Histogram:
    """Fixed-bucket histogram of observed values.

    Buckets are cumulative-free: ``counts[i]`` is the number of
    observations ``v`` with ``bounds[i-1] < v <= bounds[i]``; the last
    slot counts everything above the top bound.
    """

    __slots__ = ("name", "bounds", "counts", "total", "sum", "max")

    def __init__(self, name: str,
                 bounds: Sequence[Union[int, float]] = DEFAULT_BUCKETS):
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted")
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0
        self.max: Union[int, float] = 0

    def observe(self, value: Union[int, float]) -> None:
        self.total += 1
        self.sum += value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def quantile(self, q: float) -> Union[int, float]:
        """The upper bound of the bucket holding the ``q``-quantile
        observation (the open-ended overflow bucket reports the
        observed maximum instead).  Deterministic: derived purely from
        the bucket counts, never from the raw sample stream.  An empty
        histogram answers 0."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.total == 0:
            return 0
        # Epsilon guards float products like 0.95 * 20 == 19.000...004.
        rank = max(1, math.ceil(q * self.total - 1e-9))
        cumulative = 0
        for i, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= rank:
                return self.bounds[i] if i < len(self.bounds) else self.max
        return self.max  # unreachable: counts sum to total

    def merge_from(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one.  Both
        must share bucket bounds (fleet aggregation merges per-process
        histograms published with the same layout)."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"histogram bounds mismatch: {self.bounds} vs "
                f"{other.bounds}")
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.total += other.total
        self.sum += other.sum
        if other.max > self.max:
            self.max = other.max

    def to_snapshot(self) -> Dict[str, object]:
        """The JSON payload :meth:`MetricsRegistry.snapshot` emits."""
        return {"bounds": list(self.bounds), "counts": list(self.counts),
                "total": self.total, "sum": self.sum, "max": self.max,
                "p50": self.quantile(0.50), "p95": self.quantile(0.95),
                "p99": self.quantile(0.99)}

    @classmethod
    def from_snapshot(cls, name: str,
                      payload: Dict[str, object]) -> "Histogram":
        """Rebuild a histogram from its snapshot payload (derived
        fields like p50 are recomputed, not trusted)."""
        hist = cls(name, bounds=tuple(payload["bounds"]))  # type: ignore
        counts = list(payload["counts"])  # type: ignore[arg-type]
        if len(counts) != len(hist.counts):
            raise ValueError(
                f"histogram {name!r}: {len(counts)} counts for "
                f"{len(hist.bounds)} bounds")
        hist.counts = [int(c) for c in counts]
        hist.total = int(payload["total"])  # type: ignore[arg-type]
        hist.sum = payload["sum"]           # type: ignore[assignment]
        hist.max = payload.get("max", 0)    # type: ignore[assignment]
        return hist


class _NullInstrument:
    """Accepts any instrument method as a no-op (disabled registry)."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: Union[int, float]) -> None:
        pass

    def add(self, delta: Union[int, float]) -> None:
        pass

    def observe(self, value: Union[int, float]) -> None:
        pass

    def quantile(self, q: float) -> int:
        return 0


NULL_INSTRUMENT = _NullInstrument()

Instrument = Union[Counter, Gauge, Histogram, _NullInstrument]


class MetricsRegistry:
    """Named instruments, created on first use.

    Names are dotted paths (``"vm.instructions"``,
    ``"checkpoint.dirty_pages"``); snapshots sort by name, so output is
    deterministic regardless of registration order.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument factories -----------------------------------------

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str,
                  bounds: Sequence[Union[int, float]] = DEFAULT_BUCKETS
                  ) -> Histogram:
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name, bounds)
        return inst

    # -- reading ------------------------------------------------------

    def value(self, name: str) -> Union[int, float, None]:
        """Current value of a counter or gauge, or None if unknown."""
        if name in self._counters:
            return self._counters[name].value
        if name in self._gauges:
            return self._gauges[name].value
        return None

    def snapshot(self, time_ns: Optional[int] = None) -> Dict[str, object]:
        """Deterministic, JSON-serializable view of every instrument."""
        snap: Dict[str, object] = {}
        if time_ns is not None:
            snap["time_ns"] = time_ns
        snap["counters"] = {name: c.value for name, c
                            in sorted(self._counters.items())}
        snap["gauges"] = {name: g.value for name, g
                          in sorted(self._gauges.items())}
        snap["histograms"] = {name: h.to_snapshot() for name, h
                              in sorted(self._histograms.items())}
        return snap

    def render(self) -> str:
        """Aligned text table of counters, gauges, and histograms."""
        lines: List[str] = []
        rows = [(name, c.value) for name, c
                in sorted(self._counters.items())]
        rows += [(name, g.value) for name, g
                 in sorted(self._gauges.items())]
        if rows:
            width = max(len(name) for name, _ in rows)
            lines += [f"  {name:<{width}}  {value}" for name, value in rows]
        for name, h in sorted(self._histograms.items()):
            lines.append(f"  {name}  total={h.total} mean={h.mean:.1f} "
                         f"p50={h.quantile(0.50):g} "
                         f"p95={h.quantile(0.95):g} "
                         f"p99={h.quantile(0.99):g}")
        return "\n".join(lines) if lines else "  (no instruments)"


#: Shared disabled registry for components constructed without telemetry.
NULL_REGISTRY = MetricsRegistry(enabled=False)
