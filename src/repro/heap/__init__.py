"""Simulated heap substrate.

This package is the reproduction's analogue of the paper's modified Lea
allocator inside glibc:

* :mod:`repro.heap.base` -- a flat, byte-addressable memory with page
  granularity dirty tracking (feeds COW accounting in checkpoints);
* :mod:`repro.heap.chunk` -- boundary-tag chunk headers stored *in* that
  memory, so stray writes corrupt allocator metadata exactly as in C;
* :mod:`repro.heap.allocator` -- the Lea-style allocator (size-class
  bins, splitting, coalescing, wilderness/top chunk);
* :mod:`repro.heap.extension` -- First-Aid's allocator extension with its
  normal / diagnostic / validation modes;
* :mod:`repro.heap.quarantine` -- the delay-free list behind the
  "delay free" preventive change;
* :mod:`repro.heap.canary` -- canary fill/check helpers;
* :mod:`repro.heap.random_alloc` -- randomized placement used by the
  validation engine.
"""

from repro.heap.base import Memory, PAGE_SIZE
from repro.heap.allocator import LeaAllocator
from repro.heap.canary import CANARY_BYTE, canary_fill, canary_intact, corrupted_offsets
from repro.heap.quarantine import DelayFreeQuarantine
from repro.heap.extension import (
    AllocatorExtension,
    AllocDecision,
    FreeDecision,
    ExtensionMode,
    ObjectInfo,
    ObjectState,
    IllegalAccess,
    MMTraceEntry,
)

__all__ = [
    "Memory",
    "PAGE_SIZE",
    "LeaAllocator",
    "CANARY_BYTE",
    "canary_fill",
    "canary_intact",
    "corrupted_offsets",
    "DelayFreeQuarantine",
    "AllocatorExtension",
    "AllocDecision",
    "FreeDecision",
    "ExtensionMode",
    "ObjectInfo",
    "ObjectState",
    "IllegalAccess",
    "MMTraceEntry",
]
