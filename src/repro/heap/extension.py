"""First-Aid's memory allocator extension.

The extension (paper Section 3) wraps the underlying Lea allocator and
operates in one of three modes:

* **normal** -- every allocation/deallocation call-site is checked
  against the available runtime patches; matching objects get the
  patch's preventive change.  This is the only extension work during
  bug-free production execution, which is why overhead stays low.
* **diagnostic** -- applies preventive and/or exposing changes as
  instructed by the diagnostic engine (through a
  :class:`ChangePolicy`), captures multi-level call-sites for every
  operation, and checks deallocation parameters to catch double frees.
* **validation** -- additionally randomizes placement (the machine is
  given a :class:`~repro.heap.random_alloc.RandomizedLeaAllocator`) and
  traces memory-management operations plus illegal memory accesses
  (this repo's stand-in for Pin instrumentation).

The extension also exists in a fourth, **off** state used only for the
"original allocator" baseline in the overhead experiments: requests are
forwarded untouched and nothing is recorded or charged.

Padding geometry follows the paper: ~1 KB of padding per patched object
(Table 5 reports 1016 bytes), split across both ends of the object.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.bugtypes import BugType
from repro.errors import HeapCorruptionFault, SampledGuardFault
from repro.heap.allocator import LeaAllocator
from repro.heap.base import Memory
from repro.heap.canary import CanaryStats, canary_fill, corrupted_offsets
from repro.heap.chunk import HEADER_SIZE
from repro.heap.quarantine import (
    DEFAULT_THRESHOLD,
    ORIGIN_PATCH,
    ORIGIN_SAMPLED,
    DelayFreeQuarantine,
)
from repro.util.callsite import CallSite
from repro.util.simclock import CostModel, SimClock

#: Per-object metadata footprint reported by the paper (Section 7.6.2).
METADATA_BYTES = 16

#: Default padding split: 504 + 512 = 1016 bytes, matching Table 5.
PAD_PRE = 504
PAD_POST = 512


class ExtensionMode(Enum):
    OFF = "off"
    NORMAL = "normal"
    DIAGNOSTIC = "diagnostic"
    VALIDATION = "validation"


class ObjectState(Enum):
    LIVE = "live"
    QUARANTINED = "quarantined"
    FREED = "freed"


@dataclass
class AllocDecision:
    """What to do to one object at allocation time."""

    pad_pre: int = 0
    pad_post: int = 0
    canary_pad: bool = False        # fill padding with canary (exposing)
    fill: Optional[str] = None      # None | "zero" | "canary"
    patch_id: Optional[int] = None  # patch that caused this, if any

    @classmethod
    def plain(cls) -> "AllocDecision":
        return cls()


@dataclass
class FreeDecision:
    """What to do to one object at deallocation time."""

    delay: bool = False
    canary_fill: bool = False       # fill contents with canary (exposing)
    check_param: bool = False       # swallow frees of non-live pointers
    patch_id: Optional[int] = None

    @classmethod
    def plain(cls) -> "FreeDecision":
        return cls()


class ChangePolicy:
    """Decides the environmental changes for each operation.

    Subclassed by the diagnostic engine (whole-heap or per-call-site
    changes) and by the patch pool (normal mode).  The default applies
    nothing.
    """

    def on_alloc(self, callsite: Optional[CallSite]) -> AllocDecision:
        return AllocDecision.plain()

    def on_free(self, callsite: Optional[CallSite],
                user_addr: int) -> FreeDecision:
        return FreeDecision.plain()

    def frozen_copy(self) -> "ChangePolicy":
        """A policy safe to hand to an independent clone or worker.

        Stateless policies (the default, and diagnostic policies whose
        tables never change after construction) return themselves.
        Policies bound to live mutable state -- notably the patch-pool
        policy -- override this to return a copy decoupled from that
        state, so a patch installed concurrently cannot leak into a
        clone's run.
        """
        return self


@dataclass
class ObjectInfo:
    """Extension-side record of one object (the 16-byte metadata)."""

    user_addr: int
    user_size: int
    block_addr: int        # allocator-level address (start of pre-pad)
    block_size: int
    pad_pre: int
    pad_post: int
    canary_pad: bool
    fill: Optional[str]
    alloc_site: Optional[CallSite]
    alloc_seq: int
    patch_id: Optional[int] = None
    sampled: bool = False  # promoted to a guarded allocation by sampling
    state: ObjectState = ObjectState.LIVE
    free_site: Optional[CallSite] = None
    free_patch_id: Optional[int] = None
    canary_filled_on_free: bool = False
    written: Optional[bytearray] = None  # init-tracking (validation only)

    def contains(self, addr: int) -> bool:
        return self.user_addr <= addr < self.user_addr + self.user_size

    def in_pre_pad(self, addr: int) -> bool:
        return self.block_addr <= addr < self.user_addr

    def in_post_pad(self, addr: int) -> bool:
        end = self.user_addr + self.user_size
        return self.pad_post > 0 and end <= addr < self.block_addr + self.block_size


@dataclass(frozen=True)
class MMTraceEntry:
    """One line of the memory-management trace (bug report item 4)."""

    seq: int
    op: str                # "malloc" | "free"
    user_addr: int
    size: int
    callsite: Optional[CallSite]
    patch_id: Optional[int]
    delayed: bool = False
    fill: Optional[str] = None

    def render(self) -> str:
        site = (f" @{self.callsite.innermost[0]}"
                if self.callsite else "")
        extra = ""
        if self.delayed:
            extra = f"  (delayed, patch {self.patch_id})"
        elif self.patch_id is not None:
            extra = f"  (patch {self.patch_id})"
        if self.op == "malloc":
            return f"malloc({self.size}): 0x{self.user_addr:x}{site}{extra}"
        return f"free(0x{self.user_addr:x}){site}{extra}"


@dataclass(frozen=True)
class IllegalAccess:
    """One traced illegal access (bug report item 5).

    ``offset`` is relative to the start of the affected object, so it is
    stable under address randomization -- consistency criterion (c) of
    the validation algorithm compares exactly (instr_id, offset, kind).
    """

    kind: str              # "overflow-write" | "dangling-read" |
                           # "dangling-write" | "uninit-read"
    instr_id: Tuple[str, int]
    offset: int
    is_write: bool
    site: Optional[CallSite]
    patch_id: Optional[int]

    def identity(self) -> tuple:
        return (self.kind, self.instr_id, self.offset, self.is_write)


@dataclass
class OverflowHit:
    user_addr: int
    user_size: int
    alloc_site: Optional[CallSite]
    side: str              # "pre" | "post"
    offsets: List[int]


@dataclass
class DanglingWriteHit:
    user_addr: int
    user_size: int
    free_site: Optional[CallSite]
    offsets: List[int]


@dataclass
class DoubleFreeEvent:
    user_addr: int
    second_site: Optional[CallSite]
    first_site: Optional[CallSite]


@dataclass
class Manifestations:
    """Everything a manifestation scan can report."""

    overflow_hits: List[OverflowHit] = field(default_factory=list)
    dangling_write_hits: List[DanglingWriteHit] = field(default_factory=list)
    double_free_events: List[DoubleFreeEvent] = field(default_factory=list)

    def any(self) -> bool:
        return bool(self.overflow_hits or self.dangling_write_hits
                    or self.double_free_events)


class _HeapInstruments:
    """The extension's registry instruments (telemetry enabled only).

    malloc/free are already heavyweight operations (policy lookup,
    canary fills), so direct instrument updates here are fine -- the
    batching discipline only matters on the per-instruction VM path.
    """

    __slots__ = ("mallocs", "frees", "bad_frees", "alloc_size",
                 "patch_triggers", "padding_bytes", "metadata_bytes",
                 "quarantine_bytes", "quarantine_objects",
                 "canary_checks", "canary_corruptions",
                 "live_bytes", "peak_bytes",
                 "sampled_allocs", "sampled_detections",
                 "sampled_suppressed", "sampled_scans")

    def __init__(self, registry):
        self.mallocs = registry.counter("heap.mallocs")
        self.frees = registry.counter("heap.frees")
        self.bad_frees = registry.counter("heap.bad_frees")
        self.alloc_size = registry.histogram("heap.alloc_size")
        self.patch_triggers = registry.counter("heap.patch_triggers")
        self.padding_bytes = registry.gauge("heap.padding_bytes")
        self.metadata_bytes = registry.gauge("heap.metadata_bytes")
        self.quarantine_bytes = registry.gauge("heap.quarantine_bytes")
        self.quarantine_objects = registry.gauge("heap.quarantine_objects")
        self.canary_checks = registry.gauge("heap.canary_checks")
        self.canary_corruptions = registry.gauge("heap.canary_corruptions")
        self.live_bytes = registry.gauge("heap.live_bytes")
        self.peak_bytes = registry.gauge("heap.peak_bytes")
        self.sampled_allocs = registry.gauge("sampling.sampled_allocs")
        self.sampled_detections = registry.gauge("sampling.detections")
        self.sampled_suppressed = registry.gauge("sampling.suppressed")
        self.sampled_scans = registry.gauge("sampling.guard_scans")

    def sync_allocator(self, allocator) -> None:
        stats = allocator.stats()
        self.live_bytes.set(stats["live_user_bytes"])
        self.peak_bytes.set(stats["peak_heap_bytes"])


class AllocatorExtension:
    """The allocator extension; the VM routes malloc/free through it."""

    def __init__(self, mem: Memory, allocator: LeaAllocator,
                 mode: ExtensionMode = ExtensionMode.NORMAL,
                 policy: Optional[ChangePolicy] = None,
                 clock: Optional[SimClock] = None,
                 costs: Optional[CostModel] = None,
                 quarantine_threshold: int = DEFAULT_THRESHOLD):
        self.mem = mem
        self.allocator = allocator
        self.mode = mode
        self.policy = policy or ChangePolicy()
        self.clock = clock
        self.costs = costs or CostModel()
        self.quarantine = DelayFreeQuarantine(
            self._release_quarantined, quarantine_threshold)

        # Sampled always-on detection (GWP-ASan-style): when a
        # SampleSelector is attached, every 1/N allocations in NORMAL
        # mode is promoted to a guarded allocation (redzone canaries +
        # delayed-free canary fill); a guard hit raises
        # SampledGuardFault with the attribution already in hand.
        # None (the default) leaves every code path byte-identical to
        # the pre-sampling build.
        self.sampler = None
        self.sampling_stats = None
        #: Optional chaos fault plan: an armed "sampled_false_positive"
        #: forces a guard hit on the next sampled free even though the
        #: canaries are intact (exercises validation's rejection path).
        self.sampling_chaos = None
        #: True while the runtime is inside recovery (rollback
        #: re-execution, any ladder rung): the replayed window was
        #: already sampled once, and a fresh guard raised mid-replay
        #: would read as "re-execution failed" and walk the ladder on a
        #: window the patch just fixed.  Transient control state --
        #: deliberately not part of snapshot/restore.
        self.sampling_paused = False

        self._objects: Dict[int, ObjectInfo] = {}
        self._starts: List[int] = []            # sorted block starts
        self._by_start: Dict[int, int] = {}     # block start -> user addr
        self._alloc_seq = 0

        # Memory-pressure failsafe (paper Section 2): when the extra
        # memory held by runtime patches (padding + delay-freed
        # objects) exceeds this limit, patching is disabled and the
        # oldest delay-freed objects are released.  None = unlimited.
        self.patch_memory_limit: Optional[int] = None
        self.patching_disabled = False

        # Manifestation evidence accumulated during a (re-)execution.
        self._overflow_hits: List[OverflowHit] = []
        self._dangling_write_hits: List[DanglingWriteHit] = []
        self._double_free_events: List[DoubleFreeEvent] = []

        # Traces (diagnostic + validation modes).
        self.mm_trace: List[MMTraceEntry] = []
        self.illegal_accesses: List[IllegalAccess] = []
        self.trace_mm = False

        # Statistics for the space-overhead experiments.
        self.metadata_bytes = 0
        self.peak_metadata_bytes = 0
        self.padding_bytes = 0
        self.peak_padding_bytes = 0
        self.patch_trigger_count = 0

        # Telemetry (attach_telemetry): canary activity tally plus
        # optional registry instruments and flight-recorder feed.
        self.canary_stats = CanaryStats()
        self._tm: Optional[_HeapInstruments] = None
        self._flight = None

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------

    def attach_telemetry(self, telemetry) -> None:
        """Register heap instruments and the flight-recorder feed.

        A disabled telemetry object attaches nothing, keeping
        malloc/free free of instrument updates.
        """
        if telemetry is None or not telemetry.enabled:
            self._tm = None
            self._flight = None
            self.quarantine.observer = None
            return
        self._tm = _HeapInstruments(telemetry.metrics)
        self._flight = telemetry.recorder

        def _quarantine_observer(nbytes: int, count: int) -> None:
            tm = self._tm
            if tm is not None:
                tm.quarantine_bytes.set(nbytes)
                tm.quarantine_objects.set(count)

        self.quarantine.observer = _quarantine_observer

    def _sync_canary_metrics(self) -> None:
        tm = self._tm
        if tm is not None:
            tm.canary_checks.set(self.canary_stats.checks)
            tm.canary_corruptions.set(self.canary_stats.corruptions)

    def _sync_sampling_metrics(self) -> None:
        tm = self._tm
        stats = self.sampling_stats
        if tm is None or stats is None:
            return
        tm.sampled_allocs.set(stats.sampled_allocs)
        tm.sampled_detections.set(stats.detections)
        tm.sampled_suppressed.set(stats.suppressed)
        tm.sampled_scans.set(stats.guard_scans)

    # ------------------------------------------------------------------
    # sampled always-on detection
    # ------------------------------------------------------------------

    def attach_sampler(self, selector) -> None:
        """Enable GWP-ASan-style sampled detection: ``selector`` is a
        :class:`repro.sampling.SampleSelector` (or None to disable)."""
        self.sampler = selector
        if selector is None:
            self.sampling_stats = None
        else:
            from repro.sampling import SamplingStats
            self.sampling_stats = SamplingStats()

    def _sampling_active(self) -> bool:
        # sampling_paused deliberately does NOT gate this: selection,
        # promotion, and accounting continue through a recovery replay
        # (rollback restored the work counters, so re-counting the
        # replayed window is counting it exactly once) and the
        # post-recovery tail of the session stays guarded.  The pause
        # only swallows the *raise* -- see _raise_guard.
        return (self.sampler is not None
                and self.mode is ExtensionMode.NORMAL
                and not self.patching_disabled)

    def _raise_guard(self, detection, address: int) -> None:
        """Raise a guard hit -- unless sampling is paused (recovery is
        replaying a window the guards already saw; a fresh raise
        mid-replay would fail the rung), or a patch for this exact
        (bug type, site) already exists, in which case the bug is
        already being prevented and re-raising would loop the pipeline
        on its own patch forever."""
        if self.sampling_paused:
            return
        stats = self.sampling_stats
        site = detection.site
        has_patch = getattr(self.policy, "has_patch", None)
        if (site is not None and has_patch is not None
                and has_patch(detection.bug_type, site)):
            stats.suppressed += 1
            self._sync_sampling_metrics()
            return
        stats.detections += 1
        if not stats.first_detection_ns:
            stats.first_detection_ns = \
                self.clock.now_ns if self.clock else 0
        self._sync_sampling_metrics()
        raise SampledGuardFault(detection.describe(), address=address,
                                detection=detection)

    def _make_detection(self, bug_type, obj: ObjectInfo,
                        free_site: Optional[CallSite],
                        offset: Optional[int]):
        from repro.core.bugtypes import BugType as _BT
        from repro.sampling import SampledDetection
        if (bug_type is _BT.BUFFER_OVERFLOW and offset is not None
                and offset < 0):
            # Corruption in the guarded object's *pre* redzone: the
            # victim did not overstep itself -- its left neighbour ran
            # off its end.  Attribute the culprit, not the victim, or
            # the fast-path patch pads an object nothing oversteps.
            culprit = self._left_neighbor(obj)
            if culprit is not None:
                return SampledDetection(
                    bug_type=bug_type, alloc_site=culprit.alloc_site,
                    free_site=free_site, size=culprit.user_size,
                    offset=obj.user_addr + offset - culprit.user_addr,
                    alloc_seq=culprit.alloc_seq,
                    time_ns=self.clock.now_ns if self.clock else 0)
        return SampledDetection(
            bug_type=bug_type, alloc_site=obj.alloc_site,
            free_site=free_site, size=obj.user_size, offset=offset,
            alloc_seq=obj.alloc_seq,
            time_ns=self.clock.now_ns if self.clock else 0)

    def _left_neighbor(self, obj: ObjectInfo) -> Optional[ObjectInfo]:
        """Nearest tracked object whose block precedes ``obj``'s."""
        i = bisect.bisect_left(self._starts, obj.block_addr) - 1
        if i < 0:
            return None
        neighbor = self._objects.get(self._by_start[self._starts[i]])
        if neighbor is None or neighbor.state is ObjectState.FREED:
            return None
        return neighbor

    def _guard_redzone_offsets(self, obj: ObjectInfo) -> Optional[int]:
        """First corrupted redzone offset of a guarded object (relative
        to the user payload start; negative = pre redzone), or None."""
        stats = self.canary_stats
        pre = corrupted_offsets(self.mem, obj.block_addr, obj.pad_pre,
                                stats)
        post = corrupted_offsets(self.mem, obj.user_addr + obj.user_size,
                                 obj.pad_post, stats)
        self._sync_canary_metrics()
        if post:
            return obj.user_size + post[0]
        if pre:
            return pre[0] - obj.pad_pre
        return None

    def check_sampled_guards(self) -> None:
        """Boundary sweep over currently-guarded objects: live guards'
        redzones and quarantined guards' free canaries.  Raises
        :class:`SampledGuardFault` on the first corruption found --
        this is what makes detection *timely* rather than waiting for
        the guarded object's free or eviction.  The runtime calls this
        at checkpoint boundaries; it is a no-op outside NORMAL mode or
        without a sampler."""
        if not self._sampling_active():
            return
        from repro.core.bugtypes import BugType
        self.sampling_stats.guard_scans += 1
        scanned = 0
        for obj in self._objects.values():
            if not obj.sampled or obj.state is ObjectState.FREED:
                continue
            if obj.state is ObjectState.LIVE and obj.canary_pad:
                scanned += obj.pad_pre + obj.pad_post
                offset = self._guard_redzone_offsets(obj)
                if offset is not None:
                    self._charge(self.costs.fill_cost(scanned))
                    self._raise_guard(self._make_detection(
                        BugType.BUFFER_OVERFLOW, obj, None, offset),
                        obj.user_addr)
            elif (obj.state is ObjectState.QUARANTINED
                  and obj.canary_filled_on_free
                  and obj.free_patch_id is None):
                scanned += obj.user_size
                offs = corrupted_offsets(self.mem, obj.user_addr,
                                         obj.user_size, self.canary_stats)
                if offs:
                    self._sync_canary_metrics()
                    self._charge(self.costs.fill_cost(scanned))
                    self._raise_guard(self._make_detection(
                        BugType.DANGLING_WRITE, obj, obj.free_site,
                        offs[0]), obj.user_addr)
        self._charge(self.costs.fill_cost(scanned))
        self._sync_canary_metrics()
        self._sync_sampling_metrics()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _charge(self, ns: int) -> None:
        if self.clock is not None and ns:
            self.clock.charge(ns)

    def _op_cost(self) -> int:
        if self.mode is ExtensionMode.OFF:
            return 0
        cost = self.costs.extension_ns
        if self.mode is ExtensionMode.NORMAL:
            cost += self.costs.patch_lookup_ns
        elif self.mode is ExtensionMode.DIAGNOSTIC:
            cost += self.costs.extension_ns  # multi-level capture etc.
        elif self.mode is ExtensionMode.VALIDATION:
            cost += 2 * self.costs.extension_ns
        return cost

    def _index_add(self, obj: ObjectInfo) -> None:
        bisect.insort(self._starts, obj.block_addr)
        self._by_start[obj.block_addr] = obj.user_addr

    def _index_remove(self, obj: ObjectInfo) -> None:
        i = bisect.bisect_left(self._starts, obj.block_addr)
        if i < len(self._starts) and self._starts[i] == obj.block_addr:
            self._starts.pop(i)
        self._by_start.pop(obj.block_addr, None)

    def find_object(self, addr: int) -> Optional[ObjectInfo]:
        """Tracked object whose *block* (padding included) covers addr."""
        i = bisect.bisect_right(self._starts, addr) - 1
        if i < 0:
            return None
        start = self._starts[i]
        obj = self._objects.get(self._by_start[start])
        if obj and start <= addr < start + obj.block_size:
            return obj
        return None

    def live_objects(self) -> List[ObjectInfo]:
        return [o for o in self._objects.values()
                if o.state is ObjectState.LIVE]

    def object_at(self, user_addr: int) -> Optional[ObjectInfo]:
        return self._objects.get(user_addr)

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    def malloc(self, size: int, callsite: Optional[CallSite]) -> int:
        if self.mode is ExtensionMode.OFF:
            return self.allocator.malloc(size)

        self._charge(self._op_cost())
        decision = self.policy.on_alloc(callsite)
        if self.patching_disabled and decision.patch_id is not None:
            decision = AllocDecision.plain()
        sampled = False
        if self._sampling_active():
            self.sampling_stats.allocs += 1
            if (decision.patch_id is None
                    and self.sampler.picks(self._alloc_seq + 1)):
                # Promote to a guarded allocation: redzone canaries on
                # both sides.  A patched site is already protected, so
                # sampling only guards unpatched allocations (this is
                # also what keeps a recovered run from re-detecting its
                # own bug).
                sampled = True
                decision = AllocDecision(pad_pre=PAD_PRE,
                                         pad_post=PAD_POST,
                                         canary_pad=True,
                                         fill=decision.fill)
                self.sampling_stats.sampled_allocs += 1
                self._sync_sampling_metrics()
        block_size = decision.pad_pre + size + decision.pad_post
        block_addr = self.allocator.malloc(block_size)
        user_addr = block_addr + decision.pad_pre

        if decision.canary_pad:
            canary_fill(self.mem, block_addr, decision.pad_pre,
                        self.canary_stats)
            canary_fill(self.mem, user_addr + size, decision.pad_post,
                        self.canary_stats)
            self._charge(self.costs.fill_cost(
                decision.pad_pre + decision.pad_post))
        if decision.fill == "zero":
            if size:
                self.mem.fill(user_addr, 0, size)
            self._charge(self.costs.fill_cost(size))
        elif decision.fill == "canary":
            canary_fill(self.mem, user_addr, size, self.canary_stats)
            self._charge(self.costs.fill_cost(size))

        self._alloc_seq += 1
        obj = ObjectInfo(
            user_addr=user_addr, user_size=size,
            block_addr=block_addr,
            block_size=self.allocator.usable_size(block_addr),
            pad_pre=decision.pad_pre, pad_post=decision.pad_post,
            canary_pad=decision.canary_pad, fill=decision.fill,
            alloc_site=callsite, alloc_seq=self._alloc_seq,
            patch_id=decision.patch_id, sampled=sampled,
        )
        if self.mode is ExtensionMode.VALIDATION and decision.fill == "zero":
            obj.written = bytearray(size)
        self._objects[user_addr] = obj
        self._index_add(obj)

        self.metadata_bytes += METADATA_BYTES
        self.peak_metadata_bytes = max(self.peak_metadata_bytes,
                                       self.metadata_bytes)
        pad = decision.pad_pre + decision.pad_post
        if pad:
            self.padding_bytes += pad
            self.peak_padding_bytes = max(self.peak_padding_bytes,
                                          self.padding_bytes)
        if decision.patch_id is not None:
            self.patch_trigger_count += 1
        if self.trace_mm:
            self.mm_trace.append(MMTraceEntry(
                seq=self._alloc_seq, op="malloc", user_addr=user_addr,
                size=size, callsite=callsite, patch_id=decision.patch_id,
                fill=decision.fill))
        tm = self._tm
        if tm is not None:
            tm.mallocs.inc()
            tm.alloc_size.observe(size)
            tm.padding_bytes.set(self.padding_bytes)
            tm.metadata_bytes.set(self.metadata_bytes)
            tm.sync_allocator(self.allocator)
            if decision.patch_id is not None:
                tm.patch_triggers.inc()
        if self._flight is not None:
            self._flight.record_mm(
                self.clock.now_ns if self.clock else 0, "malloc",
                user_addr, size,
                callsite.innermost[0] if callsite else None,
                decision.patch_id)
        if decision.patch_id is not None:
            self._enforce_patch_memory()
        return user_addr

    # ------------------------------------------------------------------
    # deallocation
    # ------------------------------------------------------------------

    def free(self, user_addr: int, callsite: Optional[CallSite]) -> None:
        if self.mode is ExtensionMode.OFF:
            self.allocator.free(user_addr)
            return

        self._charge(self._op_cost())
        obj = self._objects.get(user_addr)

        if obj is None or obj.state is not ObjectState.LIVE:
            self._handle_bad_free(user_addr, callsite, obj)
            return

        decision = self.policy.on_free(callsite, user_addr)
        if self.patching_disabled and decision.patch_id is not None:
            decision = FreeDecision.plain()
        guarded = obj.sampled and self._sampling_active()
        if guarded:
            # Free-time redzone check: an overflow is caught here,
            # before the corrupted neighbourhood is ever dereferenced
            # (i.e. before the eventual crash).
            offset = self._guard_redzone_offsets(obj)
            if offset is not None:
                self._raise_guard(self._make_detection(
                    BugType.BUFFER_OVERFLOW, obj, callsite, offset),
                    user_addr)
            chaos = self.sampling_chaos
            if (chaos is not None and decision.patch_id is None
                    and not self.sampling_paused
                    and chaos.take("sampled_false_positive")):
                # Injected false positive: the guard "fires" on an
                # intact object.  Validation must reject the resulting
                # patch (the unpatched baseline passes).
                self._raise_guard(self._make_detection(
                    BugType.BUFFER_OVERFLOW, obj, callsite, None),
                    user_addr)
        obj.free_site = callsite
        obj.free_patch_id = decision.patch_id
        self._alloc_seq += 1
        if decision.patch_id is not None:
            self.patch_trigger_count += 1

        if guarded and decision.patch_id is None and not decision.delay:
            # Promote to a guarded free: delayed-free quarantine with
            # free-canary fill, so a dangling write lands in memory
            # nobody owns and is detected at the next boundary sweep.
            decision = FreeDecision(delay=True, canary_fill=True,
                                    check_param=True)
            self.sampling_stats.sampled_frees += 1

        if decision.delay:
            obj.state = ObjectState.QUARANTINED
            obj.canary_filled_on_free = decision.canary_fill
            if decision.canary_fill:
                canary_fill(self.mem, user_addr, obj.user_size,
                            self.canary_stats)
                self._charge(self.costs.fill_cost(obj.user_size))
            origin = ORIGIN_SAMPLED if (guarded
                                        and decision.patch_id is None) \
                else ORIGIN_PATCH
            self.quarantine.add(user_addr, obj.user_size, callsite,
                                decision.canary_fill, decision.patch_id,
                                origin=origin)
        else:
            self._really_free(obj)

        if self.trace_mm:
            self.mm_trace.append(MMTraceEntry(
                seq=self._alloc_seq, op="free", user_addr=user_addr,
                size=obj.user_size, callsite=callsite,
                patch_id=decision.patch_id, delayed=decision.delay))
        tm = self._tm
        if tm is not None:
            tm.frees.inc()
            tm.padding_bytes.set(self.padding_bytes)
            tm.metadata_bytes.set(self.metadata_bytes)
            tm.sync_allocator(self.allocator)
            if decision.patch_id is not None:
                tm.patch_triggers.inc()
        if self._flight is not None:
            self._flight.record_mm(
                self.clock.now_ns if self.clock else 0, "free",
                user_addr, obj.user_size,
                callsite.innermost[0] if callsite else None,
                decision.patch_id)
        if decision.patch_id is not None:
            self._enforce_patch_memory()

    def _handle_bad_free(self, user_addr: int,
                         callsite: Optional[CallSite],
                         obj: Optional[ObjectInfo]) -> None:
        """Free of a pointer that is not a live object: a double free or
        a wild free.  With the parameter check active (delay-free patch
        or diagnostic mode) it is recorded and swallowed; otherwise it is
        forwarded and the allocator aborts, crashing the program."""
        decision = self.policy.on_free(callsite, user_addr)
        if (obj is not None and obj.state is ObjectState.QUARANTINED
                and obj.sampled and self._sampling_active()
                and decision.patch_id is None):
            # A guarded object freed twice: without the sampled delay
            # the first free would have really freed it and this one
            # would have crashed the allocator.  Pre-crash detection
            # with both free sites in hand.
            self._raise_guard(self._make_detection(
                BugType.DOUBLE_FREE, obj, obj.free_site or callsite,
                None), user_addr)
        # A quarantined object is no longer the allocator's to free, so
        # the extension must intercept regardless of policy; otherwise
        # the check runs only when a policy/patch requests it.
        check = decision.check_param or (
            obj is not None and obj.state is ObjectState.QUARANTINED)
        first_site = obj.free_site if obj is not None else None
        if check:
            self._double_free_events.append(
                DoubleFreeEvent(user_addr, callsite, first_site))
            if self._tm is not None:
                self._tm.bad_frees.inc()
            if decision.patch_id is not None:
                self.patch_trigger_count += 1
            if self.trace_mm:
                self._alloc_seq += 1
                self.mm_trace.append(MMTraceEntry(
                    seq=self._alloc_seq, op="free", user_addr=user_addr,
                    size=obj.user_size if obj else 0, callsite=callsite,
                    patch_id=decision.patch_id, delayed=True))
            return
        # No protection: the program crashes as a raw run would (glibc
        # aborts with "double free or corruption").
        if obj is not None:
            raise HeapCorruptionFault(
                f"double free of 0x{user_addr:x}", address=user_addr)
        self.allocator.free(user_addr)

    def _really_free(self, obj: ObjectInfo) -> None:
        self._check_pad_canaries(obj)
        obj.state = ObjectState.FREED
        self._index_remove(obj)
        self.metadata_bytes -= METADATA_BYTES
        pad = obj.pad_pre + obj.pad_post
        if pad:
            self.padding_bytes -= pad
        self.allocator.free(obj.block_addr)

    def _release_quarantined(self, user_addr: int) -> None:
        """Quarantine eviction callback: perform the real free."""
        obj = self._objects.get(user_addr)
        if obj is None:
            return
        if obj.canary_filled_on_free:
            offs = self._check_quarantine_canary(obj)
            if (offs and obj.sampled and self._sampling_active()
                    and obj.free_patch_id is None):
                # Last-chance dangling-write detection before the
                # guarded object's memory is recycled.  Rollback
                # restores the heap, so the half-evicted state this
                # raise leaves behind never survives recovery.
                self._raise_guard(self._make_detection(
                    BugType.DANGLING_WRITE, obj, obj.free_site,
                    offs[0]), obj.user_addr)
        self._really_free(obj)

    # ------------------------------------------------------------------
    # memory-pressure failsafe
    # ------------------------------------------------------------------

    @property
    def patch_memory_bytes(self) -> int:
        """Extra memory currently held by runtime patches: live
        padding plus delay-freed objects."""
        return self.padding_bytes + self.quarantine.current_bytes

    def _enforce_patch_memory(self) -> None:
        """Disable patching and release the oldest delay-freed
        objects once the user-defined limit is exceeded (paper
        Section 2: users choose how much memory to spend on
        reliability; releasing very old delay-freed objects is usually
        safe but may let the bug strike again)."""
        limit = self.patch_memory_limit
        if limit is None or self.patching_disabled:
            return
        if self.patch_memory_bytes <= limit:
            return
        self.patching_disabled = True
        while (self.quarantine.current_bytes > limit // 2
               and len(self.quarantine)):
            self.quarantine.pop_oldest()

    # ------------------------------------------------------------------
    # manifestation evidence
    # ------------------------------------------------------------------

    def _check_pad_canaries(self, obj: ObjectInfo) -> None:
        if not obj.canary_pad:
            return
        stats = self.canary_stats
        pre = corrupted_offsets(self.mem, obj.block_addr, obj.pad_pre,
                                stats)
        if pre:
            self._overflow_hits.append(OverflowHit(
                obj.user_addr, obj.user_size, obj.alloc_site, "pre", pre))
        post_start = obj.user_addr + obj.user_size
        post = corrupted_offsets(self.mem, post_start, obj.pad_post,
                                 stats)
        if post:
            self._overflow_hits.append(OverflowHit(
                obj.user_addr, obj.user_size, obj.alloc_site, "post", post))
        self._sync_canary_metrics()

    def _check_quarantine_canary(self, obj: ObjectInfo) -> List[int]:
        offs = corrupted_offsets(self.mem, obj.user_addr, obj.user_size,
                                 self.canary_stats)
        if offs:
            self._dangling_write_hits.append(DanglingWriteHit(
                obj.user_addr, obj.user_size, obj.free_site, offs))
        self._sync_canary_metrics()
        return offs

    def scan_manifestations(self) -> Manifestations:
        """Sweep all still-tracked objects for canary corruption and
        combine with events recorded along the way.  Called by the
        diagnostic engine at the end of each re-execution window."""
        for obj in self._objects.values():
            if obj.state is ObjectState.FREED:
                continue
            if obj.canary_pad:
                # Live or quarantined: padding canaries survive the
                # free (only the user region gets canary-filled), so
                # overflow evidence persists into the quarantine.
                self._check_pad_canaries(obj)
            if (obj.state is ObjectState.QUARANTINED
                    and obj.canary_filled_on_free):
                self._check_quarantine_canary(obj)
        return Manifestations(
            overflow_hits=self._dedupe_overflow(),
            dangling_write_hits=self._dedupe_dangling(),
            double_free_events=list(self._double_free_events),
        )

    def _dedupe_overflow(self) -> List[OverflowHit]:
        seen, out = set(), []
        for hit in self._overflow_hits:
            key = (hit.user_addr, hit.side)
            if key not in seen:
                seen.add(key)
                out.append(hit)
        return out

    def _dedupe_dangling(self) -> List[DanglingWriteHit]:
        seen, out = set(), []
        for hit in self._dangling_write_hits:
            if hit.user_addr not in seen:
                seen.add(hit.user_addr)
                out.append(hit)
        return out

    # ------------------------------------------------------------------
    # access tracing (validation mode -- the Pin analogue)
    # ------------------------------------------------------------------

    def note_access(self, addr: int, size: int, is_write: bool,
                    instr_id: Tuple[str, int]) -> None:
        """Classify one load/store against tracked objects.

        Only wired up in validation mode; the machine calls this for
        every LOAD/STORE when ``trace_accesses`` is set.
        """
        self._charge(self.costs.trace_ns)
        obj = self.find_object(addr)
        if obj is None:
            return
        if obj.state is ObjectState.QUARANTINED:
            self._record_illegal(IllegalAccess(
                kind="dangling-write" if is_write else "dangling-read",
                instr_id=instr_id, offset=addr - obj.user_addr,
                is_write=is_write, site=obj.free_site,
                patch_id=obj.free_patch_id))
            return
        if obj.state is not ObjectState.LIVE:
            return
        if is_write and (obj.in_pre_pad(addr) or obj.in_post_pad(addr)):
            self._record_illegal(IllegalAccess(
                kind="overflow-write", instr_id=instr_id,
                offset=addr - obj.user_addr, is_write=True,
                site=obj.alloc_site, patch_id=obj.patch_id))
            return
        if obj.written is not None and obj.contains(addr):
            off = addr - obj.user_addr
            end = min(off + size, obj.user_size)
            if is_write:
                for i in range(off, end):
                    obj.written[i] = 1
            elif not all(obj.written[off:end]):
                self._record_illegal(IllegalAccess(
                    kind="uninit-read", instr_id=instr_id, offset=off,
                    is_write=False, site=obj.alloc_site,
                    patch_id=obj.patch_id))

    def _record_illegal(self, access: IllegalAccess) -> None:
        self.illegal_accesses.append(access)
        if self._flight is not None:
            self._flight.record_access(
                self.clock.now_ns if self.clock else 0, access.kind,
                f"{access.instr_id[0]}:{access.instr_id[1]}",
                access.offset, access.is_write)

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------

    def snapshot(self) -> tuple:
        objects = {addr: replace(
            o, written=bytearray(o.written) if o.written is not None else None)
            for addr, o in self._objects.items()}
        return (
            objects, list(self._starts), dict(self._by_start),
            self._alloc_seq, self.quarantine.snapshot(),
            list(self._overflow_hits), list(self._dangling_write_hits),
            list(self._double_free_events),
            list(self.mm_trace), list(self.illegal_accesses),
            self.metadata_bytes, self.peak_metadata_bytes,
            self.padding_bytes, self.peak_padding_bytes,
            self.patch_trigger_count, self.patching_disabled,
            self.sampling_stats.snapshot()
            if self.sampling_stats is not None else None,
        )

    def restore(self, snap: tuple) -> None:
        (objects, starts, by_start, seq, quarantine_snap,
         over, dang, dbl, mm, illegal,
         meta, peak_meta, pad, peak_pad, triggers, disabled,
         sampling_snap) = snap
        self._objects = {addr: replace(
            o, written=bytearray(o.written) if o.written is not None else None)
            for addr, o in objects.items()}
        self._starts = list(starts)
        self._by_start = dict(by_start)
        self._alloc_seq = seq
        self.quarantine.restore(quarantine_snap)
        self._overflow_hits = list(over)
        self._dangling_write_hits = list(dang)
        self._double_free_events = list(dbl)
        self.mm_trace = list(mm)
        self.illegal_accesses = list(illegal)
        self.metadata_bytes = meta
        self.peak_metadata_bytes = peak_meta
        self.padding_bytes = pad
        self.peak_padding_bytes = peak_pad
        self.patch_trigger_count = triggers
        self.patching_disabled = disabled
        if sampling_snap is not None and self.sampling_stats is not None:
            self.sampling_stats.restore(sampling_snap)
