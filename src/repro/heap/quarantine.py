"""Delay-free quarantine.

Implements the paper's "delay free" preventive change (Table 1): instead
of returning a deallocated object to the allocator, hold it in a FIFO so
that

* dangling-pointer reads still see the object's last contents (or the
  canary, in diagnostic mode),
* dangling-pointer writes land in memory nobody else owns, and
* a second free of the same pointer is recognisable by parameter check.

The quarantine accumulates until its byte footprint reaches a
customizable threshold (1 MB in the paper's experiments); then the
oldest entries are really freed.  The paper notes that releasing very
old delay-freed objects is usually safe but may in theory undermine the
patch -- we reproduce that policy, including the accounting Table 5
measures.

Two planes now share this single quarantine: preventive-mode /
patch-governed delayed frees (origin ``"patch"``) and sampled guarded
frees (origin ``"sampled"``, GWP-ASan-style always-on detection).  One
FIFO, one byte budget, one eviction pass -- an object enters exactly
once under exactly one origin, so activating both modes can never
double-drain an entry or double-count an eviction.  ``evictions`` stays
the Table 5 total; ``evictions_by_origin`` splits it so the sampling
plane can report its own churn.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterator, List, Optional

from repro.util.callsite import CallSite

DEFAULT_THRESHOLD = 1024 * 1024  # 1 MB, as in the paper's experiments

#: Who put an object into the quarantine.
ORIGIN_PATCH = "patch"      # preventive mode / patch-governed delay free
ORIGIN_SAMPLED = "sampled"  # sampled guarded free (always-on detection)


@dataclass
class QuarantinedObject:
    """One delay-freed object."""

    user_addr: int
    user_size: int
    free_site: Optional[CallSite]
    seq: int              # global free sequence number, for FIFO age
    canary_filled: bool   # exposing variant fills contents with canary
    patch_id: Optional[int] = None  # patch that delayed this free, if any
    origin: str = ORIGIN_PATCH      # which plane delay-freed it


class DelayFreeQuarantine:
    """FIFO of delay-freed objects with a byte-footprint threshold."""

    def __init__(self, release: Callable[[int], None],
                 threshold_bytes: int = DEFAULT_THRESHOLD):
        """``release`` performs the real deallocation on eviction."""
        self._release = release
        self.threshold_bytes = threshold_bytes
        self._objects: "OrderedDict[int, QuarantinedObject]" = OrderedDict()
        self._bytes = 0
        self._seq = 0
        #: Optional telemetry hook, called with (current_bytes,
        #: object_count) after any occupancy change.
        self.observer: Optional[Callable[[int, int], None]] = None
        #: Running total of bytes ever quarantined (Table 5's
        #: "accumulated memory space occupied by delay-freed objects").
        self.accumulated_bytes = 0
        self.evictions = 0
        #: Per-origin split of ``evictions`` (keys: ORIGIN_PATCH,
        #: ORIGIN_SAMPLED).  Invariant: sum == evictions.
        self.evictions_by_origin: Dict[str, int] = {}

    # ------------------------------------------------------------------

    def add(self, user_addr: int, user_size: int,
            free_site: Optional[CallSite], canary_filled: bool,
            patch_id: Optional[int] = None,
            origin: str = ORIGIN_PATCH) -> QuarantinedObject:
        if user_addr in self._objects:
            raise KeyError(f"0x{user_addr:x} already quarantined")
        self._seq += 1
        obj = QuarantinedObject(user_addr, user_size, free_site, self._seq,
                                canary_filled, patch_id, origin)
        self._objects[user_addr] = obj
        self._bytes += user_size
        self.accumulated_bytes += user_size
        self._evict_to_threshold()
        if self.observer is not None:
            self.observer(self._bytes, len(self._objects))
        return obj

    def contains(self, user_addr: int) -> bool:
        return user_addr in self._objects

    def get(self, user_addr: int) -> Optional[QuarantinedObject]:
        return self._objects.get(user_addr)

    def find_containing(self, addr: int) -> Optional[QuarantinedObject]:
        """The quarantined object whose payload covers ``addr``, if any.

        Linear scan: the quarantine is small by construction (bounded by
        the threshold), and this is only called on classification paths.
        """
        for obj in self._objects.values():
            if obj.user_addr <= addr < obj.user_addr + obj.user_size:
                return obj
        return None

    @property
    def current_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[QuarantinedObject]:
        return iter(self._objects.values())

    # ------------------------------------------------------------------

    def _count_eviction(self, obj: QuarantinedObject) -> None:
        self.evictions += 1
        self.evictions_by_origin[obj.origin] = \
            self.evictions_by_origin.get(obj.origin, 0) + 1

    def _evict_to_threshold(self) -> None:
        while self._bytes > self.threshold_bytes and self._objects:
            _addr, obj = self._objects.popitem(last=False)  # oldest first
            self._bytes -= obj.user_size
            self._count_eviction(obj)
            self._release(obj.user_addr)

    def pop_oldest(self) -> Optional[QuarantinedObject]:
        """Really free the single oldest entry (memory-pressure
        relief); returns it, or None when empty."""
        if not self._objects:
            return None
        _addr, obj = self._objects.popitem(last=False)
        self._bytes -= obj.user_size
        self._count_eviction(obj)
        self._release(obj.user_addr)
        if self.observer is not None:
            self.observer(self._bytes, len(self._objects))
        return obj

    def drain(self) -> List[QuarantinedObject]:
        """Really free everything; returns the drained entries.  Each
        release is an eviction and counts as one -- Table 5's eviction
        accounting must not silently skip bulk drains.  Entries are
        drained from the single shared FIFO exactly once each, whatever
        mix of origins is present."""
        drained = list(self._objects.values())
        for obj in drained:
            self._count_eviction(obj)
            self._release(obj.user_addr)
        self._objects.clear()
        self._bytes = 0
        if self.observer is not None:
            self.observer(0, 0)
        return drained

    # ------------------------------------------------------------------

    def snapshot(self) -> tuple:
        # Deep-copy at capture time: QuarantinedObject is mutable, so
        # aliasing the live entries would let post-snapshot mutations
        # (e.g. patch_id reassignment) bleed into old checkpoints.
        return ([replace(o) for o in self._objects.values()],
                self._bytes, self._seq,
                self.accumulated_bytes, self.evictions,
                dict(self.evictions_by_origin))

    def restore(self, snap: tuple) -> None:
        # Seed-era snapshots are 5-tuples without the per-origin split.
        if len(snap) == 5:
            objs, nbytes, seq, acc, ev = snap
            by_origin: Dict[str, int] = {}
        else:
            objs, nbytes, seq, acc, ev, by_origin = snap
        self._objects = OrderedDict(
            (o.user_addr, QuarantinedObject(o.user_addr, o.user_size,
                                            o.free_site, o.seq,
                                            o.canary_filled, o.patch_id,
                                            getattr(o, "origin",
                                                    ORIGIN_PATCH)))
            for o in objs)
        self._bytes = nbytes
        self._seq = seq
        self.accumulated_bytes = acc
        self.evictions = ev
        self.evictions_by_origin = dict(by_origin)
        if self.observer is not None:
            self.observer(self._bytes, len(self._objects))
