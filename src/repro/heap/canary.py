"""Canary patterns.

The paper (Section 1.2) defines a canary as "certain memory content
patterns that are unlikely to appear during normal program execution".
We use the repeated byte ``0xCB``.  Two properties make it effective in
this simulation, mirroring the real system:

* an 8-byte load from a canary-filled region yields
  ``0xCBCBCBCBCBCBCBCB``; dereferencing that as a pointer is far outside
  the mapped heap and faults immediately -- this is how canary-filling
  delay-freed objects turns dangling-pointer *reads* into failures, and
  how canary-filling fresh objects exposes uninitialized reads;
* checking whether a padding or a delay-freed object still holds the
  pattern detects stray *writes* (buffer overflow, dangling-pointer
  write) as "canary corruption", including exactly where it happened.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.heap.base import Memory

CANARY_BYTE = 0xCB


@dataclass
class CanaryStats:
    """Tally of canary activity, for the telemetry registry.

    The allocator extension owns one of these and mirrors it into
    metrics instruments; the check functions update it when passed.
    """

    fills: int = 0
    bytes_filled: int = 0
    checks: int = 0
    bytes_checked: int = 0
    corruptions: int = 0

#: The value an 8-byte little-endian load sees in a canary region.
CANARY_WORD = int.from_bytes(bytes([CANARY_BYTE]) * 8, "little")


def canary_fill(mem: Memory, addr: int, size: int,
                stats: Optional[CanaryStats] = None) -> None:
    """Fill ``[addr, addr+size)`` with the canary pattern."""
    if size > 0:
        mem.fill(addr, CANARY_BYTE, size)
        if stats is not None:
            stats.fills += 1
            stats.bytes_filled += size


def canary_intact(mem: Memory, addr: int, size: int,
                  stats: Optional[CanaryStats] = None) -> bool:
    """True iff the whole region still holds the canary pattern."""
    if size <= 0:
        return True
    if stats is not None:
        stats.checks += 1
        stats.bytes_checked += size
    intact = mem.read_bytes(addr, size) == bytes([CANARY_BYTE]) * size
    if not intact and stats is not None:
        stats.corruptions += 1
    return intact


def corrupted_offsets(mem: Memory, addr: int, size: int,
                      stats: Optional[CanaryStats] = None) -> List[int]:
    """Offsets within the region whose canary byte was overwritten.

    Used to pinpoint *where* an overflow or dangling write landed; the
    offsets feed the bug report's illegal-access summary.
    """
    if size <= 0:
        return []
    if stats is not None:
        stats.checks += 1
        stats.bytes_checked += size
    data = mem.read_bytes(addr, size)
    offs = [i for i, b in enumerate(data) if b != CANARY_BYTE]
    if offs and stats is not None:
        stats.corruptions += 1
    return offs
