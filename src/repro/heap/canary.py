"""Canary patterns.

The paper (Section 1.2) defines a canary as "certain memory content
patterns that are unlikely to appear during normal program execution".
We use the repeated byte ``0xCB``.  Two properties make it effective in
this simulation, mirroring the real system:

* an 8-byte load from a canary-filled region yields
  ``0xCBCBCBCBCBCBCBCB``; dereferencing that as a pointer is far outside
  the mapped heap and faults immediately -- this is how canary-filling
  delay-freed objects turns dangling-pointer *reads* into failures, and
  how canary-filling fresh objects exposes uninitialized reads;
* checking whether a padding or a delay-freed object still holds the
  pattern detects stray *writes* (buffer overflow, dangling-pointer
  write) as "canary corruption", including exactly where it happened.
"""

from __future__ import annotations

from typing import List

from repro.heap.base import Memory

CANARY_BYTE = 0xCB

#: The value an 8-byte little-endian load sees in a canary region.
CANARY_WORD = int.from_bytes(bytes([CANARY_BYTE]) * 8, "little")


def canary_fill(mem: Memory, addr: int, size: int) -> None:
    """Fill ``[addr, addr+size)`` with the canary pattern."""
    if size > 0:
        mem.fill(addr, CANARY_BYTE, size)


def canary_intact(mem: Memory, addr: int, size: int) -> bool:
    """True iff the whole region still holds the canary pattern."""
    if size <= 0:
        return True
    return mem.read_bytes(addr, size) == bytes([CANARY_BYTE]) * size


def corrupted_offsets(mem: Memory, addr: int, size: int) -> List[int]:
    """Offsets within the region whose canary byte was overwritten.

    Used to pinpoint *where* an overflow or dangling write landed; the
    offsets feed the bug report's illegal-access summary.
    """
    if size <= 0:
        return []
    data = mem.read_bytes(addr, size)
    return [i for i, b in enumerate(data) if b != CANARY_BYTE]
