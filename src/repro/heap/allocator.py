"""A Lea-style (dlmalloc-like) allocator over simulated memory.

This is the "underlying memory allocator" the paper's extension relies
on (Section 3).  It reproduces the behaviours the diagnosis physics
depends on:

* boundary-tag headers stored in heap memory (overflows smash them);
* segregated exact-fit bins for small chunks plus a sorted large list,
  with LIFO reuse -- a freed chunk is handed back quickly, which is what
  makes dangling pointers dangerous;
* splitting and coalescing of free chunks;
* a wilderness ("top") area grown with ``sbrk``; fresh pages are zeroed
  by the OS but *reused chunks are never cleared*, so uninitialized
  reads see stale garbage;
* free() validates headers minimally and aborts (raises
  :class:`HeapCorruptionFault`) on blatant corruption or double free,
  like a production glibc.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import HeapCorruptionFault, OutOfMemoryFault
from repro.heap.base import Memory
from repro.heap.chunk import (
    ALIGN,
    HEADER_SIZE,
    MIN_CHUNK,
    ChunkView,
    round_chunk_size,
)

#: Chunks up to this size (inclusive) live in exact-fit bins.
SMALL_MAX = 512


class LeaAllocator:
    """The simulated Lea allocator.

    All sizes below are *chunk* sizes (header included) unless the name
    says ``user``.
    """

    def __init__(self, mem: Memory):
        self.mem = mem
        # Exact-fit bins: chunk size -> LIFO list of chunk addresses.
        self._small_bins: Dict[int, List[int]] = {}
        # Large free chunks as a sorted list of (size, addr).
        self._large: List[Tuple[int, int]] = []
        # Wilderness start.  Everything in [top, brk) is unused.
        self.top = mem.base
        # Size of the chunk physically preceding top (0 if none).
        self._top_prev_size = 0
        # Statistics.
        self.n_mallocs = 0
        self.n_frees = 0
        self.live_user_bytes = 0
        self.peak_heap_bytes = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def malloc(self, user_size: int) -> int:
        """Allocate ``user_size`` bytes; returns the user address.

        Raises :class:`OutOfMemoryFault` when the segment limit is hit.
        Contents of reused chunks are left as-is (stale garbage).
        """
        if user_size < 0:
            raise HeapCorruptionFault(f"malloc of negative size {user_size}")
        need = round_chunk_size(user_size)
        addr = self._take_from_bins(need)
        if addr is None:
            addr = self._take_from_top(need)
        chunk = ChunkView(self.mem, addr)
        chunk.mark_in_use()
        self.n_mallocs += 1
        self.live_user_bytes += chunk.user_size
        self.peak_heap_bytes = max(self.peak_heap_bytes, self.heap_used)
        return chunk.user_addr

    def free(self, user_addr: int) -> None:
        """Return a chunk to the free structures.

        A free of an already-free chunk or of a pointer with a smashed
        header raises :class:`HeapCorruptionFault` -- the simulated
        process crashes, as glibc would abort.  (First-Aid's extension
        intercepts frees *before* this point when a delay-free patch or
        the double-free parameter check is active.)
        """
        if (user_addr - HEADER_SIZE < self.mem.base
                or user_addr >= self.top):
            raise HeapCorruptionFault(
                f"free of wild pointer 0x{user_addr:x}",
                address=user_addr)
        chunk = ChunkView(self.mem, user_addr - HEADER_SIZE)
        chunk.validate(self.mem.base, self.top)
        if not chunk.in_use:
            raise HeapCorruptionFault(
                f"double free or corruption at 0x{user_addr:x}",
                address=user_addr)
        self.n_frees += 1
        self.live_user_bytes -= chunk.user_size
        chunk.mark_free()
        self._coalesce_and_store(chunk)

    def usable_size(self, user_addr: int) -> int:
        return ChunkView(self.mem, user_addr - HEADER_SIZE).user_size

    # ------------------------------------------------------------------
    # introspection (used by heap marking, extension, benchmarks)
    # ------------------------------------------------------------------

    @property
    def heap_used(self) -> int:
        """Bytes between the heap base and the wilderness start."""
        return self.top - self.mem.base

    def iter_free_chunks(self) -> Iterator[ChunkView]:
        """All binned free chunks (not the wilderness)."""
        for size in sorted(self._small_bins):
            for addr in self._small_bins[size]:
                yield ChunkView(self.mem, addr)
        for _size, addr in self._large:
            yield ChunkView(self.mem, addr)

    def free_bytes(self) -> int:
        return sum(c.size for c in self.iter_free_chunks())

    def stats(self) -> Dict[str, int]:
        """Point-in-time allocator statistics, as one mapping (consumed
        by the telemetry heap instruments and the bench harness)."""
        return {
            "mallocs": self.n_mallocs,
            "frees": self.n_frees,
            "live_user_bytes": self.live_user_bytes,
            "heap_used": self.heap_used,
            "peak_heap_bytes": self.peak_heap_bytes,
        }

    # ------------------------------------------------------------------
    # bin management
    # ------------------------------------------------------------------

    def _bin_insert(self, chunk: ChunkView) -> None:
        size = chunk.size
        if size <= SMALL_MAX:
            self._small_bins.setdefault(size, []).append(chunk.addr)
        else:
            bisect.insort(self._large, (size, chunk.addr))

    def _bin_remove(self, addr: int, size: int) -> bool:
        """Remove a specific free chunk from the bins; False if absent."""
        if size <= SMALL_MAX:
            lst = self._small_bins.get(size)
            if lst and addr in lst:
                lst.remove(addr)
                if not lst:
                    del self._small_bins[size]
                return True
            return False
        try:
            self._large.remove((size, addr))
            return True
        except ValueError:
            return False

    def _pop_exact(self, size: int) -> Optional[int]:
        lst = self._small_bins.get(size)
        if not lst:
            return None
        addr = lst.pop()
        if not lst:
            del self._small_bins[size]
        return addr

    # ------------------------------------------------------------------
    # allocation paths
    # ------------------------------------------------------------------

    def _take_from_bins(self, need: int) -> Optional[int]:
        # Exact small-bin hit.
        if need <= SMALL_MAX:
            addr = self._pop_exact(need)
            if addr is not None:
                self._validate_reused(addr, need)
                return addr
            # Next larger small bins, splitting the remainder off.
            for size in range(need + ALIGN, SMALL_MAX + 1, ALIGN):
                addr = self._pop_exact(size)
                if addr is not None:
                    self._validate_reused(addr, size)
                    self._split(addr, size, need)
                    return addr
        # Best-fit search of the large list.
        i = bisect.bisect_left(self._large, (need, 0))
        if i < len(self._large):
            size, addr = self._large.pop(i)
            self._validate_reused(addr, size)
            self._split(addr, size, need)
            return addr
        return None

    def _validate_reused(self, addr: int, expect_size: int) -> None:
        """Check a binned chunk's in-memory header before reuse.

        If an overflow smashed the header while the chunk sat in a bin,
        this is where the process crashes -- the classic delayed
        manifestation of heap corruption.
        """
        chunk = ChunkView(self.mem, addr)
        chunk.validate(self.mem.base, self.top)
        if chunk.in_use or chunk.size != expect_size:
            raise HeapCorruptionFault(
                f"free-list chunk at 0x{addr:x} has corrupted header "
                f"(size={chunk.size}, expected {expect_size})",
                address=addr)

    def _split(self, addr: int, size: int, need: int) -> None:
        """Split chunk [addr, addr+size) keeping ``need`` bytes in front."""
        remainder = size - need
        if remainder < MIN_CHUNK:
            return  # keep the whole chunk; slack stays internal
        chunk = ChunkView(self.mem, addr)
        chunk.set(need, in_use=False, prev_size=chunk.prev_size)
        rest = ChunkView(self.mem, addr + need)
        rest.set(remainder, in_use=False, prev_size=need)
        self._fix_next_prev_size(rest)
        self._bin_insert(rest)

    def _take_from_top(self, need: int) -> int:
        new_top = self.top + need
        while new_top > self.mem.brk:
            if self.mem.sbrk(new_top - self.mem.brk) < 0:
                raise OutOfMemoryFault(
                    f"heap limit reached allocating {need} bytes")
        addr = self.top
        chunk = ChunkView(self.mem, addr)
        chunk.set(need, in_use=False, prev_size=self._top_prev_size)
        self.top = new_top
        self._top_prev_size = need
        return addr

    # ------------------------------------------------------------------
    # free path
    # ------------------------------------------------------------------

    def _coalesce_and_store(self, chunk: ChunkView) -> None:
        addr, size = chunk.addr, chunk.size
        prev_size = chunk.prev_size

        # Backward coalesce.
        if prev_size and addr - prev_size >= self.mem.base:
            prev = ChunkView(self.mem, addr - prev_size)
            if (not prev.in_use and prev.size == prev_size
                    and self._bin_remove(prev.addr, prev_size)):
                addr = prev.addr
                size += prev_size
                prev_size = prev.prev_size

        # Forward coalesce / merge into top.
        next_addr = addr + size
        if next_addr == self.top:
            self.top = addr
            self._top_prev_size = prev_size
            return
        if next_addr < self.top:
            nxt = ChunkView(self.mem, next_addr)
            if (not nxt.in_use and nxt.size >= MIN_CHUNK
                    and self._bin_remove(next_addr, nxt.size)):
                size += nxt.size

        merged = ChunkView(self.mem, addr)
        merged.set(size, in_use=False, prev_size=prev_size)
        self._fix_next_prev_size(merged)
        self._bin_insert(merged)

    def _fix_next_prev_size(self, chunk: ChunkView) -> None:
        next_addr = chunk.next_addr
        if next_addr < self.top:
            ChunkView(self.mem, next_addr).prev_size = chunk.size

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------

    def snapshot(self) -> tuple:
        return (
            {k: list(v) for k, v in self._small_bins.items()},
            list(self._large),
            self.top,
            self._top_prev_size,
            self.n_mallocs,
            self.n_frees,
            self.live_user_bytes,
            self.peak_heap_bytes,
        )

    def restore(self, snap: tuple) -> None:
        (bins, large, top, tps, nm, nf, live, peak) = snap
        self._small_bins = {k: list(v) for k, v in bins.items()}
        self._large = list(large)
        self.top = top
        self._top_prev_size = tps
        self.n_mallocs = nm
        self.n_frees = nf
        self.live_user_bytes = live
        self.peak_heap_bytes = peak
