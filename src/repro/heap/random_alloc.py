"""Randomized allocation for patch validation.

Section 5 of the paper: to distinguish a patch's desired effect from a
lucky side-effect of heap layout, the validation engine re-executes the
buggy region "with a randomized allocation algorithm" and requires the
patch's effect to be *consistent* while object addresses vary.

:class:`RandomizedLeaAllocator` perturbs placement in two seed-dependent
ways without changing the allocator contract:

* exact-fit bin hits pick a random entry instead of the LIFO head;
* carving from the wilderness occasionally inserts a small free "gap"
  chunk first, shifting subsequent addresses.

Different seeds therefore yield different object addresses for the same
allocation sequence, while any given seed remains fully deterministic --
which re-execution requires.
"""

from __future__ import annotations

from typing import Optional

from repro.heap.allocator import LeaAllocator
from repro.heap.base import Memory
from repro.heap.chunk import ALIGN, ChunkView, MIN_CHUNK
from repro.util.rng import DeterministicRNG


class RandomizedLeaAllocator(LeaAllocator):
    """Lea allocator with seed-controlled placement randomization."""

    #: Probability of inserting a gap chunk before a wilderness carve.
    GAP_PROB = 0.5
    #: Gap chunk sizes are drawn from [MIN_CHUNK, MAX_GAP].
    MAX_GAP = 256

    def __init__(self, mem: Memory, seed: int):
        super().__init__(mem)
        self.rng = DeterministicRNG(seed)

    def _pop_exact(self, size: int) -> Optional[int]:
        lst = self._small_bins.get(size)
        if not lst:
            return None
        idx = self.rng.randint(0, len(lst) - 1)
        addr = lst.pop(idx)
        if not lst:
            del self._small_bins[size]
        return addr

    def _take_from_top(self, need: int) -> int:
        if self.rng.random() < self.GAP_PROB:
            gap = self.rng.randint(MIN_CHUNK // ALIGN,
                                   self.MAX_GAP // ALIGN) * ALIGN
            gap_addr = super()._take_from_top(gap)
            self._bin_insert(ChunkView(self.mem, gap_addr))
        return super()._take_from_top(need)

    def snapshot(self) -> tuple:
        return (super().snapshot(), self.rng.getstate())

    def restore(self, snap: tuple) -> None:
        base_snap, rng_state = snap
        super().restore(base_snap)
        self.rng.setstate(rng_state)
