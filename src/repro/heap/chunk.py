"""Boundary-tag chunk layout, stored in simulated memory.

Layout (all little-endian, 16-byte aligned chunks)::

    chunk_addr + 0   u64  size_flags   chunk size incl. header; bit0 = IN_USE
    chunk_addr + 8   u64  prev_size    size of the physically previous chunk
    chunk_addr + 16  ...  user data    (user pointer = chunk_addr + 16)

Because the header lives in the same byte array the program writes
through, a buffer overflow that runs off the end of one object smashes
the next chunk's ``size_flags`` -- and the allocator later trips over it
exactly the way dlmalloc does.  That in-memory corruption path is what
several of the paper's bug manifestations depend on, so it cannot be
replaced by Python-side bookkeeping.
"""

from __future__ import annotations

from repro.errors import HeapCorruptionFault
from repro.heap.base import Memory

HEADER_SIZE = 16
ALIGN = 16
MIN_CHUNK = 32  # header + minimal 16-byte payload

FLAG_IN_USE = 0x1
_FLAG_MASK = 0xF


def round_chunk_size(payload: int) -> int:
    """Chunk size needed for ``payload`` user bytes."""
    need = max(payload, 1) + HEADER_SIZE
    size = (need + ALIGN - 1) // ALIGN * ALIGN
    return max(size, MIN_CHUNK)


class ChunkView:
    """Read/write access to one chunk header in memory.

    A lightweight cursor, not an owner: it validates on demand and
    raises :class:`HeapCorruptionFault` when the header is insane, which
    is the simulated analogue of glibc's abort-on-corruption.
    """

    __slots__ = ("mem", "addr")

    def __init__(self, mem: Memory, addr: int):
        self.mem = mem
        self.addr = addr

    # -- raw fields ----------------------------------------------------

    @property
    def size_flags(self) -> int:
        return self.mem.read_uint(self.addr, 8)

    @size_flags.setter
    def size_flags(self, value: int) -> None:
        self.mem.write_uint(self.addr, 8, value)

    @property
    def prev_size(self) -> int:
        return self.mem.read_uint(self.addr + 8, 8)

    @prev_size.setter
    def prev_size(self, value: int) -> None:
        self.mem.write_uint(self.addr + 8, 8, value)

    # -- derived -------------------------------------------------------

    @property
    def size(self) -> int:
        return self.size_flags & ~_FLAG_MASK

    @property
    def in_use(self) -> bool:
        return bool(self.size_flags & FLAG_IN_USE)

    @property
    def user_addr(self) -> int:
        return self.addr + HEADER_SIZE

    @property
    def user_size(self) -> int:
        return self.size - HEADER_SIZE

    @property
    def next_addr(self) -> int:
        return self.addr + self.size

    def set(self, size: int, in_use: bool, prev_size: int) -> None:
        self.size_flags = size | (FLAG_IN_USE if in_use else 0)
        self.prev_size = prev_size

    def mark_free(self) -> None:
        self.size_flags = self.size_flags & ~FLAG_IN_USE

    def mark_in_use(self) -> None:
        self.size_flags = self.size_flags | FLAG_IN_USE

    def validate(self, heap_base: int, heap_top: int) -> None:
        """Sanity-check the header, faulting on corruption.

        Called by the allocator before trusting a header it is about to
        operate on (free, coalesce, bin reuse)."""
        size = self.size
        if size < MIN_CHUNK or size % ALIGN:
            raise HeapCorruptionFault(
                f"invalid chunk size {size} at 0x{self.addr:x}",
                address=self.addr)
        if self.addr < heap_base or self.addr + size > heap_top:
            raise HeapCorruptionFault(
                f"chunk at 0x{self.addr:x} size {size} escapes heap",
                address=self.addr)

    def __repr__(self) -> str:
        return (f"Chunk(0x{self.addr:x}, size={self.size}, "
                f"in_use={self.in_use})")
