"""Flat byte-addressable simulated memory.

One :class:`Memory` instance is the heap segment of a simulated process.
It starts at :data:`HEAP_BASE` and grows upward through :meth:`sbrk`,
like a classic Unix data segment.  Any access outside ``[base, brk)`` --
including the low "NULL page" region -- raises
:class:`~repro.errors.SegmentationFault`.  Accesses *inside* the break
never fault even if they hit free chunks or allocator metadata; that is
precisely how dangling pointers and overflows corrupt state silently in
a real process.

The memory records which pages have been written since the last
:meth:`clear_dirty` call.  The checkpoint manager uses this as the
copy-on-write page set: the paper's Flashback checkpointing only copies
pages dirtied in each interval, and Tables 6-7 measure exactly that.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Set

from repro.errors import SegmentationFault

PAGE_SIZE = 4096

#: Base virtual address of the simulated heap.  Chosen high enough that
#: small integers, canary-derived garbage values, and NULL all fault.
HEAP_BASE = 0x0010_0000

#: Default ceiling for heap growth (64 MiB of simulated heap).
DEFAULT_LIMIT = 64 * 1024 * 1024


class Memory:
    """The simulated heap segment.

    Addresses are plain ints in a 64-bit space.  Only ``[base, brk)`` is
    mapped.  Reads of freshly grown pages return zeros (as from the OS);
    reused bytes keep their previous contents (as from a real allocator).
    """

    __slots__ = ("base", "limit", "_buf", "_dirty_pages", "version")

    def __init__(self, base: int = HEAP_BASE, limit: int = DEFAULT_LIMIT):
        if base % PAGE_SIZE:
            raise ValueError("heap base must be page aligned")
        self.base = base
        self.limit = limit
        self._buf = bytearray()
        self._dirty_pages: Set[int] = set()
        #: Bumped on every wholesale restore/overlay.  The checkpoint
        #: manager uses this to detect that the segment was rewritten
        #: behind its back (e.g. by a direct Process.restore), in which
        #: case its dirty-page bookkeeping no longer describes the
        #: delta against the last checkpoint.
        self.version = 0

    # ------------------------------------------------------------------
    # segment management
    # ------------------------------------------------------------------

    @property
    def brk(self) -> int:
        """Current program break (first unmapped address)."""
        return self.base + len(self._buf)

    @property
    def mapped_bytes(self) -> int:
        return len(self._buf)

    def sbrk(self, delta: int) -> int:
        """Grow the segment by ``delta`` bytes (rounded up to pages).

        Returns the old break, like the Unix call.  Shrinking is not
        supported (the Lea allocator here never trims).
        """
        if delta < 0:
            raise ValueError("sbrk shrink not supported")
        old_brk = self.brk
        grow = -(-delta // PAGE_SIZE) * PAGE_SIZE
        if len(self._buf) + grow > self.limit:
            return -1  # allocator turns this into OutOfMemoryFault
        self._buf.extend(b"\x00" * grow)
        return old_brk

    def is_mapped(self, addr: int, size: int = 1) -> bool:
        return self.base <= addr and addr + size <= self.brk and size >= 0

    def _check(self, addr: int, size: int) -> int:
        """Translate ``addr`` to a buffer offset or fault."""
        off = addr - self.base
        if off < 0 or size < 0 or off + size > len(self._buf):
            raise SegmentationFault(
                f"access of {size} byte(s) outside [0x{self.base:x}, "
                f"0x{self.brk:x})", address=addr)
        return off

    # ------------------------------------------------------------------
    # raw access
    # ------------------------------------------------------------------

    def read_bytes(self, addr: int, size: int) -> bytes:
        off = self._check(addr, size)
        return bytes(self._buf[off:off + size])

    def write_bytes(self, addr: int, data: bytes) -> None:
        off = self._check(addr, len(data))
        self._buf[off:off + len(data)] = data
        self._mark_dirty(off, len(data))

    def read_uint(self, addr: int, size: int) -> int:
        off = self._check(addr, size)
        return int.from_bytes(self._buf[off:off + size], "little")

    def write_uint(self, addr: int, size: int, value: int) -> None:
        off = self._check(addr, size)
        self._buf[off:off + size] = (value & ((1 << (8 * size)) - 1)
                                     ).to_bytes(size, "little")
        self._mark_dirty(off, size)

    def fill(self, addr: int, byte: int, size: int) -> None:
        off = self._check(addr, size)
        self._buf[off:off + size] = bytes([byte & 0xFF]) * size
        self._mark_dirty(off, size)

    def copy_within(self, dst: int, src: int, size: int) -> None:
        data = self.read_bytes(src, size)
        self.write_bytes(dst, data)

    # ------------------------------------------------------------------
    # dirty-page (COW) accounting
    # ------------------------------------------------------------------

    def _mark_dirty(self, off: int, size: int) -> None:
        first = off // PAGE_SIZE
        last = (off + max(size, 1) - 1) // PAGE_SIZE
        self._dirty_pages.update(range(first, last + 1))

    @property
    def dirty_pages(self) -> FrozenSet[int]:
        return frozenset(self._dirty_pages)

    @property
    def dirty_page_count(self) -> int:
        return len(self._dirty_pages)

    def clear_dirty(self) -> None:
        self._dirty_pages.clear()

    # ------------------------------------------------------------------
    # snapshot / restore (used by checkpointing)
    # ------------------------------------------------------------------

    @property
    def page_count(self) -> int:
        """Number of mapped pages (``sbrk`` keeps the break
        page-aligned, so the segment is always a whole page multiple)."""
        return len(self._buf) // PAGE_SIZE

    def snapshot(self) -> tuple:
        """An opaque, immutable snapshot of the segment contents."""
        return (bytes(self._buf), frozenset(self._dirty_pages))

    def restore(self, snap: tuple) -> None:
        buf, dirty = snap
        self._buf = bytearray(buf)
        self._dirty_pages = set(dirty)
        self.version += 1

    # ------------------------------------------------------------------
    # page-granular snapshot / overlay (incremental checkpointing)
    # ------------------------------------------------------------------

    def copy_pages(self, indices: Iterable[int]) -> Dict[int, bytes]:
        """Immutable copies of the given pages, keyed by page index.

        This is the capture half of an incremental checkpoint: the
        caller passes the dirty-page set and pays O(dirty) instead of
        O(heap).  Slices go through one :class:`memoryview` so each
        page costs a single copy.
        """
        view = memoryview(self._buf)
        try:
            return {idx: bytes(view[idx * PAGE_SIZE:(idx + 1) * PAGE_SIZE])
                    for idx in indices}
        finally:
            view.release()

    def load_pages(self, mapped_bytes: int, pages: Mapping[int, bytes],
                   dirty: Iterable[int] = ()) -> None:
        """Resize the segment to ``mapped_bytes`` and overlay ``pages``.

        The restore half of an incremental rollback: only the pages
        known to differ from the target state need to be supplied;
        everything else keeps its current contents.  Growth fills with
        zeros (matching :meth:`sbrk`); shrinking truncates (rollback to
        an older, smaller break).
        """
        if mapped_bytes % PAGE_SIZE:
            raise ValueError("mapped size must be page aligned")
        buf = self._buf
        if len(buf) > mapped_bytes:
            del buf[mapped_bytes:]
        elif len(buf) < mapped_bytes:
            buf.extend(bytes(mapped_bytes - len(buf)))
        for idx, payload in pages.items():
            off = idx * PAGE_SIZE
            buf[off:off + len(payload)] = payload
        self._dirty_pages = set(dirty)
        self.version += 1
