"""FirstAidRuntime: the public entry point.

Ties together the whole working scenario of Figure 1: run the program
under periodic checkpointing; when an error monitor catches a failure,
diagnose it, generate and apply runtime patches, recover by re-executing
from the identified checkpoint with the patches active, then validate
the patches on a clone (off the recovery path) and produce a bug
report.  Patches persist in the pool -- optionally on disk -- so
subsequent failures from the same bug never happen.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.checkpoint.manager import DEFAULT_INTERVAL, CheckpointManager
from repro.core.diagnosis import Diagnosis, DiagnosticEngine, Verdict
from repro.core.patches import PatchPolicy, PatchPool
from repro.core.report import BugReport
from repro.core.validation import ValidationEngine, ValidationResult
from repro.heap.base import DEFAULT_LIMIT
from repro.heap.extension import ExtensionMode
from repro.heap.quarantine import DEFAULT_THRESHOLD
from repro.monitors import ErrorMonitor, FailureEvent, default_monitors
from repro.obs.telemetry import Telemetry
from repro.errors import StoreError
from repro.parallel.executor import make_executor
from repro.process import Process
from repro.store import SharedPatchStore
from repro.util.events import EventLog
from repro.util.simclock import CostModel
from repro.vm.io import ReplayableInput
from repro.vm.machine import RunReason, RunResult
from repro.vm.program import Program


@dataclass
class FirstAidConfig:
    """Tunables, with the paper's experimental defaults."""

    checkpoint_interval: int = DEFAULT_INTERVAL      # 200 ms equivalent
    max_checkpoints: int = 64
    adaptive_checkpointing: bool = True
    #: Incremental (delta/keyframe) checkpointing: each checkpoint
    #: stores only the pages dirtied since the previous one, with a
    #: full keyframe every ``keyframe_every`` checkpoints bounding the
    #: restore chain.  Disable to reproduce the seed's full-copy
    #: behaviour for A/B measurements.
    incremental_checkpoints: bool = True
    keyframe_every: int = 8
    overhead_target: float = 0.05                    # T_overhead
    max_interval: int = 20 * DEFAULT_INTERVAL        # T_checkpoint
    window_intervals: int = 3          # failure-region length (Sec 4.1)
    max_checkpoint_search: int = 8     # phase-1 rollback budget
    max_rollbacks: int = 200           # diagnosis timeout
    validate: bool = True
    validation_iterations: int = 3
    quarantine_threshold: int = DEFAULT_THRESHOLD    # 1 MB
    #: Memory-pressure failsafe: total bytes runtime patches may hold
    #: (padding + delay-freed objects) before patching is disabled and
    #: the oldest delay-freed objects are released.  None = unlimited.
    max_patch_memory: Optional[int] = None
    heap_limit: int = DEFAULT_LIMIT
    pool_path: Optional[str] = None    # persistent patch pool (JSON)
    #: Crash-safe *shared* patch store (repro.store, DESIGN.md §9):
    #: merge-on-write, file-locked, survives concurrent processes of
    #: the same program.  Patches publish on creation and validation,
    #: failed validation retracts them fleet-wide, and a periodic
    #: refresh (every ``store_refresh_boundaries`` checkpoint
    #: boundaries) absorbs patches other processes published mid-run.
    #: Prefer this over ``pool_path`` whenever more than one process
    #: may run the program.
    store_path: Optional[str] = None
    store_refresh_boundaries: int = 2
    max_recovery_attempts: int = 2
    entropy_seed: int = 1
    #: Worker processes for the parallel recovery engine.  1 (default)
    #: keeps every re-execution in-process on the original serial
    #: paths; >1 fans diagnosis probes and validation runs out across
    #: a fork-based worker pool (see repro.parallel and DESIGN.md §8).
    #: Diagnoses, patches, and verdicts are byte-identical either way;
    #: simulated recovery/validation times are charged max-over-workers.
    workers: int = 1
    #: Enable the telemetry subsystem (metrics registry, span tracing,
    #: flight recorder).  Off by default: production overhead first.
    telemetry: bool = False
    #: Ring-buffer bound on the runtime's event log in normal mode
    #: (None = unbounded, the pre-telemetry behaviour).  Long normal
    #: runs emit one checkpoint event per interval forever; the bound
    #: keeps the log's footprint constant.
    max_events: Optional[int] = 4096


@dataclass
class RecoveryRecord:
    """One failure's handling, start to finish (one Table 3 row)."""

    failure: FailureEvent
    diagnosis: Optional[Diagnosis] = None
    recovery_time_ns: int = 0
    validation: Optional[ValidationResult] = None
    report: Optional[BugReport] = None
    succeeded: bool = False
    notes: List[str] = field(default_factory=list)
    #: real wall-clock seconds handling this failure (host time; the
    #: parallel benchmark compares this across backends).
    wall_s: float = 0.0


@dataclass
class SessionResult:
    """Outcome of FirstAidRuntime.run()."""

    reason: str                 # "halt" | "input" | "budget" | "died"
    recoveries: List[RecoveryRecord] = field(default_factory=list)

    @property
    def survived_all(self) -> bool:
        return all(r.succeeded for r in self.recoveries)


class FirstAidRuntime:
    """Run one program under First-Aid."""

    def __init__(self, program: Program,
                 input_tokens: Optional[Iterable[int]] = None,
                 input_stream: Optional[ReplayableInput] = None,
                 config: Optional[FirstAidConfig] = None,
                 pool: Optional[PatchPool] = None,
                 monitors: Optional[List[ErrorMonitor]] = None,
                 costs: Optional[CostModel] = None,
                 events: Optional[EventLog] = None,
                 telemetry: Optional[Telemetry] = None):
        self.config = config or FirstAidConfig()
        self.telemetry = (telemetry if telemetry is not None
                          else Telemetry(enabled=self.config.telemetry))
        self.events = events if events is not None \
            else EventLog(max_events=self.config.max_events)
        self.pool = pool or self._load_pool(program.name)
        #: Shared patch store (None without config.store_path).  The
        #: startup sync runs before the policy is built, so a patch any
        #: peer already published prevents its bug from this process's
        #: very first instruction.
        self.store = None
        self._store_generation = -1
        self._boundaries_since_refresh = 0
        if self.config.store_path:
            self.store = SharedPatchStore(self.config.store_path,
                                          program.name)
            self._store_sync(initial=True)
        self.process = Process(
            program,
            input_tokens=input_tokens,
            input_stream=input_stream,
            mode=ExtensionMode.NORMAL,
            policy=None,
            costs=costs,
            heap_limit=self.config.heap_limit,
            quarantine_threshold=self.config.quarantine_threshold,
            entropy_seed=self.config.entropy_seed,
        )
        self.policy = PatchPolicy(self.pool)
        self.process.extension.policy = self.policy
        self.process.extension.patch_memory_limit = \
            self.config.max_patch_memory
        self.process.attach_telemetry(self.telemetry)
        if self.telemetry.enabled:
            self.events.tap = self.telemetry.recorder.record_event
        self.manager = CheckpointManager(
            self.process,
            interval=self.config.checkpoint_interval,
            max_keep=self.config.max_checkpoints,
            adaptive=self.config.adaptive_checkpointing,
            overhead_target=self.config.overhead_target,
            max_interval=self.config.max_interval,
            events=self.events,
            incremental=self.config.incremental_checkpoints,
            keyframe_every=self.config.keyframe_every,
            telemetry=self.telemetry,
        )
        self.monitors = monitors if monitors is not None \
            else default_monitors()
        #: Execution backend shared by diagnosis and validation; None
        #: (workers <= 1) keeps the legacy in-process serial paths.
        self.executor = make_executor(self.config.workers, program,
                                      self.telemetry)
        self.validator = ValidationEngine(
            self.config.validation_iterations, self.events,
            telemetry=self.telemetry, executor=self.executor,
            store=self.store)
        self.recoveries: List[RecoveryRecord] = []
        if self.store is not None:
            self.manager.on_boundary = self._store_refresh_tick

    def close(self) -> None:
        """Shut down the worker pool (no-op in serial mode)."""
        if self.executor is not None:
            self.executor.close()

    def _load_pool(self, program_name: str) -> PatchPool:
        path = self.config.pool_path
        if path:
            return PatchPool.load_or_create(path, program_name)
        return PatchPool(program_name)

    # ------------------------------------------------------------------
    # shared patch store (DESIGN.md §9)
    # ------------------------------------------------------------------

    def _store_sync(self, initial: bool = False) -> None:
        """Absorb the shared store into the local pool (and drop
        retracted patches); refreshes the policy when anything
        changed.  Store failures are logged, never raised: a broken
        shared file must not take down this process."""
        try:
            changed, generation = self.store.sync_into(self.pool)
        except StoreError as exc:
            self.events.emit(0, "store.error", op="sync",
                             error=str(exc))
            return
        self._store_generation = generation
        if changed and not initial:
            self.policy.refresh()
            self.events.emit(self.process.clock.now_ns, "store.refresh",
                             generation=generation,
                             patches=len(self.pool))

    def _store_refresh_tick(self) -> None:
        """Checkpoint-boundary hook: every
        ``store_refresh_boundaries``-th boundary, poll the store
        generation and merge if a peer published or retracted."""
        self._boundaries_since_refresh += 1
        if self._boundaries_since_refresh \
                < self.config.store_refresh_boundaries:
            return
        self._boundaries_since_refresh = 0
        try:
            generation = self.store.generation()
        except StoreError as exc:
            self.events.emit(0, "store.error", op="poll",
                             error=str(exc))
            return
        if generation != self._store_generation:
            self._store_sync()

    def _store_publish(self, patches) -> None:
        if self.store is None or not patches:
            return
        try:
            state = self.store.publish(patches)
        except StoreError as exc:
            self.events.emit(0, "store.error", op="publish",
                             error=str(exc))
            return
        self._store_generation = state.generation
        self.events.emit(self.process.clock.now_ns, "store.published",
                         keys=[p.key for p in patches],
                         generation=state.generation)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self, max_steps: Optional[int] = None) -> SessionResult:
        """Run until the program finishes (halt or input exhausted),
        the optional step budget runs out, or an unrecoverable failure
        kills it."""
        budget = max_steps
        while True:
            start = self.process.instr_count
            result = self.manager.run(max_steps=budget)
            if budget is not None:
                budget -= self.process.instr_count - start
            if result.reason is RunReason.HALT:
                return self._finish(SessionResult("halt", self.recoveries))
            if result.reason is RunReason.INPUT_EXHAUSTED:
                return self._finish(SessionResult("input", self.recoveries))
            if result.reason is RunReason.STOP:
                return self._finish(SessionResult("budget",
                                                  self.recoveries))
            failure = self._detect_failure(result)
            if failure is None:
                # A fault no monitor claims: treat as fatal.
                return self._finish(SessionResult("died", self.recoveries))
            record = self._handle_failure(failure)
            self.recoveries.append(record)
            if not record.succeeded:
                return self._finish(SessionResult("died", self.recoveries))

    def _finish(self, session: SessionResult) -> SessionResult:
        """Session-exit bookkeeping: push this process's trigger counts
        to the shared store (merge keeps the max), after a final sync
        so a peer's retraction is honored rather than resurrected."""
        if self.store is not None and len(self.pool):
            self._store_sync()
            self._store_publish(self.pool.patches())
        return session

    def _detect_failure(self, result: RunResult) -> Optional[FailureEvent]:
        for monitor in self.monitors:
            event = monitor.check(result, self.process)
            if event is not None:
                self.events.emit(self.process.clock.now_ns,
                                 "failure.detected",
                                 detail=event.describe())
                return event
        return None

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------

    def _handle_failure(self, failure: FailureEvent) -> RecoveryRecord:
        with self.telemetry.span("recovery",
                                 failure=failure.describe()) as span:
            started = time.perf_counter()
            record = self._handle_failure_traced(failure)
            record.wall_s = time.perf_counter() - started
            span.set(succeeded=record.succeeded,
                     recovery_time_ns=record.recovery_time_ns)
            return record

    def _handle_failure_traced(self,
                               failure: FailureEvent) -> RecoveryRecord:
        record = RecoveryRecord(failure=failure)
        t_start = self.process.clock.now_ns
        diag_log = EventLog(max_events=self.config.max_events)
        engine = DiagnosticEngine(
            self.process, self.manager, self.pool, diag_log,
            max_checkpoint_search=self.config.max_checkpoint_search,
            window_intervals=self.config.window_intervals,
            max_rollbacks=self.config.max_rollbacks,
            telemetry=self.telemetry,
            executor=self.executor)
        diagnosis = engine.diagnose(failure)
        record.diagnosis = diagnosis
        for event in diag_log:
            self.events.emit(event.time_ns, event.kind, **event.data)

        if diagnosis.verdict is Verdict.NONDETERMINISTIC:
            # The plain re-execution already carried the program past
            # the failure region; let it continue normally.
            self._back_to_normal()
            record.recovery_time_ns = self.process.clock.now_ns - t_start
            record.succeeded = True
            record.notes.append("nondeterministic failure; no patch")
            return record

        if diagnosis.verdict is Verdict.NON_PATCHABLE:
            record.recovery_time_ns = self.process.clock.now_ns - t_start
            record.notes.append("diagnosis could not patch this bug")
            return record

        # PATCHED: recover by re-executing from the identified
        # checkpoint with the new patches active.
        self.policy.refresh()
        window_end = (failure.instr_count
                      + self.config.window_intervals
                      * self.manager.interval)
        recovered = self._recover(diagnosis, window_end)
        record.recovery_time_ns = self.process.clock.now_ns - t_start
        record.succeeded = recovered
        if not recovered:
            record.notes.append("patched re-execution failed again")
            return record
        self.events.emit(self.process.clock.now_ns, "recovery.done",
                         time_s=record.recovery_time_ns / 1e9,
                         patches=len(diagnosis.patches))
        if self.config.pool_path:
            self.pool.save(self.config.pool_path)
        # Publish on creation: peers start preventing this bug while we
        # are still validating (a failed validation retracts below).
        self._store_publish(diagnosis.patches)

        # Validation + report, off the recovery path (clone-based).
        if self.config.validate and diagnosis.checkpoint is not None:
            validation = self.validator.validate(
                self.process, diagnosis.checkpoint, self.pool,
                window_end, under_test=diagnosis.patches)
            record.validation = validation
            if not validation.consistent:
                # The validator already retracted them from the shared
                # store; drop them locally too.
                for patch in diagnosis.patches:
                    self.pool.remove(patch.patch_id)
                self.policy.refresh()
                self.events.emit(self.process.clock.now_ns,
                                 "validation.failed",
                                 reasons=validation.reasons)
                record.notes.append(
                    "validation failed; patches removed: "
                    + "; ".join(validation.reasons))
            else:
                for patch in diagnosis.patches:
                    patch.validated = True
                if self.config.pool_path:
                    self.pool.save(self.config.pool_path)
                # Publish on validation: the validated flag is sticky
                # in the store's merge, making the patch trustworthy
                # fleet-wide.
                self._store_publish(diagnosis.patches)
        flight = None
        if self.telemetry.enabled:
            flight = self.telemetry.recorder.snapshot(
                self.process.clock.now_ns)
        record.report = BugReport(
            program_name=self.process.program.name,
            diagnosis=diagnosis,
            recovery_time_ns=record.recovery_time_ns,
            validation=record.validation,
            diagnosis_log=diag_log,
            flight=flight)
        return record

    def _recover(self, diagnosis: Diagnosis, window_end: int) -> bool:
        """Re-execute from the diagnosis checkpoint in normal mode with
        patches applied; True when the failure region is passed."""
        checkpoint = diagnosis.checkpoint
        for attempt in range(self.config.max_recovery_attempts):
            with self.telemetry.span("recovery.attempt",
                                     attempt=attempt) as att_span:
                with self.telemetry.span("rollback",
                                         to_index=checkpoint.index):
                    self.manager.rollback_to(checkpoint)
                self.manager.drop_after(checkpoint)
                self._back_to_normal()
                self.process.reseed_entropy(
                    self.config.entropy_seed + 7000 + attempt)
                with self.telemetry.span("reexec"):
                    result = self.process.run(stop_at=window_end)
                passed = result.reason in (RunReason.STOP, RunReason.HALT,
                                           RunReason.INPUT_EXHAUSTED)
                att_span.set(passed=passed)
            if passed:
                return True
        return False

    def _back_to_normal(self) -> None:
        self.process.set_mode(ExtensionMode.NORMAL, self.policy)
        self.process.machine.trace_accesses = False
        self.process.extension.trace_mm = False
