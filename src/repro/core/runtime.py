"""FirstAidRuntime: the public entry point.

Ties together the whole working scenario of Figure 1: run the program
under periodic checkpointing; when an error monitor catches a failure,
diagnose it, generate and apply runtime patches, recover by re-executing
from the identified checkpoint with the patches active, then validate
the patches on a clone (off the recovery path) and produce a bug
report.  Patches persist in the pool -- optionally on disk -- so
subsequent failures from the same bug never happen.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.checkpoint.manager import DEFAULT_INTERVAL, CheckpointManager
from repro.core.diagnosis import Diagnosis, DiagnosticEngine, Verdict
from repro.core.patches import PatchPolicy, PatchPool
from repro.core.report import BugReport
from repro.core.validation import ValidationEngine, ValidationResult
from repro.heap.base import DEFAULT_LIMIT
from repro.heap.extension import ExtensionMode
from repro.heap.quarantine import DEFAULT_THRESHOLD
from repro.monitors import ErrorMonitor, FailureEvent, default_monitors
from repro.obs.health import (
    LATENCY_BOUNDS,
    RECOVERY_BOUNDS,
    HealthBeacon,
    HealthChannel,
    health_path,
)
from repro.obs.metrics import Histogram
from repro.obs.telemetry import Telemetry
from repro.errors import StoreError
from repro.parallel.executor import make_executor
from repro.process import Process
from repro.store import SharedPatchStore, TornWriteCrash
from repro.util.events import EventLog
from repro.util.simclock import CostModel
from repro.vm.io import ReplayableInput
from repro.vm.machine import RunReason, RunResult
from repro.vm.program import Program


@dataclass
class FirstAidConfig:
    """Tunables, with the paper's experimental defaults."""

    checkpoint_interval: int = DEFAULT_INTERVAL      # 200 ms equivalent
    max_checkpoints: int = 64
    adaptive_checkpointing: bool = True
    #: Incremental (delta/keyframe) checkpointing: each checkpoint
    #: stores only the pages dirtied since the previous one, with a
    #: full keyframe every ``keyframe_every`` checkpoints bounding the
    #: restore chain.  Disable to reproduce the seed's full-copy
    #: behaviour for A/B measurements.
    incremental_checkpoints: bool = True
    keyframe_every: int = 8
    overhead_target: float = 0.05                    # T_overhead
    max_interval: int = 20 * DEFAULT_INTERVAL        # T_checkpoint
    window_intervals: int = 3          # failure-region length (Sec 4.1)
    max_checkpoint_search: int = 8     # phase-1 rollback budget
    max_rollbacks: int = 200           # diagnosis timeout
    validate: bool = True
    validation_iterations: int = 3
    quarantine_threshold: int = DEFAULT_THRESHOLD    # 1 MB
    #: Memory-pressure failsafe: total bytes runtime patches may hold
    #: (padding + delay-freed objects) before patching is disabled and
    #: the oldest delay-freed objects are released.  None = unlimited.
    max_patch_memory: Optional[int] = None
    heap_limit: int = DEFAULT_LIMIT
    pool_path: Optional[str] = None    # persistent patch pool (JSON)
    #: Crash-safe *shared* patch store (repro.store, DESIGN.md §9):
    #: merge-on-write, file-locked, survives concurrent processes of
    #: the same program.  Patches publish on creation and validation,
    #: failed validation retracts them fleet-wide, and a periodic
    #: refresh (every ``store_refresh_boundaries`` checkpoint
    #: boundaries) absorbs patches other processes published mid-run.
    #: Prefer this over ``pool_path`` whenever more than one process
    #: may run the program.
    store_path: Optional[str] = None
    store_refresh_boundaries: int = 2
    #: Fleet health plane (repro.obs.health, DESIGN.md §12).  With a
    #: shared store configured, the runtime publishes a
    #: :class:`~repro.obs.health.HealthBeacon` into ``<store>.health``
    #: at every store-refresh boundary and at session exit.  Health
    #: failures degrade (``health.error`` events), never raise.
    health: bool = True
    #: Stable fleet identity for this process's beacons.  Defaults to
    #: ``<program>#<pid>``, which is fine for ad-hoc runs; harnesses
    #: that need deterministic reports pass role labels ("leader-0",
    #: "follower-1") so serial and forked fleets aggregate identically.
    process_label: Optional[str] = None
    #: Optional :class:`~repro.obs.health.HealthFaultPlan` armed
    #: against the health channel only (the patch store keeps its own
    #: plan); the chaos harness uses it to prove beacon corruption
    #: never touches recovery.
    health_faults: Optional[object] = None
    max_recovery_attempts: int = 2
    entropy_seed: int = 1
    #: Worker processes for the parallel recovery engine.  1 (default)
    #: keeps every re-execution in-process on the original serial
    #: paths; >1 fans diagnosis probes and validation runs out across
    #: a fork-based worker pool (see repro.parallel and DESIGN.md §8).
    #: Diagnoses, patches, and verdicts are byte-identical either way;
    #: simulated recovery/validation times are charged max-over-workers.
    workers: int = 1
    #: Enable the telemetry subsystem (metrics registry, span tracing,
    #: flight recorder).  Off by default: production overhead first.
    telemetry: bool = False
    #: Ring-buffer bound on the runtime's event log in normal mode
    #: (None = unbounded, the pre-telemetry behaviour).  Long normal
    #: runs emit one checkpoint event per interval forever; the bound
    #: keeps the log's footprint constant.
    max_events: Optional[int] = 4096
    #: Graceful-degradation ladder (repro.supervisor, DESIGN.md §10).
    #: On: every failure runs through the rung sequence targeted patch
    #: -> prevent-all -> plain rollback -> restart, so a failure the
    #: targeted path cannot handle degrades instead of killing the
    #: session.  The no-escalation path (rung 1 succeeds) is
    #: byte-identical to supervisor=False.
    supervisor: bool = True
    #: Highest ladder rung the supervisor may try (1..4).  Below 4 the
    #: restart floor is disallowed too -- exhausting the allowed rungs
    #: then kills the session exactly like supervisor=False.
    max_rungs: int = 4
    #: Per-failure recovery budget in *simulated* nanoseconds (the same
    #: clock recovery_time_ns is measured on; parallel re-executions
    #: charge max-over-workers, §8).  Rung 1 always runs; rungs 2-3 are
    #: skipped once the budget is spent.  The restart floor is
    #: budget-exempt.  None = unbounded.
    recovery_budget_ns: Optional[int] = None
    #: Restart-floor bound: total rung-4 restarts per session.
    max_restarts: int = 16
    #: Request boundaries (input-cursor positions) for restart resync:
    #: rung 4 drops the in-flight request and resumes the stream at the
    #: first boundary past the crash cursor, mirroring
    #: repro.baselines.restart.  None resumes exactly where the stream
    #: stands.
    restart_boundaries: Optional[List[int]] = None
    #: Optional :class:`~repro.chaos.ChaosPlan`: armed faults injected
    #: at the checkpoint/diagnosis/validation/worker/monitor layers
    #: (repro.chaos).  None (default) compiles every hook to a no-op
    #: check off the per-instruction path.
    chaos: Optional[object] = None
    #: Host-side deadline (seconds) per worker task result; a hung
    #: worker past it is abandoned and the task rescued in-process.
    #: None waits forever (the pre-chaos behaviour).
    worker_timeout_s: Optional[float] = None
    #: VM execution tier ("reference" or "compiled", see
    #: repro.vm.compile).  The compiled template-JIT tier is observably
    #: identical -- snapshots, sim time, fault sites, telemetry -- and
    #: exists purely for wall-clock speed; every re-execution the
    #: runtime performs (diagnosis probes, validation runs, forked
    #: worker tasks) inherits the tier.  Tests default to the reference
    #: interpreter; benches opt into "compiled".
    vm_tier: str = "reference"
    #: Diagnosis search policy (repro.search, DESIGN.md §13).
    #: "fixed" is the legacy schedule; "pruned" adds static bytecode
    #: feasibility masks + call-site arm pruning (fewer probes
    #: consumed); "bandit" additionally shapes the parallel executor's
    #: speculation with a deterministic UCB1 bandit (fewer probes
    #: executed at workers > 1).  The produced Diagnosis is
    #: byte-identical under all three.
    search_policy: str = "fixed"
    #: Health-gated staged rollout (repro.rollout, DESIGN.md §14).
    #: Off (default): every store patch is adopted by everyone -- the
    #: pre-rollout behavior, byte-identical digests.  On: patches this
    #: process diagnoses publish at STAGED; only the canary cohort
    #: (hash of ``process_label`` under ``canary_fraction``) absorbs
    #: pre-fleet-wide patches, and a patch the fleet rolled back is
    #: never (re-)adopted for the rest of this session.
    rollout: bool = False
    canary_fraction: float = 0.25
    #: Promotion gates (see repro.rollout.machine.RolloutConfig), all
    #: in simulated nanoseconds.
    rollout_min_observe_ns: int = 200_000_000
    rollout_max_failure_rate: float = 0.0
    rollout_max_latency_p99_ns: int = 10_000_000_000
    rollout_min_canary: int = 1
    #: Run the promotion controller inside this process (at store-
    #: refresh boundaries and session exit).  Any process may carry
    #: it -- decisions are a pure function of store + beacons, and
    #: stage writes merge monotonically -- but benches typically
    #: designate one.
    rollout_controller: bool = False
    #: Sampled always-on detection (repro.sampling, DESIGN.md §15).
    #: 0 (default) attaches nothing: every code path is byte-identical
    #: to the pre-sampling behaviour.  N > 0 promotes every ~1/N
    #: production allocations (deterministically, via the process
    #: entropy salt) to a guarded allocation -- redzone canaries on
    #: both sides, delayed free with canary fill -- so a latent memory
    #: bug is caught at the guard *before* it can crash the process.
    #: A guard hit carries bug type and call-site, letting diagnosis
    #: take the fast path (:meth:`DiagnosticEngine.diagnose_sampled`).
    sampling_rate: int = 0


@dataclass
class RecoveryRecord:
    """One failure's handling, start to finish (one Table 3 row)."""

    failure: FailureEvent
    diagnosis: Optional[Diagnosis] = None
    recovery_time_ns: int = 0
    validation: Optional[ValidationResult] = None
    report: Optional[BugReport] = None
    succeeded: bool = False
    notes: List[str] = field(default_factory=list)
    #: real wall-clock seconds handling this failure (host time; the
    #: parallel benchmark compares this across backends).
    wall_s: float = 0.0
    #: Ladder rung that resolved this failure (1 = targeted patch, the
    #: only rung that exists with supervisor=False; see
    #: repro.supervisor.ladder.Rung).
    rung: int = 1
    #: Per-rung attempts, in escalation order
    #: (:class:`~repro.supervisor.ladder.RungAttempt`).  Empty when the
    #: supervisor is disabled.
    rung_trail: List = field(default_factory=list)
    #: Simulated nanoseconds the whole ladder spent on this failure.
    budget_spent_ns: int = 0
    #: True when the restart floor (rung 4) resolved this failure.
    restarted: bool = False


@dataclass
class SessionResult:
    """Outcome of FirstAidRuntime.run()."""

    reason: str                 # "halt" | "input" | "budget" | "died"
    recoveries: List[RecoveryRecord] = field(default_factory=list)

    @property
    def survived_all(self) -> bool:
        return all(r.succeeded for r in self.recoveries)


class FirstAidRuntime:
    """Run one program under First-Aid."""

    def __init__(self, program: Program,
                 input_tokens: Optional[Iterable[int]] = None,
                 input_stream: Optional[ReplayableInput] = None,
                 config: Optional[FirstAidConfig] = None,
                 pool: Optional[PatchPool] = None,
                 monitors: Optional[List[ErrorMonitor]] = None,
                 costs: Optional[CostModel] = None,
                 events: Optional[EventLog] = None,
                 telemetry: Optional[Telemetry] = None):
        self.config = config or FirstAidConfig()
        self.telemetry = (telemetry if telemetry is not None
                          else Telemetry(enabled=self.config.telemetry))
        self.events = events if events is not None \
            else EventLog(max_events=self.config.max_events)
        self.pool = pool or self._load_pool(program.name)
        #: Shared patch store (None without config.store_path).  The
        #: startup sync runs before the policy is built, so a patch any
        #: peer already published prevents its bug from this process's
        #: very first instruction.
        self.store = None
        self._store_generation = -1
        self._boundaries_since_refresh = 0
        #: Fleet health channel (None without a store or with
        #: config.health off).  Rides next to the patch store and
        #: reuses its crash-safe machinery; see repro.obs.health.
        self.health = None
        self._health_seq = 0
        self._retractions = 0
        #: Sampled detections that ended in a validated patch: bugs
        #: caught and fixed *before* any crash (the fleet report's
        #: "prevented" column).
        self._sampled_prevented = 0
        self._process_label = (self.config.process_label
                               or f"{program.name}#{os.getpid()}")
        #: Rollout state (repro.rollout, DESIGN.md §14).  All sim-time.
        self._canary = True
        self._rollout_controller = None
        self._adopted_ns = {}            # patch_key -> sim adoption time
        self._post_adopt_failures = {}   # patch_key -> failures while live
        self._rolled_back_keys = set()   # never re-adopt this session
        if self.config.rollout:
            from repro.rollout import is_canary
            self._canary = is_canary(self._process_label,
                                     self.config.canary_fraction)
        if self.config.store_path:
            self.store = SharedPatchStore(self.config.store_path,
                                          program.name)
            self.store.events = self.events
            self._store_sync(initial=True)
            if self.config.health:
                self.health = HealthChannel(
                    health_path(self.config.store_path), program.name,
                    faults=self.config.health_faults)
                self.health.events = self.events
        self.process = Process(
            program,
            input_tokens=input_tokens,
            input_stream=input_stream,
            mode=ExtensionMode.NORMAL,
            policy=None,
            costs=costs,
            heap_limit=self.config.heap_limit,
            quarantine_threshold=self.config.quarantine_threshold,
            entropy_seed=self.config.entropy_seed,
            vm_tier=self.config.vm_tier,
            sampling_rate=self.config.sampling_rate,
        )
        #: The session's base cost model, kept for restart respawns (a
        #: chaos fault could interrupt an engine mid cost-model swap).
        self._costs = self.process.costs
        self.policy = PatchPolicy(self.pool)
        self.process.extension.policy = self.policy
        self.process.extension.patch_memory_limit = \
            self.config.max_patch_memory
        if self.config.chaos is not None:
            self.process.extension.sampling_chaos = self.config.chaos
        self.process.attach_telemetry(self.telemetry)
        if self.telemetry.enabled:
            self.events.tap = self.telemetry.recorder.record_event
        self.manager = self._make_manager()
        self.monitors = monitors if monitors is not None \
            else default_monitors()
        #: Execution backend shared by diagnosis and validation; None
        #: (workers <= 1) keeps the legacy in-process serial paths.
        self.executor = make_executor(
            self.config.workers, program, self.telemetry,
            task_timeout_s=self.config.worker_timeout_s)
        self.validator = ValidationEngine(
            self.config.validation_iterations, self.events,
            telemetry=self.telemetry, executor=self.executor,
            store=self.store, chaos=self.config.chaos)
        #: Session-owned search state: static facts cached per program,
        #: bandit arm statistics persisting across failures.  Imported
        #: lazily -- repro.search depends on repro.core.bugtypes, and
        #: this module is part of repro.core's package init.
        from repro.search.state import SearchState
        self.search = SearchState(self.config.search_policy,
                                  seed=self.config.entropy_seed)
        self.recoveries: List[RecoveryRecord] = []
        self._recovery_supervisor = None

    def _make_manager(self) -> CheckpointManager:
        manager = CheckpointManager(
            self.process,
            interval=self.config.checkpoint_interval,
            max_keep=self.config.max_checkpoints,
            adaptive=self.config.adaptive_checkpointing,
            overhead_target=self.config.overhead_target,
            max_interval=self.config.max_interval,
            events=self.events,
            incremental=self.config.incremental_checkpoints,
            keyframe_every=self.config.keyframe_every,
            telemetry=self.telemetry,
            chaos=self.config.chaos,
        )
        if self.store is not None:
            manager.on_boundary = self._store_refresh_tick
        return manager

    def close(self) -> None:
        """Release every external resource: the worker pool (no-op in
        serial mode) and, defensively, the shared store's file lock
        (idempotent; only held if a fault interrupted a store
        operation mid-critical-section)."""
        if self.executor is not None:
            self.executor.close()
        if self.store is not None:
            self.store.lock.release()
        if self.health is not None:
            self.health.lock.release()

    def __enter__(self) -> "FirstAidRuntime":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def _load_pool(self, program_name: str) -> PatchPool:
        path = self.config.pool_path
        if path:
            return PatchPool.load_or_create(path, program_name)
        return PatchPool(program_name)

    # ------------------------------------------------------------------
    # shared patch store (DESIGN.md §9)
    # ------------------------------------------------------------------

    def _store_sync(self, initial: bool = False) -> None:
        """Absorb the shared store into the local pool (and drop
        retracted patches); refreshes the policy when anything
        changed.  Store failures are logged, never raised: a broken
        shared file must not take down this process.

        With rollout on, adoption is stage-filtered (non-canaries take
        only fleet-wide records) and keys this session saw rolled back
        are permanently refused -- a supervisor restart mid-session
        must not smuggle a condemned patch back in."""
        canary = self._canary if self.config.rollout else None
        blocked = self._rolled_back_keys if self.config.rollout \
            else None
        try:
            changed, state = self.store.sync_into(
                self.pool, canary=canary, blocked=blocked)
        except StoreError as exc:
            self.events.emit(0, "store.error", op="sync",
                             error=str(exc))
            return
        self._store_generation = state.generation
        if self.config.rollout:
            now = 0 if initial else self.process.clock.now_ns
            newly = sorted(k for k in state.rolled_back
                           if k not in self._rolled_back_keys)
            for key in newly:
                self._rolled_back_keys.add(key)
                if self.pool.remove_key(key) is not None:
                    changed = True
            if newly:
                self.events.emit(now, "rollout.blocked", keys=newly)
            for patch in self.pool.patches():
                self._adopted_ns.setdefault(patch.key, now)
        if changed and not initial:
            self.policy.refresh()
            self.events.emit(self.process.clock.now_ns, "store.refresh",
                             generation=state.generation,
                             patches=len(self.pool))

    def _store_refresh_tick(self) -> None:
        """Checkpoint-boundary hook: every
        ``store_refresh_boundaries``-th boundary, poll the store
        generation and merge if a peer published or retracted."""
        self._boundaries_since_refresh += 1
        if self._boundaries_since_refresh \
                < self.config.store_refresh_boundaries:
            return
        self._boundaries_since_refresh = 0
        try:
            generation = self.store.generation()
        except StoreError as exc:
            self.events.emit(0, "store.error", op="poll",
                             error=str(exc))
            return
        if generation != self._store_generation:
            self._store_sync()
        self._health_publish("running")
        self._rollout_tick()

    def _store_publish(self, patches, restage: bool = False) -> None:
        if self.store is None or not patches:
            return
        try:
            if self.config.rollout:
                from repro.rollout import STAGED
                state = self.store.publish(patches, stage=STAGED,
                                           restage=restage)
            else:
                state = self.store.publish(patches)
        except StoreError as exc:
            self.events.emit(0, "store.error", op="publish",
                             error=str(exc))
            return
        self._store_generation = state.generation
        self.events.emit(self.process.clock.now_ns, "store.published",
                         keys=[p.key for p in patches],
                         generation=state.generation)

    # ------------------------------------------------------------------
    # staged rollout (DESIGN.md §14)
    # ------------------------------------------------------------------

    def _note_failure_for_rollout(self, time_ns: int) -> None:
        """Attribute one failure to every patch that was live when it
        struck (sim-time comparison): the canary evidence the
        promotion controller gates on.  A patch adopted *after* the
        failure is innocent."""
        if not self.config.rollout:
            return
        for key, adopted in self._adopted_ns.items():
            if adopted <= time_ns and self.pool.find_key(key) \
                    is not None:
                self._post_adopt_failures[key] = \
                    self._post_adopt_failures.get(key, 0) + 1

    def _rollout_tick(self) -> None:
        """Run the promotion controller, when this process carries it.
        Every failure degrades to a ``rollout.error`` event: rollout
        bookkeeping must never take down the session."""
        if not (self.config.rollout and self.config.rollout_controller) \
                or self.store is None or self.health is None:
            return
        try:
            if self._rollout_controller is None:
                from repro.rollout import (PromotionController,
                                           RolloutConfig)
                cfg = RolloutConfig(
                    canary_fraction=self.config.canary_fraction,
                    min_observe_ns=self.config.rollout_min_observe_ns,
                    max_failure_rate=self.config
                    .rollout_max_failure_rate,
                    max_latency_p99_ns=self.config
                    .rollout_max_latency_p99_ns,
                    min_canary_processes=self.config
                    .rollout_min_canary)
                self._rollout_controller = PromotionController(
                    self.store, self.health, cfg, events=self.events)
            decisions = self._rollout_controller.tick(
                time_ns=self.process.clock.now_ns)
        except Exception as exc:  # noqa: BLE001 - degrade, never die
            self.events.emit(0, "rollout.error", error=str(exc))
            return
        if decisions:
            # Reflect our own promotions/rollbacks immediately (e.g. a
            # canary controller dropping a patch it just condemned).
            self._store_sync()

    # ------------------------------------------------------------------
    # fleet health plane (DESIGN.md §12)
    # ------------------------------------------------------------------

    def _health_beacon(self, reason: str) -> HealthBeacon:
        """This process's health digest, right now.  Every field is a
        full snapshot (not a delta) derived from sim-time-stamped,
        locally-attributed state -- the same program on the same input
        builds the same beacon sequence regardless of wall clock, pid,
        or peer publish timing (the determinism the fleet report gates
        on)."""
        recoveries = self.recoveries
        rung_counts = {}
        for record in recoveries:
            ran = [a for a in record.rung_trail
                   if a.outcome != "skipped"]
            if ran:
                for attempt in ran:
                    rung = str(attempt.rung)
                    rung_counts[rung] = rung_counts.get(rung, 0) + 1
            else:
                # Supervisor off (or pre-ladder record): the resolving
                # rung is all we know.
                rung = str(record.rung)
                rung_counts[rung] = rung_counts.get(rung, 0) + 1
        diagnosed = {}
        for record in recoveries:
            if record.diagnosis is None:
                continue
            for patch in record.diagnosis.patches:
                key = patch.key
                diagnosed[key] = diagnosed.get(key, 0) + 1
        patches = {}
        for patch in self.pool.patches():
            key = patch.key
            patches[key] = {
                "triggers": self.policy.local_triggers.get(key, 0),
                "validated": patch.validated,
                "created_time_ns": patch.created_time_ns,
                "diagnosed": diagnosed.get(key, 0),
            }
            if self.config.rollout:
                # Canary evidence for the promotion controller; only
                # serialized under rollout so pre-rollout beacons stay
                # byte-identical.
                patches[key]["adopted_ns"] = self._adopted_ns.get(
                    key, patch.created_time_ns)
                patches[key]["post_adopt_failures"] = \
                    self._post_adopt_failures.get(key, 0)
        recovery = Histogram("recovery_ns", RECOVERY_BOUNDS)
        for record in recoveries:
            recovery.observe(record.recovery_time_ns)
        latency = Histogram("latency_ns", LATENCY_BOUNDS)
        prev = 0
        for time_ns, _ in self.process.output.entries():
            latency.observe(time_ns - prev)
            prev = time_ns
        sampling = {}
        stats = self.process.extension.sampling_stats
        if self.config.sampling_rate > 0 and stats is not None:
            # Only serialized when sampling is on, so pre-sampling
            # beacons stay byte-identical.
            sampling = stats.to_dict()
            sampling["rate"] = self.config.sampling_rate
            sampling["prevented"] = self._sampled_prevented
        self._health_seq += 1
        return HealthBeacon(
            canary=self._canary if self.config.rollout else False,
            process_id=self._process_label,
            app=self.process.program.name,
            seq=self._health_seq,
            time_ns=self.process.clock.now_ns,
            reason=reason,
            failures=len(recoveries),
            recovered=sum(1 for r in recoveries if r.succeeded),
            gave_up=sum(1 for r in recoveries if not r.succeeded),
            restarts=sum(1 for r in recoveries if r.restarted),
            retractions=self._retractions,
            rung_counts=rung_counts,
            patches=patches,
            recovery_ns=recovery.to_snapshot(),
            latency_ns=latency.to_snapshot(),
            sampling=sampling,
        )

    def _health_publish(self, reason: str) -> None:
        """Publish a beacon; the health path must never take down the
        session, so every failure -- torn writes, lock timeouts, a
        quarantined channel -- degrades to a ``health.error`` event."""
        if self.health is None:
            return
        beacon = self._health_beacon(reason)
        try:
            self.health.publish(beacon)
        except TornWriteCrash as exc:
            # The injected "publisher died mid-commit" left torn bytes
            # on disk and our own (live-pid) lock abandoned; ordinary
            # staleness rules would stall until stale_after, but we
            # *know* the holder is gone -- it was this very call -- so
            # break the lock and retry once: this process survived, and
            # its beacon matters precisely under fault storms.  The
            # retry quarantines the torn file and recovers from the
            # backup, the same ladder the patch store hardens.
            self.health.lock.force_break()
            self.events.emit(0, "health.error", op="publish",
                             error=str(exc))
            try:
                self.health.publish(beacon)
            except Exception as exc:
                self.events.emit(0, "health.error", op="republish",
                                 error=str(exc))
                return
        except Exception as exc:
            self.events.emit(0, "health.error", op="publish",
                             error=str(exc))
            return
        self.events.emit(self.process.clock.now_ns, "health.published",
                         seq=beacon.seq, reason=reason)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self, max_steps: Optional[int] = None) -> SessionResult:
        """Run until the program finishes (halt or input exhausted),
        the optional step budget runs out, or an unrecoverable failure
        kills it.  Any exception escaping the loop -- including
        chaos-injected ones -- closes the runtime first, so worker
        pools and store locks never leak from a crashed session."""
        try:
            return self._run_loop(max_steps)
        except BaseException:
            self.close()
            raise

    def _run_loop(self, max_steps: Optional[int]) -> SessionResult:
        budget = max_steps
        while True:
            start = self.process.instr_count
            result = self.manager.run(max_steps=budget)
            if budget is not None:
                budget -= self.process.instr_count - start
            if result.reason is RunReason.HALT:
                return self._finish(SessionResult("halt", self.recoveries))
            if result.reason is RunReason.INPUT_EXHAUSTED:
                return self._finish(SessionResult("input", self.recoveries))
            if result.reason is RunReason.STOP:
                return self._finish(SessionResult("budget",
                                                  self.recoveries))
            failure = self._detect_failure(result)
            if failure is None:
                if self.config.supervisor and result.fault is not None:
                    # No monitor claimed the fault (e.g. an injected
                    # monitor miss).  The supervisor still gets a
                    # synthetic failure event: its diagnosis starts
                    # from the fault itself, and the ladder guarantees
                    # the session degrades instead of dying silently.
                    failure = FailureEvent(
                        fault=result.fault,
                        instr_count=self.process.instr_count,
                        time_ns=self.process.clock.now_ns,
                        monitor="unclaimed")
                    self.events.emit(self.process.clock.now_ns,
                                     "failure.unclaimed",
                                     detail=failure.describe())
                else:
                    # A fault no monitor claims: treat as fatal.
                    return self._finish(SessionResult("died",
                                                      self.recoveries))
            self._note_failure_for_rollout(failure.time_ns)
            record = self._handle_failure(failure)
            self.recoveries.append(record)
            if not record.succeeded:
                return self._finish(SessionResult("died", self.recoveries))

    def _finish(self, session: SessionResult) -> SessionResult:
        """Session-exit bookkeeping: push this process's trigger counts
        to the shared store (merge keeps the max), after a final sync
        so a peer's retraction is honored rather than resurrected."""
        if self.store is not None and len(self.pool):
            self._store_sync()
            self._store_publish(self.pool.patches())
        # The exit beacon goes out even with an empty pool: a fleet
        # view that only shows processes with patches cannot answer
        # "did everyone survive?".
        self._health_publish(session.reason)
        # A controller-carrying process decides once more on the way
        # out, with its own exit beacon already on the channel.
        self._rollout_tick()
        return session

    def _detect_failure(self, result: RunResult) -> Optional[FailureEvent]:
        chaos = self.config.chaos
        if chaos is not None and result.fault is not None \
                and chaos.take("monitor_miss"):
            # Injected monitor false negative: the fault happened but
            # no monitor reports it.
            self.events.emit(self.process.clock.now_ns,
                             "chaos.monitor_miss",
                             fault=result.fault.describe())
            return None
        for monitor in self.monitors:
            event = monitor.check(result, self.process)
            if event is not None:
                self.events.emit(self.process.clock.now_ns,
                                 "failure.detected",
                                 detail=event.describe())
                return event
        return None

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------

    def _handle_failure(self, failure: FailureEvent) -> RecoveryRecord:
        with self.telemetry.span("recovery",
                                 failure=failure.describe()) as span:
            started = time.perf_counter()
            # Guard *raising* pauses for the whole recovery: rollback
            # replays a window the guards already saw once, and a fresh
            # guard hit mid-replay would fail the rung and walk the
            # ladder.  Selection, promotion, and accounting continue --
            # rollback restores the work counters, so the replay is
            # counted exactly once, and the recovered run stays guarded.
            # (_respawn may swap the process; unpause the current one.)
            self.process.extension.sampling_paused = True
            try:
                if self.config.supervisor:
                    record = self._supervisor().handle(failure)
                else:
                    record = self._handle_failure_traced(failure)
            finally:
                self.process.extension.sampling_paused = False
            record.wall_s = time.perf_counter() - started
            span.set(succeeded=record.succeeded,
                     recovery_time_ns=record.recovery_time_ns)
            if record.rung > 1:
                span.set(rung=record.rung)
            if not record.succeeded:
                # Terminal outcome, previously silent: record *that* we
                # gave up and why, for the operator and the bug report.
                verdict = (record.diagnosis.verdict.value
                           if record.diagnosis is not None else "unknown")
                trail = record.rung_trail
                self.events.emit(
                    self.process.clock.now_ns, "recovery.gave_up",
                    verdict=verdict,
                    rungs=[a.rung for a in trail] or [1],
                    reasons=([a.describe() for a in trail]
                             or list(record.notes)))
            return record

    def _supervisor(self):
        if self._recovery_supervisor is None:
            from repro.supervisor.ladder import RecoverySupervisor
            self._recovery_supervisor = RecoverySupervisor(self)
        return self._recovery_supervisor

    def _respawn(self) -> None:
        """Restart-from-scratch (ladder rung 4): a fresh process on the
        *same* clock, input stream, and output log -- service
        continuity over state continuity, exactly the restart
        baseline's semantics -- plus a fresh checkpoint manager (old
        checkpoints describe a heap that no longer exists)."""
        old = self.process
        self.process = Process(
            old.program,
            input_stream=old.input,
            mode=ExtensionMode.NORMAL,
            policy=self.policy,
            clock=old.clock,
            costs=self._costs,
            heap_limit=self.config.heap_limit,
            quarantine_threshold=self.config.quarantine_threshold,
            entropy_seed=self.config.entropy_seed,
            output=old.output,
            vm_tier=self.config.vm_tier,
            sampling_rate=self.config.sampling_rate,
        )
        self.process.extension.patch_memory_limit = \
            self.config.max_patch_memory
        if self.config.chaos is not None:
            self.process.extension.sampling_chaos = self.config.chaos
        self.process.attach_telemetry(self.telemetry)
        self.manager = self._make_manager()

    def _handle_failure_traced(self, failure: FailureEvent,
                               fast_path: bool = True) -> RecoveryRecord:
        record = RecoveryRecord(failure=failure)
        t_start = self.process.clock.now_ns
        diag_log = EventLog(max_events=self.config.max_events)
        engine = DiagnosticEngine(
            self.process, self.manager, self.pool, diag_log,
            max_checkpoint_search=self.config.max_checkpoint_search,
            window_intervals=self.config.window_intervals,
            max_rollbacks=self.config.max_rollbacks,
            telemetry=self.telemetry,
            executor=self.executor,
            chaos=self.config.chaos,
            search=self.search)
        detection = failure.detection
        use_fast = (fast_path and detection is not None
                    and getattr(detection, "site", None) is not None)
        if detection is not None and not use_fast:
            # Fallback after a rejected fast path (or a detection with
            # no attribution): the failing run carried a guard the
            # plain replay lacks, so "plain re-execution must reproduce
            # the failure" does not hold -- run phase 1a for real.  A
            # guard false positive then reads NONDETERMINISTIC and the
            # session continues un-degraded.
            engine.force_plain_probe = True
        diagnosis = (engine.diagnose_sampled(failure) if use_fast
                     else engine.diagnose(failure))
        record.diagnosis = diagnosis
        for event in diag_log:
            self.events.emit(event.time_ns, event.kind, **event.data)

        if use_fast and diagnosis.verdict is not Verdict.PATCHED:
            # The fast path could not mint a patch (no checkpoint, no
            # usable attribution); run the full pipeline instead.
            return self._handle_failure_traced(failure, fast_path=False)

        if diagnosis.verdict is Verdict.NONDETERMINISTIC:
            # The plain re-execution already carried the program past
            # the failure region; let it continue normally.
            self._back_to_normal()
            record.recovery_time_ns = self.process.clock.now_ns - t_start
            record.succeeded = True
            record.notes.append("nondeterministic failure; no patch")
            return record

        if diagnosis.verdict is Verdict.NON_PATCHABLE:
            record.recovery_time_ns = self.process.clock.now_ns - t_start
            record.notes.append("diagnosis could not patch this bug")
            return record

        # PATCHED: recover by re-executing from the identified
        # checkpoint with the new patches active.
        self.policy.refresh()
        window_end = (failure.instr_count
                      + self.config.window_intervals
                      * self.manager.interval)
        recovered = self._recover(diagnosis, window_end)
        record.recovery_time_ns = self.process.clock.now_ns - t_start
        record.succeeded = recovered
        if not recovered:
            if use_fast:
                # The detection-seeded patch did not carry the replay
                # past the failure region (the guard caught a different
                # instance than the crash, or the attribution missed).
                # Retract it and run the full two-phase pipeline before
                # letting the ladder escalate.
                for patch in diagnosis.patches:
                    self.pool.remove(patch.patch_id)
                self.policy.refresh()
                self.events.emit(self.process.clock.now_ns,
                                 "sampling.fast_path_rejected",
                                 reasons=["patched re-execution failed"])
                fallback = self._handle_failure_traced(
                    failure, fast_path=False)
                fallback.recovery_time_ns += record.recovery_time_ns
                fallback.notes.insert(
                    0, "sampled fast-path patch did not stop the "
                    "failure region; fell back to the full pipeline")
                return fallback
            record.notes.append("patched re-execution failed again")
            return record
        self.events.emit(self.process.clock.now_ns, "recovery.done",
                         time_s=record.recovery_time_ns / 1e9,
                         patches=len(diagnosis.patches))
        if self.config.pool_path:
            self.pool.save(self.config.pool_path)
        if self.config.rollout:
            # Self-diagnosed patches count as adopted from now on
            # (post-adopt attribution), and a fresh diagnosis of a
            # rolled-back key is the one legitimate restage path.
            now = self.process.clock.now_ns
            for patch in diagnosis.patches:
                self._adopted_ns.setdefault(patch.key, now)
                if patch.key in self._rolled_back_keys:
                    self.events.emit(now, "rollout.restaged",
                                     key=patch.key)
        # Publish on creation: peers start preventing this bug while we
        # are still validating (a failed validation retracts below).
        # Under rollout this enters at STAGED (restage=True: a fresh
        # diagnosis outranks a rollback record).
        self._store_publish(diagnosis.patches, restage=True)

        # Validation + report, off the recovery path (clone-based).
        if self.config.validate and diagnosis.checkpoint is not None:
            validation = self.validator.validate(
                self.process, diagnosis.checkpoint, self.pool,
                window_end, under_test=diagnosis.patches,
                fast_path=use_fast)
            record.validation = validation
            if not validation.consistent:
                # The validator already retracted them from the shared
                # store; drop them locally too.
                for patch in diagnosis.patches:
                    self.pool.remove(patch.patch_id)
                self._retractions += 1
                self.policy.refresh()
                self.events.emit(self.process.clock.now_ns,
                                 "validation.failed",
                                 reasons=validation.reasons)
                record.notes.append(
                    "validation failed; patches removed: "
                    + "; ".join(validation.reasons))
                if use_fast:
                    # Validation rejected the detection-seeded patch:
                    # fall back to the full two-phase pipeline.  A
                    # guard false positive ends NONDETERMINISTIC there
                    # and the session continues un-degraded.
                    self.events.emit(self.process.clock.now_ns,
                                     "sampling.fast_path_rejected",
                                     reasons=validation.reasons)
                    fallback = self._handle_failure_traced(
                        failure, fast_path=False)
                    fallback.recovery_time_ns += record.recovery_time_ns
                    fallback.notes.insert(
                        0, "sampled fast-path patch rejected by "
                        "validation; fell back to the full pipeline")
                    return fallback
            else:
                if use_fast:
                    self._sampled_prevented += 1
                    self.events.emit(self.process.clock.now_ns,
                                     "sampling.prevented",
                                     patches=[p.key for p in
                                              diagnosis.patches])
                for patch in diagnosis.patches:
                    patch.validated = True
                if self.config.pool_path:
                    self.pool.save(self.config.pool_path)
                # Publish on validation: the validated flag is sticky
                # in the store's merge, making the patch trustworthy
                # fleet-wide.
                self._store_publish(diagnosis.patches)
        flight = None
        if self.telemetry.enabled:
            flight = self.telemetry.recorder.snapshot(
                self.process.clock.now_ns)
        record.report = BugReport(
            program_name=self.process.program.name,
            diagnosis=diagnosis,
            recovery_time_ns=record.recovery_time_ns,
            validation=record.validation,
            diagnosis_log=diag_log,
            flight=flight)
        return record

    def _recover(self, diagnosis: Diagnosis, window_end: int) -> bool:
        """Re-execute from the diagnosis checkpoint in normal mode with
        patches applied; True when the failure region is passed."""
        checkpoint = diagnosis.checkpoint
        for attempt in range(self.config.max_recovery_attempts):
            with self.telemetry.span("recovery.attempt",
                                     attempt=attempt) as att_span:
                with self.telemetry.span("rollback",
                                         to_index=checkpoint.index):
                    self.manager.rollback_to(checkpoint)
                self.manager.drop_after(checkpoint)
                self._back_to_normal()
                self.process.reseed_entropy(
                    self.config.entropy_seed + 7000 + attempt)
                with self.telemetry.span("reexec"):
                    result = self.process.run(stop_at=window_end)
                passed = result.reason in (RunReason.STOP, RunReason.HALT,
                                           RunReason.INPUT_EXHAUSTED)
                att_span.set(passed=passed)
            if passed:
                return True
        return False

    def _back_to_normal(self) -> None:
        self.process.set_mode(ExtensionMode.NORMAL, self.policy)
        self.process.machine.trace_accesses = False
        self.process.extension.trace_mm = False
