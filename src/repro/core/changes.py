"""Environmental changes and diagnostic policies.

Table 1 of the paper, as code.  An environmental change is either an
:class:`AllocChange` (applied when objects are allocated: padding,
zero/canary fill) or a :class:`FreeChange` (applied when objects are
deallocated: delay free, canary fill, parameter check).

``preventive_change(b)`` / ``exposing_change(b)`` return the change for
bug type ``b``; :func:`combine_alloc` / :func:`combine_free` merge a set
of changes into the single decision the allocator extension consumes.

:class:`DiagnosticPolicy` applies changes whole-heap with optional
per-call-site overrides -- the mechanism behind both phase-2 group
testing ("exposing change for b, preventive for everything else") and
the binary search over call-sites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Union

from repro.core.bugtypes import BugType
from repro.heap.extension import (
    PAD_POST,
    PAD_PRE,
    AllocDecision,
    ChangePolicy,
    FreeDecision,
)
from repro.util.callsite import CallSite


@dataclass(frozen=True)
class AllocChange:
    """An allocation-time environmental change."""

    pad: bool = False
    canary_pad: bool = False
    fill: Optional[str] = None    # None | "zero" | "canary"


@dataclass(frozen=True)
class FreeChange:
    """A deallocation-time environmental change."""

    delay: bool = False
    canary_fill: bool = False
    check_param: bool = False


Change = Union[AllocChange, FreeChange]

_PREVENTIVE: Dict[BugType, Change] = {
    BugType.BUFFER_OVERFLOW: AllocChange(pad=True),
    BugType.UNINIT_READ: AllocChange(fill="zero"),
    BugType.DANGLING_READ: FreeChange(delay=True),
    BugType.DANGLING_WRITE: FreeChange(delay=True),
    BugType.DOUBLE_FREE: FreeChange(delay=True, check_param=True),
}

_EXPOSING: Dict[BugType, Change] = {
    BugType.BUFFER_OVERFLOW: AllocChange(pad=True, canary_pad=True),
    BugType.UNINIT_READ: AllocChange(fill="canary"),
    BugType.DANGLING_READ: FreeChange(delay=True, canary_fill=True),
    BugType.DANGLING_WRITE: FreeChange(delay=True, canary_fill=True),
    BugType.DOUBLE_FREE: FreeChange(delay=True, canary_fill=True,
                                    check_param=True),
}


def preventive_change(bug_type: BugType) -> Change:
    return _PREVENTIVE[bug_type]


def exposing_change(bug_type: BugType) -> Change:
    return _EXPOSING[bug_type]


def changes_for(bug_types: Iterable[BugType], exposing: bool) \
        -> List[Change]:
    table = _EXPOSING if exposing else _PREVENTIVE
    return [table[b] for b in bug_types]


def combine_alloc(changes: Iterable[Change],
                  patch_id: Optional[int] = None) -> AllocDecision:
    """Merge allocation changes into one extension decision.  Canary
    fill dominates zero fill (canary implies the exposing intent)."""
    pad = canary = False
    fill: Optional[str] = None
    for change in changes:
        if not isinstance(change, AllocChange):
            continue
        pad = pad or change.pad or change.canary_pad
        canary = canary or change.canary_pad
        if change.fill == "canary" or fill != "canary":
            fill = change.fill or fill
    return AllocDecision(
        pad_pre=PAD_PRE if pad else 0,
        pad_post=PAD_POST if pad else 0,
        canary_pad=canary, fill=fill, patch_id=patch_id)


def combine_free(changes: Iterable[Change],
                 patch_id: Optional[int] = None) -> FreeDecision:
    delay = canary = check = False
    for change in changes:
        if not isinstance(change, FreeChange):
            continue
        delay = delay or change.delay
        canary = canary or change.canary_fill
        check = check or change.check_param
    return FreeDecision(delay=delay, canary_fill=canary,
                        check_param=check, patch_id=patch_id)


class DiagnosticPolicy(ChangePolicy):
    """Applies default changes to every object, with per-call-site
    overrides, and records every call-site it sees (the universe for
    binary search).
    """

    def __init__(self,
                 alloc_default: Iterable[Change] = (),
                 free_default: Iterable[Change] = (),
                 alloc_overrides: Optional[Dict[CallSite,
                                                Iterable[Change]]] = None,
                 free_overrides: Optional[Dict[CallSite,
                                               Iterable[Change]]] = None):
        self._alloc_default = combine_alloc(alloc_default)
        self._free_default = combine_free(free_default)
        self._alloc_overrides = {
            site: combine_alloc(ch)
            for site, ch in (alloc_overrides or {}).items()}
        self._free_overrides = {
            site: combine_free(ch)
            for site, ch in (free_overrides or {}).items()}
        #: Call-sites observed during the re-execution, in first-seen
        #: order (insertion-ordered dicts double as ordered sets).
        self.seen_alloc_sites: Dict[CallSite, int] = {}
        self.seen_free_sites: Dict[CallSite, int] = {}

    def on_alloc(self, callsite: Optional[CallSite]) -> AllocDecision:
        if callsite is not None:
            self.seen_alloc_sites[callsite] = \
                self.seen_alloc_sites.get(callsite, 0) + 1
            override = self._alloc_overrides.get(callsite)
            if override is not None:
                return override
        return self._alloc_default

    def on_free(self, callsite: Optional[CallSite],
                user_addr: int) -> FreeDecision:
        if callsite is not None:
            self.seen_free_sites[callsite] = \
                self.seen_free_sites.get(callsite, 0) + 1
            override = self._free_overrides.get(callsite)
            if override is not None:
                return override
        return self._free_default


def all_preventive_policy() -> DiagnosticPolicy:
    """Every preventive change, whole-heap -- phase 1's probe."""
    return DiagnosticPolicy(
        alloc_default=_PREVENTIVE.values(),
        free_default=_PREVENTIVE.values(),
    )
