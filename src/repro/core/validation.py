"""Patch validation under randomized allocation (paper Section 5).

A patch that merely *happens* to dodge the failure through a lucky heap
layout must not stay installed (and must not mislead developers).  The
validation engine re-executes the buggy region three times, each with a
differently-seeded randomized allocator, with full memory-management
and illegal-access tracing enabled (this repo's Pin analogue), and
checks that the patch's effect is consistent:

(a) the patch is triggered the same number of times in every run;
(b) the same number of illegal accesses is neutralized by the patch;
(c) each illegal access comes from the same instruction at the same
    offset within its memory object (addresses themselves differ run
    to run -- that is the point of the randomization).

Validation operates on *clones* restored from the diagnosis checkpoint,
so it runs off the recovery critical path, as the paper does on a spare
core.  The three randomized runs plus the unpatched baseline are
mutually independent, so they dispatch as one batch over an execution
backend (:mod:`repro.parallel`): in-process with the default
:class:`~repro.parallel.executor.SerialExecutor`, across worker
processes with a :class:`~repro.parallel.executor.ForkExecutor`.
Consistency criteria evaluate on the results merged in task order, so
the verdict is backend-independent; only the reported validation time
differs, charged max-over-workers (``schedule_ns``) to model the
paper's spare-core semantics.  Each run sees a frozen copy of the
patch pool, so a concurrent patch install cannot leak in and trigger
accounting never touches the live pool.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional

from repro.checkpoint.snapshot import Checkpoint
from repro.core.patches import PatchPool
from repro.heap.extension import IllegalAccess, MMTraceEntry
from repro.obs.telemetry import Telemetry
from repro.parallel.executor import SerialExecutor, schedule_ns
from repro.parallel.tasks import ReexecTask, encode_state
from repro.process import Process
from repro.util.events import EventLog
from repro.vm.machine import RunResult


@dataclass
class IterationTrace:
    """Everything observed in one validation re-execution."""

    seed: int
    passed: bool
    result: RunResult
    mm_trace: List[MMTraceEntry] = field(default_factory=list)
    illegal_accesses: List[IllegalAccess] = field(default_factory=list)
    #: Double frees the clone's extension swallowed (fast-path effect
    #: evidence: a patch absorbing one proves the detection real even
    #: when the first free predates every checkpoint in the window).
    double_free_events: List = field(default_factory=list)

    def patch_triggers(self) -> Counter:
        """patch_id -> number of operations the patch applied to."""
        counts: Counter = Counter()
        for entry in self.mm_trace:
            if entry.patch_id is not None:
                counts[entry.patch_id] += 1
        return counts

    def access_multiset(self) -> Counter:
        """(patch_id, kind, instr, offset) -> count; the identity the
        consistency criterion (c) compares."""
        counts: Counter = Counter()
        for access in self.illegal_accesses:
            counts[(access.patch_id,) + access.identity()] += 1
        return counts


@dataclass
class ValidationResult:
    consistent: bool
    iterations: List[IterationTrace] = field(default_factory=list)
    reasons: List[str] = field(default_factory=list)
    time_ns: int = 0
    #: memory-management trace of an *unpatched* re-execution, for the
    #: with/without diff in the bug report (Figure 5, item 4).
    baseline_mm_trace: List[MMTraceEntry] = field(default_factory=list)
    #: real wall-clock seconds spent validating (host time, not the
    #: simulated clock) -- what the parallel benchmark measures.
    wall_s: float = 0.0

    @property
    def illegal_access_count(self) -> int:
        if not self.iterations:
            return 0
        return len(self.iterations[0].illegal_accesses)


class ValidationEngine:
    """Validates the patches generated for one diagnosis."""

    def __init__(self, iterations: int = 3,
                 events: Optional[EventLog] = None,
                 telemetry: Optional[Telemetry] = None,
                 executor=None, store=None, chaos=None):
        self.iterations = iterations
        self.events = events if events is not None else EventLog()
        self.telemetry = telemetry or Telemetry.disabled()
        #: Optional :class:`~repro.chaos.ChaosPlan`; consulted once per
        #: validation batch.
        self.chaos = chaos
        #: execution backend for the validation batch; None builds a
        #: per-call SerialExecutor over the process's program.
        self.executor = executor
        #: Optional :class:`~repro.store.SharedPatchStore`: a patch
        #: that fails validation is retracted from the store, so other
        #: processes of the same program drop it on their next refresh
        #: instead of keeping a patch one process proved inconsistent.
        self.store = store
        self._m_runs = self.telemetry.metrics.counter("validation.runs")
        self._m_trials = \
            self.telemetry.metrics.counter("validation.patch_trials")

    def validate(self, process: Process, checkpoint: Checkpoint,
                 pool: PatchPool, window_end: int,
                 under_test=None,
                 fast_path: bool = False) -> ValidationResult:
        """Validate the pool's patches; ``under_test`` names the
        just-generated patches this verdict is about, so an
        inconsistent result can retract exactly those from the shared
        store (previously validated patches are not collateral).

        ``fast_path`` marks patches minted from a sampled guard hit
        without any diagnostic re-execution (DESIGN.md §15): those
        must additionally show their detection *reproducing* under
        validation -- at least one illegal access neutralized by (or
        double free absorbed by) a patch under test.  A guard false
        positive pads allocations that nothing ever oversteps, shows
        no effect, and is rejected here."""
        with self.telemetry.span("validation",
                                 checkpoint=checkpoint.index) as span:
            started = time.perf_counter()
            result = self._validate(process, checkpoint, pool,
                                    window_end,
                                    under_test=under_test,
                                    fast_path=fast_path)
            result.wall_s = time.perf_counter() - started
            if not result.consistent and under_test:
                self._retract(under_test)
            span.set(consistent=result.consistent,
                     clone_time_ns=result.time_ns)
            return result

    def _retract(self, patches) -> None:
        if self.store is None:
            return
        from repro.errors import StoreError
        try:
            state = self.store.retract(patches)
        except StoreError as exc:
            # A store problem must never escalate a validation verdict
            # into a crash; the local pool removal still happens.
            self.events.emit(0, "store.error",
                             op="retract", error=str(exc))
            return
        self.events.emit(0, "store.retracted",
                         keys=[p.key for p in patches],
                         generation=state.generation)

    def _validate(self, process: Process, checkpoint: Checkpoint,
                  pool: PatchPool, window_end: int,
                  under_test=None,
                  fast_path: bool = False) -> ValidationResult:
        result = ValidationResult(consistent=True)
        executor = self.executor or SerialExecutor(process.program)
        # Materialize the checkpoint's full state once: with
        # incremental checkpointing this walks the delta chain, so
        # rebuilding it per iteration would repay O(heap) four times.
        state = encode_state(checkpoint.materialize())
        tasks = [self._task(process, state, pool, window_end,
                            seed=101 + i)
                 for i in range(self.iterations)]
        tasks.append(self._baseline_task(process, state, window_end))
        handle = executor.submit(tasks)
        times: List[int] = []
        for i in range(self.iterations):
            seed = 101 + i
            with self.telemetry.span("validation.run",
                                     seed=seed) as run_span:
                out = handle.result(i)
                # Validation runs on clones off the recovery path;
                # their cost is clone-clock time, recorded as an
                # attribute rather than main-clock width.
                run_span.set(passed=out.passed,
                             clone_time_ns=out.time_ns)
            self._m_runs.inc()
            self._m_trials.inc(len(pool.patches()))
            times.append(out.time_ns)
            result.iterations.append(IterationTrace(
                seed=seed, passed=out.passed, result=out.result,
                mm_trace=out.mm_trace,
                illegal_accesses=out.illegal_accesses,
                double_free_events=list(
                    out.manifestations.double_free_events)))
        baseline = handle.result(self.iterations)
        times.append(baseline.time_ns)
        result.baseline_mm_trace = baseline.mm_trace
        if self.chaos is not None \
                and self.chaos.take("validation_flaky"):
            # A flaky re-failure: the region re-fails under one
            # randomization, which must read as an inconsistent patch
            # and drive the retraction path, never a crash.
            result.iterations[0].passed = False
            self.events.emit(0, "chaos.validation_flaky", seed=101)
        # Spare-core accounting: the batch costs its busiest worker
        # lane.  With one worker this is the plain sum, i.e. the
        # original serial validation time.
        result.time_ns = schedule_ns(times, executor.workers)
        self._check_consistency(result)
        if fast_path and result.consistent and under_test \
                and not _patch_effect_observed(result, under_test):
            result.consistent = False
            result.reasons.append(
                "fast-path criterion: the detection-seeded patch "
                "showed no effect under validation (nothing overstepped "
                "its padding, no delayed free absorbed a double free); "
                "the sampled detection did not reproduce")
        self.events.emit(0, "validation.done",
                         consistent=result.consistent,
                         iterations=len(result.iterations),
                         time_s=result.time_ns / 1e9,
                         reasons=result.reasons)
        return result

    # ------------------------------------------------------------------

    def _task(self, process: Process, state: tuple, pool: PatchPool,
              window_end: int, seed: int) -> ReexecTask:
        """One randomized validation run.  The patch set travels as
        JSON (a frozen copy by construction); entropy follows the
        legacy clone behavior: seed * 7919."""
        return ReexecTask(
            kind="validation",
            label=f"validate:seed{seed}",
            state=state,
            journal=process.input.journal_slice(0),
            output_prefix=process.output.entries()[:state[0][5]],
            window_end=window_end,
            costs=process.costs.replay_model(),
            heap_limit=process.mem.limit,
            quarantine_threshold=process.extension
            .quarantine.threshold_bytes,
            patch_memory_limit=process.extension.patch_memory_limit,
            salt=seed * 7919,
            patches_json=[p.to_json() for p in pool.patches()],
            pool_name=pool.program_name,
            seed=seed,
            trace_mm=True,
            trace_accesses=True,
            vm_tier=process.machine.tier)

    def _baseline_task(self, process: Process, state: tuple,
                       window_end: int) -> ReexecTask:
        """Unpatched re-execution (runs into the failure); its trace is
        diffed against the patched traces in the bug report.  Salt 1
        reproduces the legacy clone's fresh default entropy."""
        return ReexecTask(
            kind="baseline",
            label="validate:baseline",
            state=state,
            journal=process.input.journal_slice(0),
            output_prefix=process.output.entries()[:state[0][5]],
            window_end=window_end,
            costs=process.costs.replay_model(),
            heap_limit=process.mem.limit,
            quarantine_threshold=process.extension
            .quarantine.threshold_bytes,
            patch_memory_limit=process.extension.patch_memory_limit,
            salt=1,
            trace_mm=True,
            vm_tier=process.machine.tier)

    # ------------------------------------------------------------------

    def _check_consistency(self, result: ValidationResult) -> None:
        runs = result.iterations
        if not runs:
            result.consistent = False
            result.reasons.append("no validation iterations ran")
            return
        for trace in runs:
            if not trace.passed:
                result.consistent = False
                result.reasons.append(
                    f"iteration seed={trace.seed} failed the buggy "
                    f"region under randomization: {trace.result!r}")
        first = runs[0]
        for trace in runs[1:]:
            if trace.patch_triggers() != first.patch_triggers():
                result.consistent = False
                result.reasons.append(
                    "criterion (a): patch trigger counts differ "
                    f"between seeds {first.seed} and {trace.seed}")
            if (len(trace.illegal_accesses)
                    != len(first.illegal_accesses)):
                result.consistent = False
                result.reasons.append(
                    "criterion (b): neutralized illegal-access totals "
                    f"differ between seeds {first.seed} and {trace.seed}")
            if trace.access_multiset() != first.access_multiset():
                result.consistent = False
                result.reasons.append(
                    "criterion (c): illegal accesses differ in "
                    "instruction/offset identity between seeds "
                    f"{first.seed} and {trace.seed}")


def _patch_effect_observed(result: ValidationResult, under_test) -> bool:
    """True when any validation iteration shows a patch under test
    actually intercepting the detected bug: an illegal access
    neutralized by the patch (an overstep into its padding, a write
    into its delay-freed object), or a second free of an address the
    patch is holding in quarantine.  The latter shows up as two free
    entries for one address with no malloc in between -- the delay
    keeps the address out of reuse, so the pattern cannot arise
    legitimately -- or, when the first free predates every checkpoint
    in the window, as a swallowed DoubleFreeEvent whose address a
    patch under test intercepted."""
    ids = {p.patch_id for p in under_test}
    for trace in result.iterations:
        for access in trace.illegal_accesses:
            if access.patch_id in ids:
                return True
        freed = set()
        for entry in trace.mm_trace:
            if entry.op == "free":
                if entry.user_addr in freed and entry.patch_id in ids:
                    return True
                freed.add(entry.user_addr)
            else:
                freed.discard(entry.user_addr)
        bad_frees = {e.user_addr for e in trace.double_free_events}
        if bad_frees and any(entry.op == "free"
                             and entry.patch_id in ids
                             and entry.user_addr in bad_frees
                             for entry in trace.mm_trace):
            return True
    return False
