"""Patch validation under randomized allocation (paper Section 5).

A patch that merely *happens* to dodge the failure through a lucky heap
layout must not stay installed (and must not mislead developers).  The
validation engine re-executes the buggy region three times, each with a
differently-seeded randomized allocator, with full memory-management
and illegal-access tracing enabled (this repo's Pin analogue), and
checks that the patch's effect is consistent:

(a) the patch is triggered the same number of times in every run;
(b) the same number of illegal accesses is neutralized by the patch;
(c) each illegal access comes from the same instruction at the same
    offset within its memory object (addresses themselves differ run
    to run -- that is the point of the randomization).

Validation operates on a *clone* of the process restored from the
diagnosis checkpoint, so it runs off the recovery critical path, as the
paper does on a spare core.  Its cost is reported separately as the
validation time.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.checkpoint.snapshot import Checkpoint
from repro.core.patches import PatchPool
from repro.heap.extension import ExtensionMode, IllegalAccess, MMTraceEntry
from repro.obs.telemetry import Telemetry
from repro.process import Process
from repro.util.events import EventLog
from repro.vm.machine import RunReason, RunResult


@dataclass
class IterationTrace:
    """Everything observed in one validation re-execution."""

    seed: int
    passed: bool
    result: RunResult
    mm_trace: List[MMTraceEntry] = field(default_factory=list)
    illegal_accesses: List[IllegalAccess] = field(default_factory=list)

    def patch_triggers(self) -> Counter:
        """patch_id -> number of operations the patch applied to."""
        counts: Counter = Counter()
        for entry in self.mm_trace:
            if entry.patch_id is not None:
                counts[entry.patch_id] += 1
        return counts

    def access_multiset(self) -> Counter:
        """(patch_id, kind, instr, offset) -> count; the identity the
        consistency criterion (c) compares."""
        counts: Counter = Counter()
        for access in self.illegal_accesses:
            counts[(access.patch_id,) + access.identity()] += 1
        return counts


@dataclass
class ValidationResult:
    consistent: bool
    iterations: List[IterationTrace] = field(default_factory=list)
    reasons: List[str] = field(default_factory=list)
    time_ns: int = 0
    #: memory-management trace of an *unpatched* re-execution, for the
    #: with/without diff in the bug report (Figure 5, item 4).
    baseline_mm_trace: List[MMTraceEntry] = field(default_factory=list)

    @property
    def illegal_access_count(self) -> int:
        if not self.iterations:
            return 0
        return len(self.iterations[0].illegal_accesses)


class ValidationEngine:
    """Validates the patches generated for one diagnosis."""

    def __init__(self, iterations: int = 3,
                 events: Optional[EventLog] = None,
                 telemetry: Optional[Telemetry] = None):
        self.iterations = iterations
        self.events = events if events is not None else EventLog()
        self.telemetry = telemetry or Telemetry.disabled()
        self._m_runs = self.telemetry.metrics.counter("validation.runs")
        self._m_trials = \
            self.telemetry.metrics.counter("validation.patch_trials")

    def validate(self, process: Process, checkpoint: Checkpoint,
                 pool: PatchPool, window_end: int) -> ValidationResult:
        with self.telemetry.span("validation",
                                 checkpoint=checkpoint.index) as span:
            result = self._validate(process, checkpoint, pool, window_end)
            span.set(consistent=result.consistent,
                     clone_time_ns=result.time_ns)
            return result

    def _validate(self, process: Process, checkpoint: Checkpoint,
                  pool: PatchPool, window_end: int) -> ValidationResult:
        result = ValidationResult(consistent=True)
        saved_triggers = {p.patch_id: p.trigger_count
                          for p in pool.patches()}
        # Materialize the checkpoint's full state once: with
        # incremental checkpointing this walks the delta chain, so
        # rebuilding it per iteration would repay O(heap) four times.
        state = checkpoint.materialize()
        try:
            for i in range(self.iterations):
                clone_ns_before = result.time_ns
                with self.telemetry.span("validation.run",
                                         seed=101 + i) as run_span:
                    trace = self._one_iteration(
                        process, state, pool, window_end, seed=101 + i,
                        result=result)
                    # Validation runs on a clone off the recovery path;
                    # its cost is clone-clock time, recorded as an
                    # attribute rather than main-clock width.
                    run_span.set(
                        passed=trace.passed,
                        clone_time_ns=result.time_ns - clone_ns_before)
                self._m_runs.inc()
                self._m_trials.inc(len(pool.patches()))
                result.iterations.append(trace)
            result.baseline_mm_trace = self._baseline_trace(
                process, state, window_end, result)
        finally:
            # Validation runs must not distort the live pool's
            # trigger accounting.
            for patch in pool.patches():
                patch.trigger_count = saved_triggers.get(
                    patch.patch_id, patch.trigger_count)
        self._check_consistency(result)
        self.events.emit(0, "validation.done",
                         consistent=result.consistent,
                         iterations=len(result.iterations),
                         time_s=result.time_ns / 1e9,
                         reasons=result.reasons)
        return result

    # ------------------------------------------------------------------

    def _one_iteration(self, process: Process, state,
                       pool: PatchPool, window_end: int, seed: int,
                       result: ValidationResult) -> IterationTrace:
        clone = process.clone(state)
        clone.use_randomized_allocator(seed)
        clone.set_mode(ExtensionMode.VALIDATION, pool.policy())
        clone.set_costs(process.costs.replay_model())
        clone.extension.trace_mm = True
        clone.machine.trace_accesses = True
        clone.reseed_entropy(seed * 7919)
        run = clone.run(stop_at=window_end)
        passed = run.reason in (RunReason.STOP, RunReason.HALT,
                                RunReason.INPUT_EXHAUSTED)
        result.time_ns += clone.clock.now_ns
        return IterationTrace(
            seed=seed, passed=passed, result=run,
            mm_trace=list(clone.extension.mm_trace),
            illegal_accesses=list(clone.extension.illegal_accesses))

    def _baseline_trace(self, process: Process, state,
                        window_end: int,
                        result: ValidationResult) -> List[MMTraceEntry]:
        """Unpatched re-execution (runs into the failure); its trace is
        diffed against the patched traces in the bug report."""
        clone = process.clone(state)
        clone.set_mode(ExtensionMode.DIAGNOSTIC, None)
        clone.extension.policy = _null_policy()
        clone.set_costs(process.costs.replay_model())
        clone.extension.trace_mm = True
        clone.run(stop_at=window_end)
        result.time_ns += clone.clock.now_ns
        return list(clone.extension.mm_trace)

    # ------------------------------------------------------------------

    def _check_consistency(self, result: ValidationResult) -> None:
        runs = result.iterations
        if not runs:
            result.consistent = False
            result.reasons.append("no validation iterations ran")
            return
        for trace in runs:
            if not trace.passed:
                result.consistent = False
                result.reasons.append(
                    f"iteration seed={trace.seed} failed the buggy "
                    f"region under randomization: {trace.result!r}")
        first = runs[0]
        for trace in runs[1:]:
            if trace.patch_triggers() != first.patch_triggers():
                result.consistent = False
                result.reasons.append(
                    "criterion (a): patch trigger counts differ "
                    f"between seeds {first.seed} and {trace.seed}")
            if (len(trace.illegal_accesses)
                    != len(first.illegal_accesses)):
                result.consistent = False
                result.reasons.append(
                    "criterion (b): neutralized illegal-access totals "
                    f"differ between seeds {first.seed} and {trace.seed}")
            if trace.access_multiset() != first.access_multiset():
                result.consistent = False
                result.reasons.append(
                    "criterion (c): illegal accesses differ in "
                    "instruction/offset identity between seeds "
                    f"{first.seed} and {trace.seed}")


def _null_policy():
    from repro.heap.extension import ChangePolicy
    return ChangePolicy()
