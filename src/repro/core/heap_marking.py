"""Heap marking (paper Section 4.1, Figure 3).

Phase 1 must not pick a checkpoint that is *after* the bug-triggering
point just because preventive changes disturbed the heap layout enough
to dodge the failure.  Heap marking exposes bugs that were already
triggered before the checkpoint:

* every free chunk's payload is filled with canary values, so a
  pre-checkpoint dangling pointer read hits the canary (and fails) and
  a dangling write corrupts it (and is detected);
* a canary-filled guard object is allocated after the last object in
  the heap, so a pre-checkpoint overflow state that would silently run
  into the wilderness corrupts the guard instead.

After the re-execution, :meth:`HeapMarking.scan` checks the marks that
are still supposed to be intact.  Chunks legitimately reused by the
re-execution are skipped (their marks were overwritten by rightful
owners).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.heap.allocator import LeaAllocator
from repro.heap.base import Memory
from repro.heap.canary import canary_fill, corrupted_offsets
from repro.heap.chunk import HEADER_SIZE

GUARD_SIZE = 1024


@dataclass
class MarkCorruption:
    """One corrupted mark found by the scan."""

    kind: str                # "free-chunk" | "top-guard"
    addr: int
    offsets: List[int] = field(default_factory=list)


class HeapMarking:
    """Marks the heap at rollback time; scans after re-execution."""

    def __init__(self, mem: Memory, allocator: LeaAllocator):
        self.mem = mem
        self.allocator = allocator
        self._marked_chunks: List[Tuple[int, int]] = []  # (payload, size)
        self._guard_addr = 0

    def apply(self) -> None:
        """Mark all free chunks and plant the top guard.  Call right
        after restoring the checkpoint, before re-execution."""
        self._marked_chunks = []
        for chunk in self.allocator.iter_free_chunks():
            payload = chunk.addr + HEADER_SIZE
            size = chunk.size - HEADER_SIZE
            if size > 0:
                canary_fill(self.mem, payload, size)
                self._marked_chunks.append((payload, size))
        # The guard is a real allocation so later allocations land
        # beyond it; it is never handed to the program.
        self._guard_addr = self.allocator.malloc(GUARD_SIZE)
        canary_fill(self.mem, self._guard_addr, GUARD_SIZE)

    def scan(self) -> List[MarkCorruption]:
        """Check surviving marks.  A chunk that the allocator reused
        during re-execution is skipped: its canary was legitimately
        overwritten by the new owner."""
        still_free = {
            (chunk.addr + HEADER_SIZE, chunk.size - HEADER_SIZE)
            for chunk in self.allocator.iter_free_chunks()}
        corruptions: List[MarkCorruption] = []
        for payload, size in self._marked_chunks:
            if (payload, size) not in still_free:
                continue
            offsets = corrupted_offsets(self.mem, payload, size)
            if offsets:
                corruptions.append(
                    MarkCorruption("free-chunk", payload, offsets))
        if self._guard_addr:
            offsets = corrupted_offsets(self.mem, self._guard_addr,
                                        GUARD_SIZE)
            if offsets:
                corruptions.append(
                    MarkCorruption("top-guard", self._guard_addr, offsets))
        return corruptions
