"""On-site bug reports (paper Section 5, Figure 5).

A report bundles, beyond the usual core dump: the diagnosis log, the
runtime patch information, memory allocation/deallocation traces in the
buggy region with and without the patch, and the illegal-access trace.
``render()`` produces the textual layout of Figure 5.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.diagnosis import Diagnosis
from repro.core.patches import RuntimePatch
from repro.core.validation import ValidationResult
from repro.heap.extension import IllegalAccess, MMTraceEntry
from repro.obs.recorder import FlightRecording
from repro.util.events import EventLog


@dataclass
class BugReport:
    program_name: str
    diagnosis: Diagnosis
    recovery_time_ns: int
    validation: Optional[ValidationResult] = None
    diagnosis_log: Optional[EventLog] = None
    #: Bounded flight-recorder snapshot taken at failure time (last-N
    #: events, allocations, illegal accesses) -- replaces attaching
    #: unbounded traces to the report.
    flight: Optional[FlightRecording] = None
    notes: List[str] = field(default_factory=list)

    # -- derived views ---------------------------------------------------

    def patch_trigger_counts(self) -> Dict[int, int]:
        """patch_id -> triggers observed in the first validation run."""
        if self.validation and self.validation.iterations:
            return dict(self.validation.iterations[0].patch_triggers())
        return {p.patch_id: p.trigger_count
                for p in self.diagnosis.patches}

    def illegal_access_summary(self) -> Dict[int, Dict[str, object]]:
        """patch_id -> {reads, writes, by_function: {fn: #instrs}}."""
        summary: Dict[int, Dict[str, object]] = {}
        if not (self.validation and self.validation.iterations):
            return summary
        accesses = self.validation.iterations[0].illegal_accesses
        instrs_by_patch: Dict[int, Dict[str, set]] = defaultdict(
            lambda: defaultdict(set))
        for access in accesses:
            pid = access.patch_id if access.patch_id is not None else -1
            entry = summary.setdefault(
                pid, {"reads": 0, "writes": 0, "total": 0})
            entry["total"] += 1
            entry["writes" if access.is_write else "reads"] += 1
            instrs_by_patch[pid][access.instr_id[0]].add(access.instr_id)
        for pid, by_fn in instrs_by_patch.items():
            summary[pid]["by_function"] = {
                fn: len(instrs) for fn, instrs in sorted(by_fn.items())}
        return summary

    def mm_trace_diff(self, limit: int = 40) -> List[str]:
        """Side-by-side lines of unpatched vs patched mm traces
        (Figure 5 item 4)."""
        if not self.validation:
            return []
        orig = self.validation.baseline_mm_trace
        patched = (self.validation.iterations[0].mm_trace
                   if self.validation.iterations else [])
        lines = []
        for i in range(min(max(len(orig), len(patched)), limit)):
            left = orig[i].render() if i < len(orig) else ""
            right = patched[i].render() if i < len(patched) else ""
            marker = "|" if left.split(":")[0] != right.split(":")[0] \
                else "|"
            lines.append(f"{left:<42s} {marker} {right}")
        return lines

    # -- rendering ----------------------------------------------------------

    def render(self, mm_trace_limit: int = 20,
               redact_times: bool = False) -> str:
        """Figure 5 layout.  With ``redact_times`` every time-bearing
        field is masked: execution backends agree on *what* was
        diagnosed, patched, and validated byte-for-byte, while the
        simulated timestamps legitimately differ (max-over-workers vs
        serial sum), so equivalence checks compare redacted renders."""
        diag = self.diagnosis
        out: List[str] = ["Bug report:"]
        fault = diag.failure.fault if diag.failure else None
        out.append(f"1. Failure coredump: {fault.describe() if fault else 'n/a'}")
        if redact_times:
            recovery_s = validation_s = "---"
        else:
            recovery_s = f"{self.recovery_time_ns / 1e9:.3f}"
            validation_s = "{:.3f}".format(
                self.validation.time_ns / 1e9 if self.validation else 0.0)
        out.append(
            f"2. Diagnosis summary: recovery: "
            f"{recovery_s}(s); validation: "
            f"{validation_s}(s); rollbacks: {diag.rollbacks}")
        if diag.search_info:
            # Backend-invariant fields only: probes *consumed* and
            # statically pruned are properties of the serial decision
            # path, identical under any executor; probes *executed*
            # (incl. discarded speculation) legitimately differs
            # serial-vs-fork and lives in metrics/search_info instead.
            info = diag.search_info
            out.append(
                f"    search: policy={info['policy']}; probes "
                f"consumed: {info['probes_consumed']}; probes pruned: "
                f"{info['probes_pruned']}; call-site arms pruned: "
                f"{info['arms_pruned']}")
        if self.diagnosis_log is not None:
            for event in self.diagnosis_log.of_kind("diagnosis"):
                out.append(
                    f"    {event.render(redact_time=redact_times)}")

        triggers = self.patch_trigger_counts()
        bug_desc = ", ".join(b.value for b in diag.bug_types)
        out.append(
            f"3. Patch applied: {len(diag.patches)} patch(es) for "
            f"{bug_desc or 'no identified bug'}")
        for patch in diag.patches:
            count = triggers.get(patch.patch_id, 0)
            out.append(f"    Patch {patch.patch_id}: "
                       f"{patch.bug_type.patch_description} on callsite "
                       f"(triggered {count} times)")
            out.append(patch.point.render())

        out.append("4. Memory allocations/deallocations in buggy region "
                   "(without patch | with patch):")
        for line in self.mm_trace_diff(mm_trace_limit):
            out.append(f"    {line}")

        out.append("5. Illegal access trace in buggy region:")
        summary = self.illegal_access_summary()
        if not summary:
            out.append("    (validation disabled or no illegal accesses)")
        for pid in sorted(summary):
            entry = summary[pid]
            out.append(
                f"    Summary: patch {pid}: {entry['total']} accesses "
                f"({entry['reads']} read, {entry['writes']} write):")
            for fn, n_instr in entry.get("by_function", {}).items():
                out.append(
                    f"        from {n_instr} instruction(s) in {fn}")
        if self.flight is not None:
            out.append("6. Flight recorder (bounded, most recent last):")
            if redact_times:
                out.append("    (redacted)")
            else:
                for line in self.flight.render().splitlines():
                    out.append(f"    {line}")
        if self.notes:
            out.append("Notes:")
            out.extend(f"  - {note}" for note in self.notes)
        return "\n".join(out)
