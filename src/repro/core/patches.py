"""Runtime patches and the patch pool.

A runtime patch (paper Section 2) is the pair of a preventive change
and a patch application point -- the allocation or deallocation
call-site of the bug-triggering memory objects.  During normal
execution the allocator extension asks the pool, at every allocation
and deallocation, whether the current call-site matches a patch; if so
the patch's preventive change is applied to that object only.

The pool is keyed by *program*, not process: patches persist to disk
(JSON) and are picked up by subsequent runs and by other processes
running the same executable, which is how First-Aid prevents
reoccurrence system-wide.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional

from repro.core.bugtypes import BugType
from repro.core.changes import (
    AllocChange,
    FreeChange,
    combine_alloc,
    combine_free,
    preventive_change,
)
from repro.errors import PatchError
from repro.heap.extension import AllocDecision, ChangePolicy, FreeDecision
from repro.util.callsite import CallSite

#: On-disk schema of ``PatchPool.save()``.  Version 1 (the seed) had no
#: ``schema`` field and dropped mutable bookkeeping (``trigger_count``)
#: on the floor; version 2 round-trips every field.  ``load`` accepts
#: both and rejects anything newer than it understands.
POOL_SCHEMA = 2


def patch_key(bug_type: BugType, point: CallSite) -> str:
    """The cross-process identity of a patch: two processes that
    independently diagnose the same bug at the same call-site produce
    the same key, which is what the shared store unions on (their
    process-local ``patch_id``s are arbitrary)."""
    frames = ";".join(f"{fn}+{pc}" for fn, pc in point.frames)
    return f"{bug_type.value}@{frames}"


@dataclass
class RuntimePatch:
    """One runtime patch."""

    patch_id: int
    bug_type: BugType
    point: CallSite               # application point
    apply_at: str                 # "alloc" | "free"
    created_time_ns: int = 0
    validated: bool = False
    #: times the patch matched an operation (bookkeeping for Table 4
    #: and the bug report's "triggered N times").
    trigger_count: int = 0

    def __post_init__(self) -> None:
        if self.apply_at not in ("alloc", "free"):
            raise PatchError(f"bad apply_at {self.apply_at!r}")
        if self.apply_at != self.bug_type.patch_point:
            raise PatchError(
                f"{self.bug_type.value} patches apply at "
                f"{self.bug_type.patch_point}, not {self.apply_at}")

    @property
    def change(self):
        return preventive_change(self.bug_type)

    @property
    def key(self) -> str:
        return patch_key(self.bug_type, self.point)

    def describe(self) -> str:
        return (f"{self.bug_type.patch_description} on callsite:\n"
                f"{self.point.render()}")

    def to_json(self) -> dict:
        """Full-fidelity wire/disk form: every field, including the
        mutable bookkeeping (``trigger_count``), round-trips."""
        return {
            "patch_id": self.patch_id,
            "bug_type": self.bug_type.value,
            "point": self.point.to_json(),
            "apply_at": self.apply_at,
            "created_time_ns": self.created_time_ns,
            "validated": self.validated,
            "trigger_count": self.trigger_count,
        }

    @classmethod
    def from_json(cls, data: dict) -> "RuntimePatch":
        return cls(
            patch_id=int(data["patch_id"]),
            bug_type=BugType(data["bug_type"]),
            point=CallSite.from_json(data["point"]),
            apply_at=str(data["apply_at"]),
            created_time_ns=int(data.get("created_time_ns", 0)),
            validated=bool(data.get("validated", False)),
            trigger_count=int(data.get("trigger_count", 0)),
        )


class PatchPool:
    """All patches for one program."""

    def __init__(self, program_name: str):
        self.program_name = program_name
        self._patches: Dict[int, RuntimePatch] = {}
        #: (bug_type, point) identity index; ``find`` is called from
        #: ``new_patch`` on every diagnosis and from store merges, so
        #: it must not scan the pool.
        self._by_key: Dict[str, RuntimePatch] = {}
        self._next_id = 1

    # ------------------------------------------------------------------

    def _register(self, patch: RuntimePatch) -> None:
        self._patches[patch.patch_id] = patch
        self._by_key[patch.key] = patch
        self._next_id = max(self._next_id, patch.patch_id + 1)

    def new_patch(self, bug_type: BugType, point: CallSite,
                  created_time_ns: int = 0) -> RuntimePatch:
        """Create, register, and return a patch.  Duplicate
        (bug type, point) pairs return the existing patch."""
        existing = self.find(bug_type, point)
        if existing is not None:
            return existing
        patch = RuntimePatch(self._next_id, bug_type, point,
                             bug_type.patch_point, created_time_ns)
        self._register(patch)
        return patch

    def find(self, bug_type: BugType,
             point: CallSite) -> Optional[RuntimePatch]:
        return self._by_key.get(patch_key(bug_type, point))

    def find_key(self, key: str) -> Optional[RuntimePatch]:
        """Lookup by the cross-process :func:`patch_key` string."""
        return self._by_key.get(key)

    def remove(self, patch_id: int) -> None:
        patch = self._patches.pop(patch_id, None)
        if patch is not None:
            self._by_key.pop(patch.key, None)

    def remove_key(self, key: str) -> Optional[RuntimePatch]:
        """Remove (and return) the patch with this cross-process key,
        e.g. when another process retracted it from the shared store."""
        patch = self._by_key.pop(key, None)
        if patch is not None:
            self._patches.pop(patch.patch_id, None)
        return patch

    def absorb(self, patches: Iterable[RuntimePatch]) -> bool:
        """Merge foreign patches (another process's, via the shared
        store) into this pool by :func:`patch_key` identity.  Existing
        entries keep their local ``patch_id`` and take the max trigger
        count and the sticky validated flag; unknown keys are adopted
        under a fresh local id.  Returns True when anything changed."""
        changed = False
        for incoming in patches:
            mine = self._by_key.get(incoming.key)
            if mine is None:
                adopted = replace(incoming, patch_id=self._next_id)
                self._register(adopted)
                changed = True
                continue
            if incoming.trigger_count > mine.trigger_count:
                mine.trigger_count = incoming.trigger_count
                changed = True
            if incoming.validated and not mine.validated:
                mine.validated = True
                changed = True
        return changed

    def get(self, patch_id: int) -> Optional[RuntimePatch]:
        return self._patches.get(patch_id)

    def patches(self) -> List[RuntimePatch]:
        return list(self._patches.values())

    def __len__(self) -> int:
        return len(self._patches)

    def policy(self) -> "PatchPolicy":
        return PatchPolicy(self)

    def copy(self) -> "PatchPool":
        """A deep, frozen copy: same patches (including live trigger
        counts and validation flags) but fully decoupled objects, so
        mutations on either side never cross over.  Validation clones
        and re-execution workers run against a copy."""
        pool = PatchPool(self.program_name)
        for patch in self._patches.values():
            pool._register(replace(patch))
        pool._next_id = max(pool._next_id, self._next_id)
        return pool

    @classmethod
    def from_patches(cls, program_name: str,
                     items: Iterable[dict]) -> "PatchPool":
        """Rebuild a pool from ``to_json()`` payloads (the wire form a
        validation task ships to a worker process).  Full fidelity:
        trigger counts and validation flags survive the trip, honoring
        :meth:`copy`'s contract for worker-side copies too."""
        pool = cls(program_name)
        for item in items:
            pool._register(RuntimePatch.from_json(item))
        return pool

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def save(self, path: str) -> None:
        """Atomically write the pool to ``path`` as JSON."""
        payload = {
            "schema": POOL_SCHEMA,
            "program": self.program_name,
            "patches": [p.to_json() for p in self._patches.values()],
        }
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, indent=2)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    @classmethod
    def load(cls, path: str) -> "PatchPool":
        """Load a saved pool.  Corrupt or truncated JSON, a wrong
        payload shape, and an unknown future schema all surface as
        :class:`PatchError` (never a raw ``json.JSONDecodeError``);
        ``FileNotFoundError`` passes through for ``load_or_create``."""
        with open(path) as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                raise PatchError(
                    f"patch pool at {path} is corrupt or truncated: "
                    f"{exc}") from exc
        try:
            schema = int(payload.get("schema", 1))
            if schema > POOL_SCHEMA:
                raise PatchError(
                    f"patch pool at {path} uses schema {schema}; this "
                    f"build understands <= {POOL_SCHEMA}")
            pool = cls(payload["program"])
            for item in payload["patches"]:
                pool._register(RuntimePatch.from_json(item))
        except PatchError:
            raise
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise PatchError(
                f"patch pool at {path} has a malformed payload: "
                f"{exc!r}") from exc
        return pool

    @classmethod
    def load_or_create(cls, path: str, program_name: str) -> "PatchPool":
        """Load ``path`` if it exists, else a fresh pool.  Free of the
        exists()/load() TOCTOU window: the file is opened directly and
        a concurrent unlink surfaces as the fresh-pool path, not a
        crash."""
        try:
            pool = cls.load(path)
        except FileNotFoundError:
            return cls(program_name)
        if pool.program_name != program_name:
            raise PatchError(
                f"patch pool at {path} belongs to "
                f"{pool.program_name!r}, not {program_name!r}")
        return pool


class PatchPolicy(ChangePolicy):
    """Normal-mode policy: apply a patch's preventive change to objects
    whose allocation/deallocation call-site matches the patch point."""

    def __init__(self, pool: PatchPool):
        self._pool = pool
        #: patch_key -> preventive hits scored by *this* policy.  A
        #: patch's ``trigger_count`` is fleet-wide (store merges take
        #: the max across processes), so health beacons report these
        #: locally-attributed counts instead: they depend only on the
        #: local execution, never on peer publish timing.
        self.local_triggers: Dict[str, int] = {}
        self._rebuild()

    def _rebuild(self) -> None:
        self._alloc: Dict[CallSite, RuntimePatch] = {}
        self._free: Dict[CallSite, RuntimePatch] = {}
        for patch in self._pool.patches():
            table = self._alloc if patch.apply_at == "alloc" else self._free
            table[patch.point] = patch

    def refresh(self) -> None:
        """Re-read the pool after patches were added or removed."""
        self._rebuild()

    def has_patch(self, bug_type: BugType, point: CallSite) -> bool:
        """True when a patch for exactly this (bug type, site) already
        exists.  The sampling plane asks before raising a guard hit:
        an already-patched bug must not re-enter the pipeline."""
        return self._pool.find(bug_type, point) is not None

    def frozen_copy(self) -> "PatchPolicy":
        """A policy over a frozen copy of the pool (see
        :meth:`PatchPool.copy`): clones and workers must not observe
        patches installed after the copy, and their trigger-count
        bookkeeping must not bleed into the live pool."""
        return PatchPolicy(self._pool.copy())

    def on_alloc(self, callsite: Optional[CallSite]) -> AllocDecision:
        if callsite is None:
            return AllocDecision.plain()
        patch = self._alloc.get(callsite)
        if patch is None:
            return AllocDecision.plain()
        patch.trigger_count += 1
        key = patch.key
        self.local_triggers[key] = self.local_triggers.get(key, 0) + 1
        change = patch.change
        assert isinstance(change, AllocChange)
        return combine_alloc([change], patch_id=patch.patch_id)

    def on_free(self, callsite: Optional[CallSite],
                user_addr: int) -> FreeDecision:
        if callsite is None:
            return FreeDecision.plain()
        patch = self._free.get(callsite)
        if patch is None:
            return FreeDecision.plain()
        patch.trigger_count += 1
        key = patch.key
        self.local_triggers[key] = self.local_triggers.get(key, 0) + 1
        change = patch.change
        assert isinstance(change, FreeChange)
        # Delay-free patches always check parameters: a patched free
        # site implies dangling/double-free suspicion.
        decision = combine_free([change], patch_id=patch.patch_id)
        decision.check_param = True
        return decision
