"""The two-phase diagnostic engine (paper Section 4).

Phase 1 finds the latest checkpoint from which a patch can take effect:
roll back, re-execute plain (success means the bug was nondeterministic
-- only timing changed), then re-execute with *all* preventive changes
plus heap marking; walk to older checkpoints until the preventive run
passes the failure region with clean marks.

Phase 2 identifies the bug types and the patch application points.  Bug
types are tested group-by-group: the exposing change for the group
under test, preventive changes for everything else, so only the tested
types can manifest (this is the correctness property Section 4.3
contrasts with Rx).  Directly-manifesting types (overflow, dangling
write, double free) yield their call-sites from the evidence itself;
read-type bugs (dangling read, uninitialized read) are located by
binary search over call-sites with preventive changes on the
complement -- O(M log N) re-executions for M bug sites among N.

The "failure region" criterion follows Section 4.1: a re-execution
passes if it survives to ``failure_instr + window_intervals x
checkpoint_interval`` (3 intervals in the paper and here) or finishes
the program cleanly before that.

Diagnosis is rollback-heavy (6-7+ rollbacks per bug, more under binary
search), so it leans directly on the checkpoint manager's incremental
restore: every ``rollback_to`` here rewrites only the pages that differ
between the current heap and the target checkpoint (plus whatever the
re-execution dirtied), not the whole heap.

**Parallel mode.**  Probes are deterministic functions of (checkpoint,
policy, entropy salt), so independent probes can run concurrently.
With an execution backend attached (``executor``), the engine plans
each probe wave up front -- the phase-1b checkpoint walk, the phase-2
group batch, whole linear rounds, and speculative halves of the binary
search tree -- dispatches it as one batch of
:class:`~repro.parallel.tasks.ReexecTask`, then *consumes* results
along the serial decision order.  Consumption replays exactly the
bookkeeping the serial engine would have done (salt ledger, rollback
counters, events, spans), so serial and parallel modes produce
byte-identical diagnoses; only simulated timestamps differ, because
batch work is charged max-over-workers (DESIGN.md §8).  Without an
executor the engine runs the original live-process rollback loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.checkpoint.manager import CheckpointManager
from repro.checkpoint.snapshot import Checkpoint
from repro.core.bugtypes import ALL_BUG_TYPES, CHANGE_GROUPS, BugType
from repro.core.changes import (
    DiagnosticPolicy,
    changes_for,
    exposing_change,
    preventive_change,
)
from repro.core.heap_marking import HeapMarking, MarkCorruption
from repro.core.patches import PatchPool, RuntimePatch
from repro.heap.extension import ExtensionMode, Manifestations
from repro.monitors.base import FailureEvent
from repro.obs.telemetry import Telemetry
from repro.parallel.tasks import ReexecTask, encode_state
from repro.process import Process
from repro.util.callsite import CallSite
from repro.util.events import EventLog
from repro.vm.machine import RunReason, RunResult


#: gauge encoding for the ``diagnosis.search_policy`` metric
_POLICY_CODES = {"fixed": 0, "pruned": 1, "bandit": 2}


class Verdict(Enum):
    PATCHED = "patched"
    NONDETERMINISTIC = "nondeterministic"
    NON_PATCHABLE = "non-patchable"


@dataclass
class Evidence:
    """What phase 2 learned about one bug type."""

    bug_type: BugType
    sites: List[CallSite] = field(default_factory=list)
    details: List[str] = field(default_factory=list)


@dataclass
class Diagnosis:
    """The diagnostic engine's result."""

    verdict: Verdict
    bug_types: List[BugType] = field(default_factory=list)
    evidence: Dict[BugType, Evidence] = field(default_factory=dict)
    patches: List[RuntimePatch] = field(default_factory=list)
    checkpoint: Optional[Checkpoint] = None
    rollbacks: int = 0
    notes: List[str] = field(default_factory=list)
    failure: Optional[FailureEvent] = None
    #: search-policy accounting for this diagnosis (DESIGN.md §13):
    #: policy name, probes executed (incl. discarded speculation),
    #: probes consumed (the serial decision path), probes statically
    #: pruned, and call-site arms dropped before the binary search.
    search_info: Optional[Dict] = None


@dataclass
class _Outcome:
    """One diagnostic re-execution's observations."""

    result: RunResult
    passed: bool
    manifestations: Manifestations
    mark_corruptions: List[MarkCorruption]
    policy: DiagnosticPolicy


@dataclass
class _ProbeReq:
    """One planned probe in a batch: checkpoint + policy + its 1-based
    serial position (which pre-assigns the entropy salt the probe would
    receive in serial decision order)."""

    checkpoint: Checkpoint
    policy: DiagnosticPolicy
    salt_offset: int
    mark: bool = False


class _LiveBatch:
    """No executor: probes run lazily on the live process, one per
    consume, exactly as the original serial engine did."""

    def __init__(self, engine: "DiagnosticEngine",
                 reqs: List[_ProbeReq], window_end: int):
        self._engine = engine
        self._reqs = reqs
        self._window_end = window_end

    def consume(self, index: int) -> "_Outcome":
        req = self._reqs[index]
        return self._engine._reexecute(req.checkpoint, req.policy,
                                       self._window_end, mark=req.mark)

    def finish(self) -> None:
        pass


class _TaskBatch:
    """A speculative probe batch on an execution backend.

    All tasks dispatch up front; the engine then consumes results along
    the serial decision order.  Each consume advances the salt ledger
    and rollback counters exactly as the live probe would have, and
    charges the main clock *incrementally* under the max-over-workers
    rule: consumed tasks are assigned round-robin to worker lanes, the
    batch's cumulative cost is the busiest lane, and consuming task i
    charges only the delta by which the busiest lane grew.  Rollback
    cost is modeled as a flat ``restore_base_ns`` per task (a worker
    clones from the already-materialized snapshot -- fork/COW -- rather
    than patching pages back into the live heap).  Discarded
    speculation charges nothing (it ran on spare cores off the critical
    path) but is counted in ``parallel.tasks_discarded``.
    """

    def __init__(self, engine: "DiagnosticEngine",
                 reqs: List[_ProbeReq], window_end: int):
        self._engine = engine
        self._reqs = reqs
        base = engine._entropy_salt
        self._tasks = [
            engine._build_probe_task(req, base + req.salt_offset,
                                     window_end)
            for req in reqs]
        if engine.chaos is not None and self._tasks:
            # Chaos markers ride on the first task of the batch -- the
            # first one the serial decision order consumes -- so an
            # armed probe fault is guaranteed to be observed.  The
            # raise fires identically in a worker or in-process; the
            # hang only bites real workers (the in-process rescue path
            # ignores it, which *is* the rescue).
            if engine.chaos.take("probe_raise"):
                self._tasks[0].raise_marker = True
            if engine.chaos.take("probe_hang"):
                self._tasks[0].hang_marker = True
        engine._probes_executed += len(self._tasks)
        engine._m_probes_total.inc(len(self._tasks))
        self._handle = engine.executor.submit(self._tasks)
        workers = max(1, engine.executor.workers)
        self._lanes_rb = [0] * workers
        self._lanes_rx = [0] * workers
        self._charged_rb = 0
        self._charged_rx = 0
        self._consumed = 0

    def consume(self, index: int) -> "_Outcome":
        engine = self._engine
        out = self._handle.result(index)
        task = self._tasks[index]
        checkpoint = self._reqs[index].checkpoint
        engine._entropy_salt = task.salt
        engine._rollbacks += 1
        engine._m_iterations.inc()
        engine._m_rollbacks.inc()
        engine._probes_consumed += 1
        engine._m_probes_consumed.inc()
        lane = self._consumed % len(self._lanes_rb)
        self._consumed += 1
        self._lanes_rb[lane] += engine.process.costs.restore_base_ns
        self._lanes_rx[lane] += out.time_ns
        delta_rb = max(self._lanes_rb) - self._charged_rb
        delta_rx = max(self._lanes_rx) - self._charged_rx
        self._charged_rb += delta_rb
        self._charged_rx += delta_rx
        clock = engine.process.clock
        with engine.telemetry.span("diagnosis.iteration",
                                   checkpoint=checkpoint.index,
                                   backend=engine.executor.name,
                                   lane=lane) as it_span:
            with engine.telemetry.span("rollback",
                                       to_index=checkpoint.index):
                clock.charge(delta_rb)
            with engine.telemetry.span("reexec"):
                clock.charge(delta_rx)
            it_span.set(passed=out.passed,
                        reason=out.result.reason.value,
                        task_time_ns=out.time_ns)
        engine.events.emit(
            clock.now_ns, "diagnosis.iteration",
            checkpoint=checkpoint.index, passed=out.passed,
            reason=out.result.reason.value,
            overflow_hits=len(out.manifestations.overflow_hits),
            dangling_write_hits=len(
                out.manifestations.dangling_write_hits),
            double_frees=len(out.manifestations.double_free_events),
            mark_corruptions=len(out.mark_corruptions))
        return _Outcome(out.result, out.passed, out.manifestations,
                        out.mark_corruptions, out.policy)

    def finish(self) -> None:
        self._engine.executor.note_discarded(
            self._handle.executed - self._consumed)


class DiagnosticEngine:
    """Runs diagnosis for one failure of one process."""

    def __init__(self, process: Process, manager: CheckpointManager,
                 pool: PatchPool, events: Optional[EventLog] = None,
                 max_checkpoint_search: int = 8,
                 window_intervals: int = 3,
                 max_rollbacks: int = 200,
                 use_heap_marking: bool = True,
                 site_search: str = "binary",
                 telemetry: Optional[Telemetry] = None,
                 executor=None,
                 chaos=None,
                 search=None):
        if site_search not in ("binary", "linear"):
            raise ValueError(f"site_search must be 'binary' or "
                             f"'linear', not {site_search!r}")
        self.process = process
        self.manager = manager
        self.pool = pool
        self.events = events if events is not None else EventLog()
        self.telemetry = telemetry or Telemetry.disabled()
        self._m_iterations = \
            self.telemetry.metrics.counter("diagnosis.iterations")
        self._m_rollbacks = \
            self.telemetry.metrics.counter("diagnosis.rollbacks")
        self._m_probes_total = \
            self.telemetry.metrics.counter("diagnosis.probes_total")
        self._m_probes_consumed = \
            self.telemetry.metrics.counter("diagnosis.probes_consumed")
        self._m_probes_pruned = \
            self.telemetry.metrics.counter("diagnosis.probes_pruned")
        self._m_arms_pruned = \
            self.telemetry.metrics.counter("diagnosis.arms_pruned")
        self._m_pruner_fallback = \
            self.telemetry.metrics.counter("diagnosis.pruner_fallback")
        self._m_policy = \
            self.telemetry.metrics.gauge("diagnosis.search_policy")
        self.max_checkpoint_search = max_checkpoint_search
        self.window_intervals = window_intervals
        self.max_rollbacks = max_rollbacks
        #: ablation knobs: disabling heap marking reproduces the
        #: Figure 3 checkpoint misidentification; 'linear' site search
        #: costs O(M*N) rollbacks instead of O(M log N).
        self.use_heap_marking = use_heap_marking
        self.site_search = site_search
        #: execution backend for probe batches (see module docstring);
        #: None keeps the original live-process serial loop.
        self.executor = executor
        #: Optional :class:`~repro.chaos.ChaosPlan`; consulted once per
        #: probe, never per instruction.
        self.chaos = chaos
        #: :class:`~repro.search.state.SearchState` -- search policy,
        #: cached static facts, bandit arms.  The default is the fixed
        #: (legacy) schedule.  Imported lazily: repro.core's package
        #: init pulls in this module, and repro.search depends on
        #: repro.core.bugtypes.
        if search is None:
            from repro.search.state import SearchState
            search = SearchState()
        self.search = search
        #: Disable the phase-1a "plain replay must reproduce" prune.
        #: The fallback after a rejected sampled fast path sets this:
        #: the failing run carried a guard the plain replay lacks, so
        #: the prune's premise does not hold there -- a guard false
        #: positive must reach the plain probe to read as
        #: NONDETERMINISTIC.
        self.force_plain_probe = False
        self._rollbacks = 0
        self._probes_executed = 0
        self._probes_consumed = 0
        self._probes_pruned = 0
        self._arms_pruned = 0
        self._entropy_salt = 1000
        #: encoded snapshots per checkpoint index -- probes from the
        #: same checkpoint reuse the materialization.
        self._state_cache: Dict[int, tuple] = {}

    # ------------------------------------------------------------------
    # public entry
    # ------------------------------------------------------------------

    def diagnose(self, failure: FailureEvent) -> Diagnosis:
        self._probes_executed = 0
        self._probes_consumed = 0
        self._probes_pruned = 0
        self._arms_pruned = 0
        self._m_policy.set(_POLICY_CODES[self.search.policy])
        with self.telemetry.span("diagnosis") as span:
            diag = self._diagnose(failure)
            diag.search_info = {
                "policy": self.search.policy,
                "probes_executed": self._probes_executed,
                "probes_consumed": self._probes_consumed,
                "probes_pruned": self._probes_pruned,
                "arms_pruned": self._arms_pruned,
            }
            span.set(verdict=diag.verdict.value,
                     rollbacks=diag.rollbacks,
                     search_policy=self.search.policy,
                     probes_executed=self._probes_executed,
                     probes_consumed=self._probes_consumed,
                     probes_pruned=self._probes_pruned,
                     arms_pruned=self._arms_pruned)
            return diag

    def diagnose_sampled(self, failure: FailureEvent) -> Diagnosis:
        """Fast-path diagnosis from a sampled guard hit (DESIGN.md
        §15).  The guard already captured the bug type and the
        responsible call-site, so phases 1 and 2 are skipped entirely:
        the change-group is seeded straight from the detection
        evidence and a patch minted at the attributed site.  The
        rollback target is the oldest checkpoint within one
        failure-region window -- a guard-caught bug's trigger lies at
        most that far behind detection (the Section 4.1 reasoning the
        full pipeline applies forward).  Validation is the safety
        net: the caller falls back to the full pipeline when it
        rejects the detection-seeded patch."""
        det = failure.detection
        self._m_policy.set(_POLICY_CODES[self.search.policy])
        with self.telemetry.span("diagnosis.sampled") as span:
            diag = Diagnosis(verdict=Verdict.NON_PATCHABLE,
                             failure=failure)
            self.events.emit(self.process.clock.now_ns,
                             "diagnosis.start",
                             failure=failure.describe(), sampled=True)
            candidates = self.manager.recent(self.window_intervals + 1)
            if det is None or det.site is None or not candidates:
                diag.notes.append(
                    "sampled detection lacks attribution or "
                    "checkpoints; full pipeline required")
                span.set(verdict=diag.verdict.value, fast_path=True)
                return diag
            checkpoint = candidates[-1]   # oldest within the window
            diag.checkpoint = checkpoint
            diag.bug_types = [det.bug_type]
            evidence = Evidence(det.bug_type, [det.site])
            evidence.details = [det.describe()]
            diag.evidence[det.bug_type] = evidence
            now = self.process.clock.now_ns
            patch = self.pool.new_patch(det.bug_type, det.site, now)
            diag.patches = [patch]
            diag.verdict = Verdict.PATCHED
            diag.notes.append(
                "sampled fast path: change-group seeded from the "
                "guard's detection evidence (phases 1-2 skipped)")
            diag.search_info = {
                "policy": self.search.policy,
                "probes_executed": 0,
                "probes_consumed": 0,
                "probes_pruned": 0,
                "arms_pruned": 0,
                "fast_path": True,
            }
            self.events.emit(
                self.process.clock.now_ns, "diagnosis.sampled_fast_path",
                bug_type=det.bug_type.value, site=repr(det.site),
                checkpoint=checkpoint.index)
            span.set(verdict=diag.verdict.value, fast_path=True)
            self._log_done(diag)
            return diag

    def _diagnose(self, failure: FailureEvent) -> Diagnosis:
        window_end = (failure.instr_count
                      + self.window_intervals * self.manager.interval)
        self._rollbacks = 0
        diag = Diagnosis(verdict=Verdict.NON_PATCHABLE, failure=failure)
        self.events.emit(self.process.clock.now_ns, "diagnosis.start",
                         failure=failure.describe())

        candidates = self.manager.recent(self.max_checkpoint_search)
        if not candidates:
            diag.notes.append("no checkpoints available")
            return diag

        # Static facts gate every pruning decision.  ``static_ok``
        # additionally requires the program to be statically
        # deterministic (no reachable RAND): then probe outcomes are
        # pure functions of (checkpoint, policy), so skipping a probe
        # whose outcome is statically forced cannot perturb any later
        # probe through the entropy-salt ledger.
        facts = self.search.facts_for(self.process.program)
        static_ok = facts is not None and facts.deterministic

        # Phase 1a: plain re-execution from the latest checkpoint.
        # With an empty patch pool the production run *was* the plain
        # policy over the same journal, so for a deterministic program
        # this probe must reproduce the failure -- skip it.
        if static_ok and len(self.pool) == 0 \
                and not self.force_plain_probe:
            self._note_pruned(
                diag, "1a", "deterministic program with empty patch "
                "pool: plain re-execution must reproduce the failure")
        else:
            outcome = self._reexecute(candidates[0], DiagnosticPolicy(),
                                      window_end)
            if outcome.passed:
                diag.verdict = Verdict.NONDETERMINISTIC
                diag.rollbacks = self._rollbacks
                diag.notes.append(
                    "plain re-execution passed the failure region; "
                    "failure attributed to a nondeterministic bug")
                self._log_done(diag)
                return diag

        # Phase 1b: all-preventive probes, newest checkpoint first,
        # with heap marking to expose pre-checkpoint bug triggers.
        # Probes from different checkpoints are independent, so the
        # whole walk dispatches speculatively; the serial early-break
        # simply leaves the rest of the batch unconsumed.  Under the
        # bandit policy the walk is split into waves sized from the
        # observed depth history instead of one full-width batch --
        # consumption order and salts are unchanged (wave k+1's batch
        # base is exactly the salt wave k's last consume set), so this
        # shapes speculation cost only.
        chosen: Optional[Checkpoint] = None
        bandit = (self.search.bandit
                  if self.search.speculates and self.executor is not None
                  and self.executor.workers > 1 else None)
        if bandit is not None:
            waves = bandit.plan_walk_waves(len(candidates),
                                           self.executor.workers)
        else:
            waves = [len(candidates)]
        pos = 0
        consumed_depth = 0
        waves_used = 0
        budget_hit = False
        for width in waves:
            wave = candidates[pos:pos + width]
            batch = self._dispatch(
                [_ProbeReq(cp, _all_preventive(), j + 1,
                           mark=self.use_heap_marking)
                 for j, cp in enumerate(wave)],
                window_end)
            waves_used += 1
            try:
                for j, checkpoint in enumerate(wave):
                    if self._rollbacks >= self.max_rollbacks:
                        budget_hit = True
                        break
                    outcome = batch.consume(j)
                    consumed_depth = pos + j + 1
                    if outcome.passed and not outcome.mark_corruptions:
                        chosen = checkpoint
                        break
                    if outcome.mark_corruptions:
                        diag.notes.append(
                            f"checkpoint #{checkpoint.index}: heap "
                            f"marking exposed "
                            f"{len(outcome.mark_corruptions)} "
                            f"pre-checkpoint corruption(s); trying "
                            f"earlier")
            finally:
                batch.finish()
            pos += width
            if chosen is not None or budget_hit:
                break
        if bandit is not None:
            bandit.observe_walk(consumed_depth, waves_used - 1)
        if chosen is None:
            diag.rollbacks = self._rollbacks
            diag.notes.append(
                "no checkpoint found from which preventive changes "
                "survive the failure; bug is non-patchable")
            self._log_done(diag)
            return diag
        diag.checkpoint = chosen
        self.events.emit(self.process.clock.now_ns,
                         "diagnosis.checkpoint_identified",
                         index=chosen.index, instr=chosen.instr_count)

        # Phase 2: identify bug types group by group.  Each probe uses
        # exposing changes for its group and preventive changes for the
        # fixed complement, so the probes are mutually independent and
        # dispatch as one batch.  Groups whose every member the static
        # mask rules out are skipped: their probe differs from the
        # all-preventive probe (which just passed from this checkpoint)
        # only in fill/canary content no reachable instruction can
        # observe, so it would pass and identify nothing.  Each skip
        # bumps the salt ledger by one, exactly as consuming the probe
        # would have, keeping later salts identical to the fixed
        # schedule's.
        identified: List[BugType] = []
        plan: List[Tuple[Sequence[BugType], Optional[int]]] = []
        reqs: List[_ProbeReq] = []
        for i, group in enumerate(CHANGE_GROUPS):
            if static_ok and not facts.group_feasible(group):
                plan.append((group, None))
            else:
                plan.append((group, len(reqs)))
                reqs.append(_ProbeReq(chosen, self._group_policy(group),
                                      i + 1))
        batch = self._dispatch(reqs, window_end) if reqs else None
        try:
            for group, probe_index in plan:
                if probe_index is None:
                    self._note_pruned(
                        diag, "2-group",
                        "statically infeasible group: "
                        + "/".join(b.value for b in group))
                    continue
                if self._rollbacks >= self.max_rollbacks:
                    break
                outcome = batch.consume(probe_index)
                identified.extend(
                    self._interpret_group(group, outcome, diag))
        finally:
            if batch is not None:
                batch.finish()

        if not identified:
            diag.rollbacks = self._rollbacks
            diag.notes.append(
                "preventive changes survive but no bug type "
                "manifested under exposure; non-patchable")
            self._log_done(diag)
            return diag
        diag.bug_types = identified

        # Phase 2b: call-sites for read-type bugs via binary search.
        # The static pruner drops arms whose exposure no read can
        # observe (canary fill at allocation / at free): the bisection
        # then runs over the kept subset, with a one-probe fallback
        # valve over the full universe inside ``_binary_search_sites``
        # guarding against analysis bugs.
        for bug_type in identified:
            evidence = diag.evidence[bug_type]
            if bug_type.identified_directly:
                continue
            universe = self._universe_for(bug_type, chosen, window_end)
            kept = universe
            if static_ok:
                kept = [site for site in universe
                        if facts.site_relevant(bug_type, site)]
                dropped = len(universe) - len(kept)
                if dropped:
                    self._arms_pruned += dropped
                    self._m_arms_pruned.inc(dropped)
                    self.events.emit(
                        self.process.clock.now_ns,
                        "diagnosis.arms_pruned",
                        bug_type=bug_type.value, dropped=dropped,
                        universe=len(universe))
            sites = self._binary_search_sites(
                chosen, bug_type, kept, window_end, identified,
                full_universe=universe)
            evidence.sites = sites
            evidence.details.append(
                f"binary search over {len(universe)} call-sites")

        # Patch generation.
        now = self.process.clock.now_ns
        for bug_type in identified:
            for site in diag.evidence[bug_type].sites:
                patch = self.pool.new_patch(bug_type, site, now)
                if patch not in diag.patches:
                    diag.patches.append(patch)
        diag.verdict = (Verdict.PATCHED if diag.patches
                        else Verdict.NON_PATCHABLE)
        if not diag.patches:
            diag.notes.append("bug types identified but no call-sites "
                              "could be isolated")
        diag.rollbacks = self._rollbacks
        self._log_done(diag)
        return diag

    def _note_pruned(self, diag: Diagnosis, phase: str,
                     reason: str) -> None:
        """Account for a probe whose outcome the static analysis
        forced.  The salt ledger advances by one exactly as consuming
        the probe would have, so every later probe sees the same salt
        under any policy."""
        self._entropy_salt += 1
        self._probes_pruned += 1
        self._m_probes_pruned.inc()
        diag.notes.append(f"probe pruned ({phase}): {reason}")
        self.events.emit(self.process.clock.now_ns,
                         "diagnosis.probe_pruned",
                         phase=phase, reason=reason)

    def _log_done(self, diag: Diagnosis) -> None:
        self.events.emit(
            self.process.clock.now_ns, "diagnosis.done",
            verdict=diag.verdict.value,
            bug_types=[b.value for b in diag.bug_types],
            patches=len(diag.patches), rollbacks=diag.rollbacks)

    # ------------------------------------------------------------------
    # re-execution plumbing
    # ------------------------------------------------------------------

    def _reexecute(self, checkpoint: Checkpoint, policy: DiagnosticPolicy,
                   window_end: int, mark: bool = False) -> _Outcome:
        process = self.process
        if self.chaos is not None:
            from repro.chaos.faults import ChaosError
            if self.chaos.take("probe_raise"):
                self.events.emit(process.clock.now_ns,
                                 "chaos.probe_raise",
                                 checkpoint=checkpoint.index)
                raise ChaosError("injected probe crash during "
                                 "diagnostic re-execution")
            if self.chaos.take("probe_hang"):
                # An in-process hung probe: the engine's deadline fires
                # after probe_timeout_ns of simulated time, then the
                # probe is rescued by re-running it inline.
                process.clock.charge(self.chaos.probe_timeout_ns)
                self.events.emit(process.clock.now_ns,
                                 "chaos.probe_hang_rescued",
                                 checkpoint=checkpoint.index,
                                 deadline_ns=self.chaos.probe_timeout_ns)
        with self.telemetry.span("diagnosis.iteration",
                                 checkpoint=checkpoint.index) as it_span:
            with self.telemetry.span("rollback",
                                     to_index=checkpoint.index):
                self.manager.rollback_to(checkpoint)
            self._rollbacks += 1
            self._m_iterations.inc()
            self._m_rollbacks.inc()
            self._probes_executed += 1
            self._probes_consumed += 1
            self._m_probes_total.inc()
            self._m_probes_consumed.inc()
            self._entropy_salt += 1
            process.reseed_entropy(self._entropy_salt)
            marking: Optional[HeapMarking] = None
            if mark:
                marking = HeapMarking(process.mem, process.allocator)
                marking.apply()
            saved_costs = process.costs
            process.set_costs(saved_costs.replay_model())
            process.set_mode(ExtensionMode.DIAGNOSTIC, policy)
            try:
                with self.telemetry.span("reexec"):
                    result = process.run(stop_at=window_end)
            finally:
                process.set_costs(saved_costs)
            manifestations = process.extension.scan_manifestations()
            mark_corruptions = marking.scan() if marking else []
            passed = result.reason in (RunReason.STOP, RunReason.HALT,
                                       RunReason.INPUT_EXHAUSTED)
            it_span.set(passed=passed, reason=result.reason.value)
        self.events.emit(
            process.clock.now_ns, "diagnosis.iteration",
            checkpoint=checkpoint.index, passed=passed,
            reason=result.reason.value,
            overflow_hits=len(manifestations.overflow_hits),
            dangling_write_hits=len(manifestations.dangling_write_hits),
            double_frees=len(manifestations.double_free_events),
            mark_corruptions=len(mark_corruptions))
        return _Outcome(result, passed, manifestations, mark_corruptions,
                        policy)

    # ------------------------------------------------------------------
    # batch plumbing (parallel mode)
    # ------------------------------------------------------------------

    def _dispatch(self, reqs: List[_ProbeReq], window_end: int):
        """A batch over the configured backend; the live-process lazy
        batch when no executor is attached."""
        if self.executor is None:
            return _LiveBatch(self, reqs, window_end)
        return _TaskBatch(self, reqs, window_end)

    def _probe_one(self, checkpoint: Checkpoint,
                   policy: DiagnosticPolicy, window_end: int,
                   mark: bool = False) -> _Outcome:
        """A single probe through the batch protocol (a batch of one),
        so serial and parallel modes share one code path."""
        batch = self._dispatch([_ProbeReq(checkpoint, policy, 1, mark)],
                               window_end)
        try:
            return batch.consume(0)
        finally:
            batch.finish()

    def _encoded_state(self, checkpoint: Checkpoint) -> tuple:
        enc = self._state_cache.get(checkpoint.index)
        if enc is None:
            enc = encode_state(checkpoint.materialize())
            self._state_cache[checkpoint.index] = enc
        return enc

    def _build_probe_task(self, req: _ProbeReq, salt: int,
                          window_end: int) -> ReexecTask:
        checkpoint = req.checkpoint
        enc = self._encoded_state(checkpoint)
        machine = enc[0]
        process = self.process
        # Workers replay from the journal alone; make sure it already
        # holds every token the probe window could consume (each
        # instruction reads at most one token).  The live process later
        # reads the same values back out of the journal, so prefetching
        # changes nothing behaviorally.
        need = ((window_end - checkpoint.instr_count)
                - (process.input.journal_length - machine[4]))
        if need > 0:
            process.input.prefetch(need)
        return ReexecTask(
            kind="probe",
            label=f"probe:cp{checkpoint.index}:salt{salt}",
            state=enc,
            journal=process.input.journal_slice(0),
            output_prefix=process.output.entries()[:machine[5]],
            window_end=window_end,
            costs=process.costs.replay_model(),
            heap_limit=process.mem.limit,
            quarantine_threshold=process.extension
            .quarantine.threshold_bytes,
            patch_memory_limit=process.extension.patch_memory_limit,
            salt=salt,
            policy=req.policy,
            mark=req.mark,
            vm_tier=process.machine.tier)

    # ------------------------------------------------------------------
    # policies for phase 2
    # ------------------------------------------------------------------

    def _group_policy(self, group: Sequence[BugType]) -> DiagnosticPolicy:
        """Exposing changes for the group under test; preventive for
        every other type.  The complement is fixed (Section 4.3's
        isolation property: only the tested types can manifest), which
        also makes the three group probes independent of each other's
        results -- the precondition for dispatching them as one batch."""
        others = [b for b in ALL_BUG_TYPES if b not in group]
        changes = (changes_for(group, exposing=True)
                   + changes_for(others, exposing=False))
        return DiagnosticPolicy(alloc_default=changes,
                                free_default=changes)

    def _interpret_group(self, group: Sequence[BugType],
                         outcome: _Outcome,
                         diag: Diagnosis) -> List[BugType]:
        """Map a group test's observations to identified bug types and
        record the direct evidence (call-sites where available)."""
        found: List[BugType] = []
        man = outcome.manifestations
        if BugType.BUFFER_OVERFLOW in group and man.overflow_hits:
            sites = _dedupe(hit.alloc_site for hit in man.overflow_hits
                            if hit.alloc_site is not None)
            evidence = Evidence(BugType.BUFFER_OVERFLOW, sites)
            evidence.details = [
                f"canary corruption at object 0x{hit.user_addr:x} "
                f"({hit.side}-padding, offsets {hit.offsets[:4]}...)"
                for hit in man.overflow_hits]
            diag.evidence[BugType.BUFFER_OVERFLOW] = evidence
            found.append(BugType.BUFFER_OVERFLOW)
        if BugType.DANGLING_WRITE in group and man.dangling_write_hits:
            sites = _dedupe(hit.free_site
                            for hit in man.dangling_write_hits
                            if hit.free_site is not None)
            evidence = Evidence(BugType.DANGLING_WRITE, sites)
            evidence.details = [
                f"canary corruption in delay-freed object "
                f"0x{hit.user_addr:x}" for hit in man.dangling_write_hits]
            diag.evidence[BugType.DANGLING_WRITE] = evidence
            found.append(BugType.DANGLING_WRITE)
        if BugType.DOUBLE_FREE in group and man.double_free_events:
            sites = _dedupe(
                (ev.first_site or ev.second_site)
                for ev in man.double_free_events
                if (ev.first_site or ev.second_site) is not None)
            evidence = Evidence(BugType.DOUBLE_FREE, sites)
            evidence.details = [
                f"free(0x{ev.user_addr:x}) called twice"
                for ev in man.double_free_events]
            diag.evidence[BugType.DOUBLE_FREE] = evidence
            found.append(BugType.DOUBLE_FREE)
        if not outcome.passed:
            # A failure under this group's exposure, with every other
            # type prevented, manifests the group's read-type bug.
            if BugType.DANGLING_READ in group:
                diag.evidence[BugType.DANGLING_READ] = Evidence(
                    BugType.DANGLING_READ,
                    details=[f"re-execution failed under canary-filled "
                             f"delay-free: {outcome.result!r}"])
                found.append(BugType.DANGLING_READ)
            elif BugType.UNINIT_READ in group:
                diag.evidence[BugType.UNINIT_READ] = Evidence(
                    BugType.UNINIT_READ,
                    details=[f"re-execution failed under canary-filled "
                             f"allocation: {outcome.result!r}"])
                found.append(BugType.UNINIT_READ)
        return found

    # ------------------------------------------------------------------
    # binary search for read-type bug call-sites
    # ------------------------------------------------------------------

    def _universe_for(self, bug_type: BugType, checkpoint: Checkpoint,
                      window_end: int) -> List[CallSite]:
        """All candidate call-sites after the checkpoint: observed by a
        fresh all-preventive run (which always passes)."""
        outcome = self._probe_one(checkpoint, _all_preventive(),
                                  window_end)
        if bug_type is BugType.UNINIT_READ:
            return list(outcome.policy.seen_alloc_sites)
        return list(outcome.policy.seen_free_sites)

    def _search_policy(self, bug_type: BugType,
                       exposed: Iterable[CallSite],
                       all_types: Sequence[BugType]) -> DiagnosticPolicy:
        """Preventive everywhere; exposing override on the exposed
        call-site subset.  Prevention of the complement is what keeps
        other (not yet found) bug sites from interfering."""
        preventive_all = changes_for(ALL_BUG_TYPES, exposing=False)
        expose = [exposing_change(bug_type),
                  *(preventive_change(b) for b in ALL_BUG_TYPES
                    if b is not bug_type)]
        overrides = {site: expose for site in exposed}
        if bug_type is BugType.UNINIT_READ:
            return DiagnosticPolicy(alloc_default=preventive_all,
                                    free_default=preventive_all,
                                    alloc_overrides=overrides)
        return DiagnosticPolicy(alloc_default=preventive_all,
                                free_default=preventive_all,
                                free_overrides=overrides)

    def _binary_search_sites(self, checkpoint: Checkpoint,
                             bug_type: BugType,
                             universe: List[CallSite], window_end: int,
                             all_types: Sequence[BugType],
                             full_universe: Optional[List[CallSite]]
                             = None) -> List[CallSite]:
        identified: List[CallSite] = []
        remaining = list(universe)
        full = (list(full_universe) if full_universe is not None
                else list(universe))
        #: the pruner dropped arms: before accepting "no more bug
        #: sites", one extra probe over the full universe either proves
        #: the drop was justified or -- under an analysis bug -- puts
        #: the dropped arms back.  At most one valve probe per search.
        valve_open = len(remaining) < len(full)
        while self._rollbacks < self.max_rollbacks:
            # Round check: expose everything still unidentified.  This
            # probe gates the next round, so it cannot overlap with it;
            # it runs as a batch of one.
            if remaining:
                outcome = self._probe_one(
                    checkpoint,
                    self._search_policy(bug_type, remaining, all_types),
                    window_end)
                exhausted = outcome.passed
            else:
                exhausted = True
            if exhausted:
                if not valve_open:
                    break  # all bug sites found
                valve_open = False
                rest = [site for site in full
                        if site not in identified]
                if not rest:
                    break
                outcome = self._probe_one(
                    checkpoint,
                    self._search_policy(bug_type, rest, all_types),
                    window_end)
                if outcome.passed:
                    break  # pruned arms confirmed boring
                self._m_pruner_fallback.inc()
                self.events.emit(
                    self.process.clock.now_ns,
                    "diagnosis.pruner_fallback",
                    bug_type=bug_type.value,
                    restored=len(rest) - len(remaining))
                remaining = rest
                continue
            if self.site_search == "binary":
                site = self._bisect_round(checkpoint, bug_type,
                                          remaining, all_types,
                                          window_end)
            else:
                site = self._linear_round(checkpoint, bug_type,
                                          remaining, all_types,
                                          window_end)
            if site is None:
                break
            identified.append(site)
            remaining.remove(site)
            self.events.emit(
                self.process.clock.now_ns, "diagnosis.site_identified",
                bug_type=bug_type.value, site=repr(site))
        return identified

    def _bisect_round(self, checkpoint, bug_type, remaining, all_types,
                      window_end) -> Optional[CallSite]:
        if self.executor is not None and self.executor.workers > 1:
            return self._bisect_round_speculative(
                checkpoint, bug_type, remaining, all_types, window_end)
        candidates = list(remaining)
        while len(candidates) > 1:
            if self._rollbacks >= self.max_rollbacks:
                return None
            half = candidates[:len(candidates) // 2]
            outcome = self._probe_one(
                checkpoint,
                self._search_policy(bug_type, half, all_types),
                window_end)
            candidates = (half if not outcome.passed
                          else candidates[len(half):])
        return candidates[0]

    def _bisect_round_speculative(self, checkpoint, bug_type, remaining,
                                  all_types, window_end) \
            -> Optional[CallSite]:
        """Speculative halving across workers.

        Each bisect probe depends on the previous answer, so the round
        cannot batch linearly; instead it dispatches a slice of the
        *decision tree* (up to ``workers`` nodes, each node probing the
        first half of its candidate range) and then walks the serial
        decision path through the precomputed results.  Tree nodes at
        the same depth share a salt offset -- serial execution would
        give the depth-d probe salt base+d+1 whichever branch it took
        -- so the consumed path reproduces the serial salt sequence
        exactly and the unvisited branches are discarded speculation.

        The fixed schedule's slice is the breadth-first frontier
        (resolving ~log2(fanout) levels per dispatch).  Under the
        bandit policy the slice is instead the UCB1-*predicted*
        root-to-leaf path (resolving up to ``fanout`` levels per
        dispatch when predictions hold); a misprediction just falls
        off the slice and redispatches from the surviving node --
        identical consumed decisions either way, latency-only regret.
        """
        candidates = tuple(remaining)
        fanout = max(2, self.executor.workers)
        bandit = self.search.bandit if self.search.speculates else None
        base_depth = 0
        while len(candidates) > 1:
            nodes: List[Tuple[int, tuple]] = []
            preds: Dict[tuple, bool] = {}
            if bandit is not None:
                node = candidates
                d = 0
                while len(node) > 1 and len(nodes) < fanout:
                    nodes.append((d, node))
                    first = bandit.predict_first_half_fails(
                        bug_type, base_depth + d)
                    preds[node] = first
                    node = (node[:len(node) // 2] if first
                            else node[len(node) // 2:])
                    d += 1
            else:
                queue: List[Tuple[int, tuple]] = [(0, candidates)]
                while queue and len(nodes) < fanout:
                    depth, cand = queue.pop(0)
                    if len(cand) <= 1:
                        continue
                    nodes.append((depth, cand))
                    queue.append((depth + 1, cand[:len(cand) // 2]))
                    queue.append((depth + 1, cand[len(cand) // 2:]))
            reqs = [
                _ProbeReq(checkpoint,
                          self._search_policy(
                              bug_type, list(cand[:len(cand) // 2]),
                              all_types),
                          depth + 1)
                for depth, cand in nodes]
            index = {cand: i for i, (_, cand) in enumerate(nodes)}
            batch = self._dispatch(reqs, window_end)
            consumed_here = 0
            try:
                node = candidates
                while len(node) > 1 and node in index:
                    if self._rollbacks >= self.max_rollbacks:
                        return None
                    outcome = batch.consume(index[node])
                    failed_first = not outcome.passed
                    if bandit is not None:
                        bandit.observe_bisect(
                            bug_type, base_depth + consumed_here,
                            failed_first, preds.get(node))
                    consumed_here += 1
                    half = node[:len(node) // 2]
                    node = (half if failed_first
                            else node[len(node) // 2:])
            finally:
                batch.finish()
            base_depth += consumed_here
            candidates = node
        return candidates[0]

    def _linear_round(self, checkpoint, bug_type, remaining, all_types,
                      window_end) -> Optional[CallSite]:
        """Ablation baseline: probe one call-site at a time.  The
        per-candidate probes are independent, so the whole round
        dispatches as one batch; consumption stops at the first failing
        candidate (the serial decision), discarding the rest."""
        reqs = [_ProbeReq(checkpoint,
                          self._search_policy(bug_type, [candidate],
                                              all_types),
                          i + 1)
                for i, candidate in enumerate(remaining)]
        batch = self._dispatch(reqs, window_end)
        try:
            for i, candidate in enumerate(remaining):
                if self._rollbacks >= self.max_rollbacks:
                    return None
                outcome = batch.consume(i)
                if not outcome.passed:
                    return candidate
            return None
        finally:
            batch.finish()


def _all_preventive() -> DiagnosticPolicy:
    changes = changes_for(ALL_BUG_TYPES, exposing=False)
    return DiagnosticPolicy(alloc_default=changes, free_default=changes)


def _dedupe(sites: Iterable[CallSite]) -> List[CallSite]:
    seen = {}
    for site in sites:
        seen.setdefault(site, None)
    return list(seen)
