"""The two-phase diagnostic engine (paper Section 4).

Phase 1 finds the latest checkpoint from which a patch can take effect:
roll back, re-execute plain (success means the bug was nondeterministic
-- only timing changed), then re-execute with *all* preventive changes
plus heap marking; walk to older checkpoints until the preventive run
passes the failure region with clean marks.

Phase 2 identifies the bug types and the patch application points.  Bug
types are tested group-by-group: the exposing change for the group
under test, preventive changes for everything else, so only the tested
types can manifest (this is the correctness property Section 4.3
contrasts with Rx).  Directly-manifesting types (overflow, dangling
write, double free) yield their call-sites from the evidence itself;
read-type bugs (dangling read, uninitialized read) are located by
binary search over call-sites with preventive changes on the
complement -- O(M log N) re-executions for M bug sites among N.

The "failure region" criterion follows Section 4.1: a re-execution
passes if it survives to ``failure_instr + window_intervals x
checkpoint_interval`` (3 intervals in the paper and here) or finishes
the program cleanly before that.

Diagnosis is rollback-heavy (6-7+ rollbacks per bug, more under binary
search), so it leans directly on the checkpoint manager's incremental
restore: every ``rollback_to`` here rewrites only the pages that differ
between the current heap and the target checkpoint (plus whatever the
re-execution dirtied), not the whole heap.

**Parallel mode.**  Probes are deterministic functions of (checkpoint,
policy, entropy salt), so independent probes can run concurrently.
With an execution backend attached (``executor``), the engine plans
each probe wave up front -- the phase-1b checkpoint walk, the phase-2
group batch, whole linear rounds, and speculative halves of the binary
search tree -- dispatches it as one batch of
:class:`~repro.parallel.tasks.ReexecTask`, then *consumes* results
along the serial decision order.  Consumption replays exactly the
bookkeeping the serial engine would have done (salt ledger, rollback
counters, events, spans), so serial and parallel modes produce
byte-identical diagnoses; only simulated timestamps differ, because
batch work is charged max-over-workers (DESIGN.md §8).  Without an
executor the engine runs the original live-process rollback loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.checkpoint.manager import CheckpointManager
from repro.checkpoint.snapshot import Checkpoint
from repro.core.bugtypes import ALL_BUG_TYPES, CHANGE_GROUPS, BugType
from repro.core.changes import (
    DiagnosticPolicy,
    changes_for,
    exposing_change,
    preventive_change,
)
from repro.core.heap_marking import HeapMarking, MarkCorruption
from repro.core.patches import PatchPool, RuntimePatch
from repro.heap.extension import ExtensionMode, Manifestations
from repro.monitors.base import FailureEvent
from repro.obs.telemetry import Telemetry
from repro.parallel.tasks import ReexecTask, encode_state
from repro.process import Process
from repro.util.callsite import CallSite
from repro.util.events import EventLog
from repro.vm.machine import RunReason, RunResult


class Verdict(Enum):
    PATCHED = "patched"
    NONDETERMINISTIC = "nondeterministic"
    NON_PATCHABLE = "non-patchable"


@dataclass
class Evidence:
    """What phase 2 learned about one bug type."""

    bug_type: BugType
    sites: List[CallSite] = field(default_factory=list)
    details: List[str] = field(default_factory=list)


@dataclass
class Diagnosis:
    """The diagnostic engine's result."""

    verdict: Verdict
    bug_types: List[BugType] = field(default_factory=list)
    evidence: Dict[BugType, Evidence] = field(default_factory=dict)
    patches: List[RuntimePatch] = field(default_factory=list)
    checkpoint: Optional[Checkpoint] = None
    rollbacks: int = 0
    notes: List[str] = field(default_factory=list)
    failure: Optional[FailureEvent] = None


@dataclass
class _Outcome:
    """One diagnostic re-execution's observations."""

    result: RunResult
    passed: bool
    manifestations: Manifestations
    mark_corruptions: List[MarkCorruption]
    policy: DiagnosticPolicy


@dataclass
class _ProbeReq:
    """One planned probe in a batch: checkpoint + policy + its 1-based
    serial position (which pre-assigns the entropy salt the probe would
    receive in serial decision order)."""

    checkpoint: Checkpoint
    policy: DiagnosticPolicy
    salt_offset: int
    mark: bool = False


class _LiveBatch:
    """No executor: probes run lazily on the live process, one per
    consume, exactly as the original serial engine did."""

    def __init__(self, engine: "DiagnosticEngine",
                 reqs: List[_ProbeReq], window_end: int):
        self._engine = engine
        self._reqs = reqs
        self._window_end = window_end

    def consume(self, index: int) -> "_Outcome":
        req = self._reqs[index]
        return self._engine._reexecute(req.checkpoint, req.policy,
                                       self._window_end, mark=req.mark)

    def finish(self) -> None:
        pass


class _TaskBatch:
    """A speculative probe batch on an execution backend.

    All tasks dispatch up front; the engine then consumes results along
    the serial decision order.  Each consume advances the salt ledger
    and rollback counters exactly as the live probe would have, and
    charges the main clock *incrementally* under the max-over-workers
    rule: consumed tasks are assigned round-robin to worker lanes, the
    batch's cumulative cost is the busiest lane, and consuming task i
    charges only the delta by which the busiest lane grew.  Rollback
    cost is modeled as a flat ``restore_base_ns`` per task (a worker
    clones from the already-materialized snapshot -- fork/COW -- rather
    than patching pages back into the live heap).  Discarded
    speculation charges nothing (it ran on spare cores off the critical
    path) but is counted in ``parallel.tasks_discarded``.
    """

    def __init__(self, engine: "DiagnosticEngine",
                 reqs: List[_ProbeReq], window_end: int):
        self._engine = engine
        self._reqs = reqs
        base = engine._entropy_salt
        self._tasks = [
            engine._build_probe_task(req, base + req.salt_offset,
                                     window_end)
            for req in reqs]
        if engine.chaos is not None and self._tasks:
            # Chaos markers ride on the first task of the batch -- the
            # first one the serial decision order consumes -- so an
            # armed probe fault is guaranteed to be observed.  The
            # raise fires identically in a worker or in-process; the
            # hang only bites real workers (the in-process rescue path
            # ignores it, which *is* the rescue).
            if engine.chaos.take("probe_raise"):
                self._tasks[0].raise_marker = True
            if engine.chaos.take("probe_hang"):
                self._tasks[0].hang_marker = True
        self._handle = engine.executor.submit(self._tasks)
        workers = max(1, engine.executor.workers)
        self._lanes_rb = [0] * workers
        self._lanes_rx = [0] * workers
        self._charged_rb = 0
        self._charged_rx = 0
        self._consumed = 0

    def consume(self, index: int) -> "_Outcome":
        engine = self._engine
        out = self._handle.result(index)
        task = self._tasks[index]
        checkpoint = self._reqs[index].checkpoint
        engine._entropy_salt = task.salt
        engine._rollbacks += 1
        engine._m_iterations.inc()
        engine._m_rollbacks.inc()
        lane = self._consumed % len(self._lanes_rb)
        self._consumed += 1
        self._lanes_rb[lane] += engine.process.costs.restore_base_ns
        self._lanes_rx[lane] += out.time_ns
        delta_rb = max(self._lanes_rb) - self._charged_rb
        delta_rx = max(self._lanes_rx) - self._charged_rx
        self._charged_rb += delta_rb
        self._charged_rx += delta_rx
        clock = engine.process.clock
        with engine.telemetry.span("diagnosis.iteration",
                                   checkpoint=checkpoint.index,
                                   backend=engine.executor.name,
                                   lane=lane) as it_span:
            with engine.telemetry.span("rollback",
                                       to_index=checkpoint.index):
                clock.charge(delta_rb)
            with engine.telemetry.span("reexec"):
                clock.charge(delta_rx)
            it_span.set(passed=out.passed,
                        reason=out.result.reason.value,
                        task_time_ns=out.time_ns)
        engine.events.emit(
            clock.now_ns, "diagnosis.iteration",
            checkpoint=checkpoint.index, passed=out.passed,
            reason=out.result.reason.value,
            overflow_hits=len(out.manifestations.overflow_hits),
            dangling_write_hits=len(
                out.manifestations.dangling_write_hits),
            double_frees=len(out.manifestations.double_free_events),
            mark_corruptions=len(out.mark_corruptions))
        return _Outcome(out.result, out.passed, out.manifestations,
                        out.mark_corruptions, out.policy)

    def finish(self) -> None:
        self._engine.executor.note_discarded(
            self._handle.executed - self._consumed)


class DiagnosticEngine:
    """Runs diagnosis for one failure of one process."""

    def __init__(self, process: Process, manager: CheckpointManager,
                 pool: PatchPool, events: Optional[EventLog] = None,
                 max_checkpoint_search: int = 8,
                 window_intervals: int = 3,
                 max_rollbacks: int = 200,
                 use_heap_marking: bool = True,
                 site_search: str = "binary",
                 telemetry: Optional[Telemetry] = None,
                 executor=None,
                 chaos=None):
        if site_search not in ("binary", "linear"):
            raise ValueError(f"site_search must be 'binary' or "
                             f"'linear', not {site_search!r}")
        self.process = process
        self.manager = manager
        self.pool = pool
        self.events = events if events is not None else EventLog()
        self.telemetry = telemetry or Telemetry.disabled()
        self._m_iterations = \
            self.telemetry.metrics.counter("diagnosis.iterations")
        self._m_rollbacks = \
            self.telemetry.metrics.counter("diagnosis.rollbacks")
        self.max_checkpoint_search = max_checkpoint_search
        self.window_intervals = window_intervals
        self.max_rollbacks = max_rollbacks
        #: ablation knobs: disabling heap marking reproduces the
        #: Figure 3 checkpoint misidentification; 'linear' site search
        #: costs O(M*N) rollbacks instead of O(M log N).
        self.use_heap_marking = use_heap_marking
        self.site_search = site_search
        #: execution backend for probe batches (see module docstring);
        #: None keeps the original live-process serial loop.
        self.executor = executor
        #: Optional :class:`~repro.chaos.ChaosPlan`; consulted once per
        #: probe, never per instruction.
        self.chaos = chaos
        self._rollbacks = 0
        self._entropy_salt = 1000
        #: encoded snapshots per checkpoint index -- probes from the
        #: same checkpoint reuse the materialization.
        self._state_cache: Dict[int, tuple] = {}

    # ------------------------------------------------------------------
    # public entry
    # ------------------------------------------------------------------

    def diagnose(self, failure: FailureEvent) -> Diagnosis:
        with self.telemetry.span("diagnosis") as span:
            diag = self._diagnose(failure)
            span.set(verdict=diag.verdict.value, rollbacks=diag.rollbacks)
            return diag

    def _diagnose(self, failure: FailureEvent) -> Diagnosis:
        window_end = (failure.instr_count
                      + self.window_intervals * self.manager.interval)
        self._rollbacks = 0
        diag = Diagnosis(verdict=Verdict.NON_PATCHABLE, failure=failure)
        self.events.emit(self.process.clock.now_ns, "diagnosis.start",
                         failure=failure.describe())

        candidates = self.manager.recent(self.max_checkpoint_search)
        if not candidates:
            diag.notes.append("no checkpoints available")
            return diag

        # Phase 1a: plain re-execution from the latest checkpoint.
        outcome = self._reexecute(candidates[0], DiagnosticPolicy(),
                                  window_end)
        if outcome.passed:
            diag.verdict = Verdict.NONDETERMINISTIC
            diag.rollbacks = self._rollbacks
            diag.notes.append(
                "plain re-execution passed the failure region; "
                "failure attributed to a nondeterministic bug")
            self._log_done(diag)
            return diag

        # Phase 1b: all-preventive probes, newest checkpoint first,
        # with heap marking to expose pre-checkpoint bug triggers.
        # Probes from different checkpoints are independent, so the
        # whole walk dispatches as one (speculative) batch; the serial
        # early-break simply leaves the rest of the batch unconsumed.
        chosen: Optional[Checkpoint] = None
        batch = self._dispatch(
            [_ProbeReq(cp, _all_preventive(), i + 1,
                       mark=self.use_heap_marking)
             for i, cp in enumerate(candidates)],
            window_end)
        try:
            for i, checkpoint in enumerate(candidates):
                if self._rollbacks >= self.max_rollbacks:
                    break
                outcome = batch.consume(i)
                if outcome.passed and not outcome.mark_corruptions:
                    chosen = checkpoint
                    break
                if outcome.mark_corruptions:
                    diag.notes.append(
                        f"checkpoint #{checkpoint.index}: heap marking "
                        f"exposed {len(outcome.mark_corruptions)} "
                        f"pre-checkpoint corruption(s); trying earlier")
        finally:
            batch.finish()
        if chosen is None:
            diag.rollbacks = self._rollbacks
            diag.notes.append(
                "no checkpoint found from which preventive changes "
                "survive the failure; bug is non-patchable")
            self._log_done(diag)
            return diag
        diag.checkpoint = chosen
        self.events.emit(self.process.clock.now_ns,
                         "diagnosis.checkpoint_identified",
                         index=chosen.index, instr=chosen.instr_count)

        # Phase 2: identify bug types group by group.  Each probe uses
        # exposing changes for its group and preventive changes for the
        # fixed complement, so the probes are mutually independent and
        # dispatch as one batch.
        identified: List[BugType] = []
        batch = self._dispatch(
            [_ProbeReq(chosen, self._group_policy(group), i + 1)
             for i, group in enumerate(CHANGE_GROUPS)],
            window_end)
        try:
            for i, group in enumerate(CHANGE_GROUPS):
                if self._rollbacks >= self.max_rollbacks:
                    break
                outcome = batch.consume(i)
                identified.extend(
                    self._interpret_group(group, outcome, diag))
        finally:
            batch.finish()

        if not identified:
            diag.rollbacks = self._rollbacks
            diag.notes.append(
                "preventive changes survive but no bug type "
                "manifested under exposure; non-patchable")
            self._log_done(diag)
            return diag
        diag.bug_types = identified

        # Phase 2b: call-sites for read-type bugs via binary search.
        for bug_type in identified:
            evidence = diag.evidence[bug_type]
            if bug_type.identified_directly:
                continue
            universe = self._universe_for(bug_type, chosen, window_end)
            sites = self._binary_search_sites(
                chosen, bug_type, universe, window_end, identified)
            evidence.sites = sites
            evidence.details.append(
                f"binary search over {len(universe)} call-sites")

        # Patch generation.
        now = self.process.clock.now_ns
        for bug_type in identified:
            for site in diag.evidence[bug_type].sites:
                patch = self.pool.new_patch(bug_type, site, now)
                if patch not in diag.patches:
                    diag.patches.append(patch)
        diag.verdict = (Verdict.PATCHED if diag.patches
                        else Verdict.NON_PATCHABLE)
        if not diag.patches:
            diag.notes.append("bug types identified but no call-sites "
                              "could be isolated")
        diag.rollbacks = self._rollbacks
        self._log_done(diag)
        return diag

    def _log_done(self, diag: Diagnosis) -> None:
        self.events.emit(
            self.process.clock.now_ns, "diagnosis.done",
            verdict=diag.verdict.value,
            bug_types=[b.value for b in diag.bug_types],
            patches=len(diag.patches), rollbacks=diag.rollbacks)

    # ------------------------------------------------------------------
    # re-execution plumbing
    # ------------------------------------------------------------------

    def _reexecute(self, checkpoint: Checkpoint, policy: DiagnosticPolicy,
                   window_end: int, mark: bool = False) -> _Outcome:
        process = self.process
        if self.chaos is not None:
            from repro.chaos.faults import ChaosError
            if self.chaos.take("probe_raise"):
                self.events.emit(process.clock.now_ns,
                                 "chaos.probe_raise",
                                 checkpoint=checkpoint.index)
                raise ChaosError("injected probe crash during "
                                 "diagnostic re-execution")
            if self.chaos.take("probe_hang"):
                # An in-process hung probe: the engine's deadline fires
                # after probe_timeout_ns of simulated time, then the
                # probe is rescued by re-running it inline.
                process.clock.charge(self.chaos.probe_timeout_ns)
                self.events.emit(process.clock.now_ns,
                                 "chaos.probe_hang_rescued",
                                 checkpoint=checkpoint.index,
                                 deadline_ns=self.chaos.probe_timeout_ns)
        with self.telemetry.span("diagnosis.iteration",
                                 checkpoint=checkpoint.index) as it_span:
            with self.telemetry.span("rollback",
                                     to_index=checkpoint.index):
                self.manager.rollback_to(checkpoint)
            self._rollbacks += 1
            self._m_iterations.inc()
            self._m_rollbacks.inc()
            self._entropy_salt += 1
            process.reseed_entropy(self._entropy_salt)
            marking: Optional[HeapMarking] = None
            if mark:
                marking = HeapMarking(process.mem, process.allocator)
                marking.apply()
            saved_costs = process.costs
            process.set_costs(saved_costs.replay_model())
            process.set_mode(ExtensionMode.DIAGNOSTIC, policy)
            try:
                with self.telemetry.span("reexec"):
                    result = process.run(stop_at=window_end)
            finally:
                process.set_costs(saved_costs)
            manifestations = process.extension.scan_manifestations()
            mark_corruptions = marking.scan() if marking else []
            passed = result.reason in (RunReason.STOP, RunReason.HALT,
                                       RunReason.INPUT_EXHAUSTED)
            it_span.set(passed=passed, reason=result.reason.value)
        self.events.emit(
            process.clock.now_ns, "diagnosis.iteration",
            checkpoint=checkpoint.index, passed=passed,
            reason=result.reason.value,
            overflow_hits=len(manifestations.overflow_hits),
            dangling_write_hits=len(manifestations.dangling_write_hits),
            double_frees=len(manifestations.double_free_events),
            mark_corruptions=len(mark_corruptions))
        return _Outcome(result, passed, manifestations, mark_corruptions,
                        policy)

    # ------------------------------------------------------------------
    # batch plumbing (parallel mode)
    # ------------------------------------------------------------------

    def _dispatch(self, reqs: List[_ProbeReq], window_end: int):
        """A batch over the configured backend; the live-process lazy
        batch when no executor is attached."""
        if self.executor is None:
            return _LiveBatch(self, reqs, window_end)
        return _TaskBatch(self, reqs, window_end)

    def _probe_one(self, checkpoint: Checkpoint,
                   policy: DiagnosticPolicy, window_end: int,
                   mark: bool = False) -> _Outcome:
        """A single probe through the batch protocol (a batch of one),
        so serial and parallel modes share one code path."""
        batch = self._dispatch([_ProbeReq(checkpoint, policy, 1, mark)],
                               window_end)
        try:
            return batch.consume(0)
        finally:
            batch.finish()

    def _encoded_state(self, checkpoint: Checkpoint) -> tuple:
        enc = self._state_cache.get(checkpoint.index)
        if enc is None:
            enc = encode_state(checkpoint.materialize())
            self._state_cache[checkpoint.index] = enc
        return enc

    def _build_probe_task(self, req: _ProbeReq, salt: int,
                          window_end: int) -> ReexecTask:
        checkpoint = req.checkpoint
        enc = self._encoded_state(checkpoint)
        machine = enc[0]
        process = self.process
        # Workers replay from the journal alone; make sure it already
        # holds every token the probe window could consume (each
        # instruction reads at most one token).  The live process later
        # reads the same values back out of the journal, so prefetching
        # changes nothing behaviorally.
        need = ((window_end - checkpoint.instr_count)
                - (process.input.journal_length - machine[4]))
        if need > 0:
            process.input.prefetch(need)
        return ReexecTask(
            kind="probe",
            label=f"probe:cp{checkpoint.index}:salt{salt}",
            state=enc,
            journal=process.input.journal_slice(0),
            output_prefix=process.output.entries()[:machine[5]],
            window_end=window_end,
            costs=process.costs.replay_model(),
            heap_limit=process.mem.limit,
            quarantine_threshold=process.extension
            .quarantine.threshold_bytes,
            patch_memory_limit=process.extension.patch_memory_limit,
            salt=salt,
            policy=req.policy,
            mark=req.mark,
            vm_tier=process.machine.tier)

    # ------------------------------------------------------------------
    # policies for phase 2
    # ------------------------------------------------------------------

    def _group_policy(self, group: Sequence[BugType]) -> DiagnosticPolicy:
        """Exposing changes for the group under test; preventive for
        every other type.  The complement is fixed (Section 4.3's
        isolation property: only the tested types can manifest), which
        also makes the three group probes independent of each other's
        results -- the precondition for dispatching them as one batch."""
        others = [b for b in ALL_BUG_TYPES if b not in group]
        changes = (changes_for(group, exposing=True)
                   + changes_for(others, exposing=False))
        return DiagnosticPolicy(alloc_default=changes,
                                free_default=changes)

    def _interpret_group(self, group: Sequence[BugType],
                         outcome: _Outcome,
                         diag: Diagnosis) -> List[BugType]:
        """Map a group test's observations to identified bug types and
        record the direct evidence (call-sites where available)."""
        found: List[BugType] = []
        man = outcome.manifestations
        if BugType.BUFFER_OVERFLOW in group and man.overflow_hits:
            sites = _dedupe(hit.alloc_site for hit in man.overflow_hits
                            if hit.alloc_site is not None)
            evidence = Evidence(BugType.BUFFER_OVERFLOW, sites)
            evidence.details = [
                f"canary corruption at object 0x{hit.user_addr:x} "
                f"({hit.side}-padding, offsets {hit.offsets[:4]}...)"
                for hit in man.overflow_hits]
            diag.evidence[BugType.BUFFER_OVERFLOW] = evidence
            found.append(BugType.BUFFER_OVERFLOW)
        if BugType.DANGLING_WRITE in group and man.dangling_write_hits:
            sites = _dedupe(hit.free_site
                            for hit in man.dangling_write_hits
                            if hit.free_site is not None)
            evidence = Evidence(BugType.DANGLING_WRITE, sites)
            evidence.details = [
                f"canary corruption in delay-freed object "
                f"0x{hit.user_addr:x}" for hit in man.dangling_write_hits]
            diag.evidence[BugType.DANGLING_WRITE] = evidence
            found.append(BugType.DANGLING_WRITE)
        if BugType.DOUBLE_FREE in group and man.double_free_events:
            sites = _dedupe(
                (ev.first_site or ev.second_site)
                for ev in man.double_free_events
                if (ev.first_site or ev.second_site) is not None)
            evidence = Evidence(BugType.DOUBLE_FREE, sites)
            evidence.details = [
                f"free(0x{ev.user_addr:x}) called twice"
                for ev in man.double_free_events]
            diag.evidence[BugType.DOUBLE_FREE] = evidence
            found.append(BugType.DOUBLE_FREE)
        if not outcome.passed:
            # A failure under this group's exposure, with every other
            # type prevented, manifests the group's read-type bug.
            if BugType.DANGLING_READ in group:
                diag.evidence[BugType.DANGLING_READ] = Evidence(
                    BugType.DANGLING_READ,
                    details=[f"re-execution failed under canary-filled "
                             f"delay-free: {outcome.result!r}"])
                found.append(BugType.DANGLING_READ)
            elif BugType.UNINIT_READ in group:
                diag.evidence[BugType.UNINIT_READ] = Evidence(
                    BugType.UNINIT_READ,
                    details=[f"re-execution failed under canary-filled "
                             f"allocation: {outcome.result!r}"])
                found.append(BugType.UNINIT_READ)
        return found

    # ------------------------------------------------------------------
    # binary search for read-type bug call-sites
    # ------------------------------------------------------------------

    def _universe_for(self, bug_type: BugType, checkpoint: Checkpoint,
                      window_end: int) -> List[CallSite]:
        """All candidate call-sites after the checkpoint: observed by a
        fresh all-preventive run (which always passes)."""
        outcome = self._probe_one(checkpoint, _all_preventive(),
                                  window_end)
        if bug_type is BugType.UNINIT_READ:
            return list(outcome.policy.seen_alloc_sites)
        return list(outcome.policy.seen_free_sites)

    def _search_policy(self, bug_type: BugType,
                       exposed: Iterable[CallSite],
                       all_types: Sequence[BugType]) -> DiagnosticPolicy:
        """Preventive everywhere; exposing override on the exposed
        call-site subset.  Prevention of the complement is what keeps
        other (not yet found) bug sites from interfering."""
        preventive_all = changes_for(ALL_BUG_TYPES, exposing=False)
        expose = [exposing_change(bug_type),
                  *(preventive_change(b) for b in ALL_BUG_TYPES
                    if b is not bug_type)]
        overrides = {site: expose for site in exposed}
        if bug_type is BugType.UNINIT_READ:
            return DiagnosticPolicy(alloc_default=preventive_all,
                                    free_default=preventive_all,
                                    alloc_overrides=overrides)
        return DiagnosticPolicy(alloc_default=preventive_all,
                                free_default=preventive_all,
                                free_overrides=overrides)

    def _binary_search_sites(self, checkpoint: Checkpoint,
                             bug_type: BugType,
                             universe: List[CallSite], window_end: int,
                             all_types: Sequence[BugType]) \
            -> List[CallSite]:
        identified: List[CallSite] = []
        remaining = list(universe)
        while remaining and self._rollbacks < self.max_rollbacks:
            # Round check: expose everything still unidentified.  This
            # probe gates the next round, so it cannot overlap with it;
            # it runs as a batch of one.
            outcome = self._probe_one(
                checkpoint,
                self._search_policy(bug_type, remaining, all_types),
                window_end)
            if outcome.passed:
                break  # all bug sites found
            if self.site_search == "binary":
                site = self._bisect_round(checkpoint, bug_type,
                                          remaining, all_types,
                                          window_end)
            else:
                site = self._linear_round(checkpoint, bug_type,
                                          remaining, all_types,
                                          window_end)
            if site is None:
                break
            identified.append(site)
            remaining.remove(site)
            self.events.emit(
                self.process.clock.now_ns, "diagnosis.site_identified",
                bug_type=bug_type.value, site=repr(site))
        return identified

    def _bisect_round(self, checkpoint, bug_type, remaining, all_types,
                      window_end) -> Optional[CallSite]:
        if self.executor is not None and self.executor.workers > 1:
            return self._bisect_round_speculative(
                checkpoint, bug_type, remaining, all_types, window_end)
        candidates = list(remaining)
        while len(candidates) > 1:
            if self._rollbacks >= self.max_rollbacks:
                return None
            half = candidates[:len(candidates) // 2]
            outcome = self._probe_one(
                checkpoint,
                self._search_policy(bug_type, half, all_types),
                window_end)
            candidates = (half if not outcome.passed
                          else candidates[len(half):])
        return candidates[0]

    def _bisect_round_speculative(self, checkpoint, bug_type, remaining,
                                  all_types, window_end) \
            -> Optional[CallSite]:
        """Speculative halving across workers.

        Each bisect probe depends on the previous answer, so the round
        cannot batch linearly; instead it dispatches a breadth-first
        slice of the *decision tree* (up to ``workers`` nodes, each
        node probing the first half of its candidate range) and then
        walks the serial decision path through the precomputed results.
        Tree nodes at the same depth share a salt offset -- serial
        execution would give the depth-d probe salt base+d+1 whichever
        branch it took -- so the consumed path reproduces the serial
        salt sequence exactly and the unvisited branches are discarded
        speculation.
        """
        candidates = tuple(remaining)
        fanout = max(2, self.executor.workers)
        while len(candidates) > 1:
            nodes: List[Tuple[int, tuple]] = []
            queue: List[Tuple[int, tuple]] = [(0, candidates)]
            while queue and len(nodes) < fanout:
                depth, cand = queue.pop(0)
                if len(cand) <= 1:
                    continue
                nodes.append((depth, cand))
                queue.append((depth + 1, cand[:len(cand) // 2]))
                queue.append((depth + 1, cand[len(cand) // 2:]))
            reqs = [
                _ProbeReq(checkpoint,
                          self._search_policy(
                              bug_type, list(cand[:len(cand) // 2]),
                              all_types),
                          depth + 1)
                for depth, cand in nodes]
            index = {cand: i for i, (_, cand) in enumerate(nodes)}
            batch = self._dispatch(reqs, window_end)
            try:
                node = candidates
                while len(node) > 1 and node in index:
                    if self._rollbacks >= self.max_rollbacks:
                        return None
                    outcome = batch.consume(index[node])
                    half = node[:len(node) // 2]
                    node = (half if not outcome.passed
                            else node[len(node) // 2:])
            finally:
                batch.finish()
            candidates = node
        return candidates[0]

    def _linear_round(self, checkpoint, bug_type, remaining, all_types,
                      window_end) -> Optional[CallSite]:
        """Ablation baseline: probe one call-site at a time.  The
        per-candidate probes are independent, so the whole round
        dispatches as one batch; consumption stops at the first failing
        candidate (the serial decision), discarding the rest."""
        reqs = [_ProbeReq(checkpoint,
                          self._search_policy(bug_type, [candidate],
                                              all_types),
                          i + 1)
                for i, candidate in enumerate(remaining)]
        batch = self._dispatch(reqs, window_end)
        try:
            for i, candidate in enumerate(remaining):
                if self._rollbacks >= self.max_rollbacks:
                    return None
                outcome = batch.consume(i)
                if not outcome.passed:
                    return candidate
            return None
        finally:
            batch.finish()


def _all_preventive() -> DiagnosticPolicy:
    changes = changes_for(ALL_BUG_TYPES, exposing=False)
    return DiagnosticPolicy(alloc_default=changes, free_default=changes)


def _dedupe(sites: Iterable[CallSite]) -> List[CallSite]:
    seen = {}
    for site in sites:
        seen.setdefault(site, None)
    return list(seen)
