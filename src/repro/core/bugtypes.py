"""Memory bug taxonomy (paper Table 1).

The five bug types First-Aid handles, with the metadata the diagnosis
algorithm needs: where the corresponding patch applies (allocation or
deallocation call-site) and how the bug manifests under its exposing
change.

Diagnosis groups the types by *shared environmental change*: dangling
reads/writes and double frees all use "delay free (+ canary fill)", so
one re-execution exposes all three at once and the manifestation kind
distinguishes them.  Buffer overflow (padding) and uninitialized read
(fill) each get their own group.
"""

from __future__ import annotations

from enum import Enum
from typing import List, Tuple


class BugType(Enum):
    BUFFER_OVERFLOW = "buffer-overflow"
    DANGLING_READ = "dangling-pointer-read"
    DANGLING_WRITE = "dangling-pointer-write"
    DOUBLE_FREE = "double-free"
    UNINIT_READ = "uninitialized-read"

    @property
    def patch_point(self) -> str:
        """Where the runtime patch applies: at the allocation or the
        deallocation call-site of bug-triggering objects (Table 1)."""
        if self in (BugType.BUFFER_OVERFLOW, BugType.UNINIT_READ):
            return "alloc"
        return "free"

    @property
    def manifestation(self) -> str:
        """How the exposing change makes this bug visible."""
        return _MANIFESTATION[self]

    @property
    def identified_directly(self) -> bool:
        """True when the bug-triggering objects can be read straight
        out of the manifestation evidence (canary corruption, free
        parameters); False when binary search over call-sites is needed
        (the read-type bugs, Section 4.2)."""
        return self in (BugType.BUFFER_OVERFLOW, BugType.DANGLING_WRITE,
                        BugType.DOUBLE_FREE)

    @property
    def patch_description(self) -> str:
        return _PATCH_DESCRIPTION[self]


_MANIFESTATION = {
    BugType.BUFFER_OVERFLOW: "canary corruption in padding",
    BugType.DANGLING_READ: "failure (read of canary-filled freed object)",
    BugType.DANGLING_WRITE: "canary corruption in delay-freed object",
    BugType.DOUBLE_FREE: "freed twice (deallocation parameter check)",
    BugType.UNINIT_READ: "failure (read of canary-filled new object)",
}

_PATCH_DESCRIPTION = {
    BugType.BUFFER_OVERFLOW: "add padding",
    BugType.DANGLING_READ: "delay free",
    BugType.DANGLING_WRITE: "delay free",
    BugType.DOUBLE_FREE: "delay free",
    BugType.UNINIT_READ: "fill with zero",
}

#: Diagnosis test groups: bug types sharing one exposing change.  Each
#: phase-2 iteration exposes one group while preventing the others.
CHANGE_GROUPS: List[Tuple[BugType, ...]] = [
    (BugType.BUFFER_OVERFLOW,),
    (BugType.DANGLING_READ, BugType.DANGLING_WRITE, BugType.DOUBLE_FREE),
    (BugType.UNINIT_READ,),
]

ALL_BUG_TYPES = tuple(BugType)
