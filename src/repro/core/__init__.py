"""First-Aid core: the paper's primary contribution.

* :mod:`repro.core.bugtypes` -- the bug taxonomy (Table 1);
* :mod:`repro.core.changes` -- preventive/exposing environmental
  changes and the policies that apply them whole-heap or per-call-site;
* :mod:`repro.core.patches` -- runtime patches and the persistent,
  per-program patch pool;
* :mod:`repro.core.heap_marking` -- the heap-marking technique that
  exposes pre-checkpoint bug manifestations (Section 4.1, Figure 3);
* :mod:`repro.core.diagnosis` -- the two-phase diagnostic engine;
* :mod:`repro.core.validation` -- patch validation under randomized
  allocation (Section 5);
* :mod:`repro.core.report` -- on-site bug reports (Figure 5);
* :mod:`repro.core.runtime` -- :class:`FirstAidRuntime`, the public
  entry point that ties checkpointing, monitoring, diagnosis, patching,
  and validation together.
"""

from repro.core.bugtypes import BugType
from repro.core.changes import (
    AllocChange,
    DiagnosticPolicy,
    FreeChange,
    exposing_change,
    preventive_change,
)
from repro.core.patches import PatchPolicy, PatchPool, RuntimePatch
from repro.core.diagnosis import Diagnosis, DiagnosticEngine, Verdict
from repro.core.validation import ValidationEngine, ValidationResult
from repro.core.report import BugReport
from repro.core.runtime import FirstAidConfig, FirstAidRuntime

__all__ = [
    "BugType",
    "AllocChange",
    "FreeChange",
    "DiagnosticPolicy",
    "preventive_change",
    "exposing_change",
    "RuntimePatch",
    "PatchPool",
    "PatchPolicy",
    "Diagnosis",
    "DiagnosticEngine",
    "Verdict",
    "ValidationEngine",
    "ValidationResult",
    "BugReport",
    "FirstAidConfig",
    "FirstAidRuntime",
]
