"""Exception hierarchy for the First-Aid reproduction.

Two distinct families live here and must never be confused:

* :class:`SimulatedFault` and its subclasses model failures *inside* the
  simulated program (segmentation faults, assertion failures, heap
  corruption).  They are the events the error monitors catch and the
  diagnostic engine reasons about.  They carry the machine state at the
  instant of the fault.

* :class:`ReproError` and its subclasses are host-level errors: misuse of
  the library API, compiler errors in MiniC sources, malformed patches.
  They indicate a bug in the caller (or in this library), not in the
  simulated application.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for host-level errors raised by this library."""


class CompileError(ReproError):
    """Raised by the MiniC compiler on a malformed source program."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"line {line}:{column}: {message}"
        super().__init__(message)


class ProgramError(ReproError):
    """Raised when a VM program is structurally invalid (bad label,
    unknown function, operand count mismatch)."""


class AllocatorError(ReproError):
    """Raised on misuse of the allocator API by host code (not by the
    simulated program -- simulated heap corruption is a fault)."""


class CheckpointError(ReproError):
    """Raised when checkpoint/rollback is used inconsistently, e.g.
    restoring a snapshot from a different machine."""


class PatchError(ReproError):
    """Raised on malformed runtime patches or patch-pool misuse."""


class StoreError(PatchError):
    """Raised on shared-patch-store failures that the caller may want
    to handle (the runtime treats them as non-fatal: a store problem
    must never take down recovery)."""


class StoreLockTimeout(StoreError):
    """Raised when the store's file lock cannot be acquired within the
    configured timeout, after retry-with-backoff and stale-lock
    breaking."""


class DiagnosisTimeout(ReproError):
    """Raised internally when the diagnostic engine exhausts its rollback
    budget without isolating a patchable bug.  The runtime converts this
    into a 'non-patchable' verdict rather than letting it escape."""


class SimulatedFault(Exception):
    """Base class for failures raised by the *simulated* program.

    Attributes
    ----------
    address:
        Faulting memory address, if the fault involved a memory access.
    instr_id:
        ``(function_name, pc)`` of the instruction that faulted, when the
        machine attaches it.
    """

    kind = "fault"

    def __init__(self, message: str = "", address: int = None,
                 instr_id=None):
        super().__init__(message)
        self.address = address
        self.instr_id = instr_id

    def describe(self) -> str:
        parts = [self.kind]
        if self.address is not None:
            parts.append(f"addr=0x{self.address:x}")
        if self.instr_id is not None:
            parts.append(f"at={self.instr_id[0]}+{self.instr_id[1]}")
        msg = str(self)
        if msg:
            parts.append(msg)
        return " ".join(parts)


class SegmentationFault(SimulatedFault):
    """Access to an unmapped address in the simulated address space."""

    kind = "SIGSEGV"


class AssertionFailure(SimulatedFault):
    """A simulated ``assert`` evaluated to false."""

    kind = "assert"


class HeapCorruptionFault(SimulatedFault):
    """The allocator detected corrupted chunk metadata (the analogue of
    glibc aborting with 'corrupted double-linked list')."""

    kind = "heap-corruption"


class DivisionByZeroFault(SimulatedFault):
    """Integer division or modulo by zero in the simulated program."""

    kind = "div-by-zero"


class SampledGuardFault(SimulatedFault):
    """A sampled guarded allocation caught a memory bug pre-crash
    (GWP-ASan-style): a redzone canary or delayed-free canary around a
    guarded object was corrupted, or a guarded object was freed twice.

    Unlike the other fault families, the bug type and call-site are
    already known at raise time -- ``detection`` carries a
    :class:`repro.sampling.SampledDetection` with the full attribution,
    which the diagnostic engine can consume directly (fast path)
    instead of re-deriving it via re-execution.
    """

    kind = "sampled-guard"

    def __init__(self, message: str = "", address: int = None,
                 instr_id=None, detection=None):
        super().__init__(message, address=address, instr_id=instr_id)
        self.detection = detection


class OutOfMemoryFault(SimulatedFault):
    """The simulated heap cannot satisfy an allocation request."""

    kind = "oom"
