"""Baseline recovery systems the paper compares against (Section 7.3).

* :class:`~repro.baselines.rx.RxRuntime` -- Rx (SOSP'05): rollback +
  whole-heap environmental changes, *disabled* after the failure is
  survived, so the same bug strikes again on the next trigger.
* :class:`~repro.baselines.restart.RestartRuntime` -- classic
  whole-program restart: the process is relaunched after every crash
  and deterministic bug-triggering inputs keep killing it.
"""

from repro.baselines.restart import RestartRuntime
from repro.baselines.rx import RxRecovery, RxRuntime

__all__ = ["RxRuntime", "RxRecovery", "RestartRuntime"]
