"""Whole-program restart baseline (Gray 1986 style).

On every crash, the process is relaunched from scratch.  The in-flight
request is lost (the stream is resynchronized at the next request
boundary) and the restart costs real downtime; a deterministic
bug-triggering input will crash the fresh process again the next time
it arrives, producing the repeating throughput collapses of Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.apps.base import Workload
from repro.heap.extension import ExtensionMode
from repro.process import Process
from repro.util.events import EventLog
from repro.util.simclock import CostModel, SimClock
from repro.vm.io import OutputLog
from repro.vm.machine import RunReason
from repro.vm.program import Program

#: Simulated downtime of one restart: process teardown, exec, startup,
#: cache warmup.  2 simulated seconds, a conservative figure for a
#: 2005-era server restart.
RESTART_DOWNTIME_NS = 2_000_000_000


@dataclass
class RestartSessionResult:
    reason: str
    restarts: int = 0
    crash_times_ns: List[int] = field(default_factory=list)


class RestartRuntime:
    """Run a program under crash-and-restart."""

    def __init__(self, program: Program, workload: Workload,
                 costs: Optional[CostModel] = None,
                 events: Optional[EventLog] = None,
                 max_restarts: int = 100):
        self.program = program
        self.workload = workload
        self.costs = costs or CostModel()
        self.events = events if events is not None else EventLog()
        self.max_restarts = max_restarts
        self.clock = SimClock()           # survives restarts
        self.output = OutputLog()         # aggregated across processes
        self._cursor = 0                  # position in the token stream

    def _spawn(self) -> Process:
        tokens = self.workload.tokens[self._cursor:]
        return Process(self.program, input_tokens=tokens,
                       mode=ExtensionMode.OFF, costs=self.costs,
                       clock=self.clock, output=self.output)

    def run(self) -> RestartSessionResult:
        result = RestartSessionResult(reason="halt")
        restarts = 0
        while True:
            process = self._spawn()
            run = process.run()
            consumed = process.input.cursor
            if run.reason in (RunReason.HALT, RunReason.INPUT_EXHAUSTED):
                result.reason = ("halt" if run.reason is RunReason.HALT
                                 else "input")
                result.restarts = restarts
                return result
            # Crash: lose the in-flight request, resync at the next
            # boundary, pay the restart downtime.
            restarts += 1
            result.crash_times_ns.append(self.clock.now_ns)
            self.events.emit(self.clock.now_ns, "restart.crash",
                             n=restarts,
                             fault=run.fault.describe() if run.fault
                             else "?")
            self.clock.charge(RESTART_DOWNTIME_NS)
            absolute = self._cursor + consumed
            self._cursor = self.workload.next_boundary_after(absolute + 1)
            if restarts >= self.max_restarts:
                # Distinct terminal reason: the restart *budget* ran
                # out, as opposed to any in-band program outcome.
                result.reason = "restart.exhausted"
                result.restarts = restarts
                self.events.emit(self.clock.now_ns, "restart.exhausted",
                                 restarts=restarts,
                                 max_restarts=self.max_restarts)
                return result
