"""The Rx baseline (Qin et al., SOSP 2005).

Rx survives failures by rolling back to a checkpoint and re-executing
under environmental changes applied to *all* memory objects.  It
deliberately performs no in-depth diagnosis: once the program passes
the buggy region, the changes are disabled (their whole-heap cost is
too high to keep), so nothing prevents the same deterministic bug from
firing again -- the repeating throughput dips of Figure 4 and the
call-site/object blow-up of Table 4.

The implementation reuses this repo's checkpoint manager and the
all-preventive whole-heap policy; what it *doesn't* reuse is exactly
what the paper contrasts: no exposing changes, no bug-type isolation,
no call-site patches, no persistence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.checkpoint.manager import DEFAULT_INTERVAL, CheckpointManager
from repro.core.changes import DiagnosticPolicy, changes_for
from repro.core.bugtypes import ALL_BUG_TYPES
from repro.heap.extension import ExtensionMode
from repro.monitors import FailureEvent, default_monitors
from repro.process import Process
from repro.util.events import EventLog
from repro.util.simclock import CostModel
from repro.vm.io import OutputLog
from repro.vm.machine import RunReason
from repro.vm.program import Program


@dataclass
class RxRecovery:
    """One Rx recovery, with the Table 4 accounting."""

    failure: FailureEvent
    recovery_time_ns: int = 0
    succeeded: bool = False
    rollbacks: int = 0
    #: distinct allocation+deallocation call-sites the whole-heap
    #: changes touched during the buggy region.
    affected_callsites: int = 0
    #: memory objects (operations) the changes were applied to.
    affected_objects: int = 0


@dataclass
class RxSessionResult:
    reason: str
    recoveries: List[RxRecovery] = field(default_factory=list)


class RxRuntime:
    """Run one program under the Rx recovery discipline."""

    def __init__(self, program: Program,
                 input_tokens: Optional[Iterable[int]] = None,
                 checkpoint_interval: int = DEFAULT_INTERVAL,
                 window_intervals: int = 3,
                 max_checkpoint_search: int = 8,
                 costs: Optional[CostModel] = None,
                 events: Optional[EventLog] = None,
                 output: Optional[OutputLog] = None):
        self.events = events if events is not None else EventLog()
        self.window_intervals = window_intervals
        self.max_checkpoint_search = max_checkpoint_search
        self.process = Process(program, input_tokens=input_tokens,
                               mode=ExtensionMode.NORMAL, costs=costs,
                               output=output)
        self.manager = CheckpointManager(
            self.process, interval=checkpoint_interval,
            events=self.events)
        self.monitors = default_monitors()
        self.recoveries: List[RxRecovery] = []

    # ------------------------------------------------------------------

    def run(self, max_steps: Optional[int] = None) -> RxSessionResult:
        budget = max_steps
        while True:
            start = self.process.instr_count
            result = self.manager.run(max_steps=budget)
            if budget is not None:
                budget -= self.process.instr_count - start
            if result.reason is RunReason.HALT:
                return RxSessionResult("halt", self.recoveries)
            if result.reason is RunReason.INPUT_EXHAUSTED:
                return RxSessionResult("input", self.recoveries)
            if result.reason is RunReason.STOP:
                return RxSessionResult("budget", self.recoveries)
            failure = self._detect(result)
            if failure is None:
                return RxSessionResult("died", self.recoveries)
            recovery = self._recover(failure)
            self.recoveries.append(recovery)
            if not recovery.succeeded:
                return RxSessionResult("died", self.recoveries)

    def _detect(self, result) -> Optional[FailureEvent]:
        for monitor in self.monitors:
            event = monitor.check(result, self.process)
            if event is not None:
                return event
        return None

    # ------------------------------------------------------------------

    def _recover(self, failure: FailureEvent) -> RxRecovery:
        """Roll back and re-execute under whole-heap preventive changes
        until the failure region is passed, then disable the changes."""
        recovery = RxRecovery(failure=failure)
        t_start = self.process.clock.now_ns
        window_end = (failure.instr_count
                      + self.window_intervals * self.manager.interval)
        changes = changes_for(ALL_BUG_TYPES, exposing=False)
        saved_costs = self.process.costs
        for checkpoint in self.manager.recent(self.max_checkpoint_search):
            policy = DiagnosticPolicy(alloc_default=changes,
                                      free_default=changes)
            self.manager.rollback_to(checkpoint)
            recovery.rollbacks += 1
            self.process.set_costs(saved_costs.replay_model())
            self.process.set_mode(ExtensionMode.DIAGNOSTIC, policy)
            self.process.reseed_entropy(7331 + recovery.rollbacks)
            result = self.process.run(stop_at=window_end)
            self.process.set_costs(saved_costs)
            if result.reason in (RunReason.STOP, RunReason.HALT,
                                 RunReason.INPUT_EXHAUSTED):
                recovery.succeeded = True
                alloc_sites = policy.seen_alloc_sites
                free_sites = policy.seen_free_sites
                recovery.affected_callsites = (len(alloc_sites)
                                               + len(free_sites))
                recovery.affected_objects = (sum(alloc_sites.values())
                                             + sum(free_sites.values()))
                self.manager.drop_after(checkpoint)
                break
        recovery.recovery_time_ns = self.process.clock.now_ns - t_start
        # Rx's defining limitation: the changes are disabled once the
        # program is past the buggy region.
        self.process.set_mode(ExtensionMode.NORMAL, None)
        self.process.extension.policy = _plain_policy()
        self.events.emit(self.process.clock.now_ns, "rx.recovery",
                         succeeded=recovery.succeeded,
                         rollbacks=recovery.rollbacks,
                         callsites=recovery.affected_callsites,
                         objects=recovery.affected_objects)
        return recovery


def _plain_policy():
    from repro.heap.extension import ChangePolicy
    return ChangePolicy()
