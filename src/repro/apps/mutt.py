"""Mutt 1.3.99i -- buffer overflow in UTF-8 folder-name conversion.

The real bug: mutt's ``utf8_to_utf7`` conversion for IMAP folder names
can expand the name beyond the allocated buffer.  The model converts
an unchecked folder-name length into a 96-byte buffer that sits (via
startup hole reuse) below the account object whose first word is a
pointer used by every mailbox poll.

Request protocol:

* ``1 <name_len> <msg_size>`` -- open folder, fetch one message
* ``2 <n>`` -- poll n mailboxes (read-only churn)
* ``0`` -- shutdown
"""

from __future__ import annotations

from typing import List

from repro.apps.base import App, AppInfo
from repro.core.bugtypes import BugType
from repro.util.rng import DeterministicRNG

SOURCE = """
// mutt: mail client with a utf8->utf7 conversion overflow

int account = 0;      // [0]=ptr to connection, [8]=polls
int connection = 0;   // [0]=socket id, [8]=bytes
int maildirs = 0;

int utf7_convert(int nlen) {
    // BUG: conversion buffer is 96 bytes; UTF-7 expansion of a long
    // folder name exceeds it (Mutt 1.3.99i).
    int conv = malloc(96);
    int i = 0;
    while (i < nlen) {
        store1(conv + i, 43);         // '+', UTF-7 shift char
        i = i + 1;
    }
    int tag = load1(conv) + load1(conv + 64);
    free(conv);
    return tag;
}

int open_folder(int nlen, int msize) {
    utf7_convert(nlen);
    int msg = malloc(msize);
    memset(msg, 66, msize);           // 'B'
    int conn = load(account);         // smashed by the overflow
    store(conn, 8, load(conn, 8) + msize);
    free(msg);
    output(msize);
    return 0;
}

int poll_mailboxes(int n) {
    int i = 0;
    int seen = 0;
    while (i < n) {
        seen = seen + load(maildirs, (i % 4) * 8);
        i = i + 1;
    }
    store(account, 8, load(account, 8) + 1);
    output(1);
    return seen;
}

int main() {
    int scratch = malloc(96);         // hole below account
    account = malloc(64);
    connection = malloc(64);
    maildirs = malloc(64);
    memset(maildirs, 0, 64);
    store(connection, 7);
    store(connection, 8, 0);
    store(account, connection);
    store(account, 8, 0);
    free(scratch);
    while (1) {
        int op = input();
        if (op == 0) {
            halt();
        }
        if (op == 1) {
            int nlen = input();
            int msize = input();
            open_folder(nlen, msize);
        }
        if (op == 2) {
            int n = input();
            poll_mailboxes(n);
        }
    }
}
"""


class MuttApp(App):
    SOURCE = SOURCE
    INFO = AppInfo(
        name="mutt",
        paper_version="1.3.99i",
        bug_description="buffer overflow",
        paper_loc="86K",
        description="email client",
    )
    BUG_TYPES = (BugType.BUFFER_OVERFLOW,)
    EXPECTED_PATCH_SITES = 1
    REQUEST_COST_HINT = 450

    def normal_request(self, rng: DeterministicRNG) -> List[int]:
        if rng.random() < 0.25:
            return [2, rng.randint(2, 10)]
        return [1, rng.randint(8, 88), rng.randint(200, 1500)]

    def trigger_request(self) -> List[int]:
        return [1, 128, 600]
