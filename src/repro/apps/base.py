"""Application framework.

An :class:`App` couples a MiniC program with workload generation.  The
input protocol is a flat token stream; each request is a short token
sequence beginning with an opcode, and token ``0`` as an opcode shuts
the application down cleanly.  Applications emit one OUT value per
completed request (the "bytes served"), which the throughput experiment
(Figure 4) bins over time.

Workloads carry request boundary offsets so the restart baseline can
resynchronize the stream after losing a process mid-request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.bugtypes import BugType
from repro.lang import compile_program
from repro.util.rng import DeterministicRNG
from repro.vm.program import Program


@dataclass(frozen=True)
class AppInfo:
    """Static description (one Table 2 row)."""

    name: str
    paper_version: str
    bug_description: str
    paper_loc: str
    description: str


@dataclass
class Workload:
    """A generated token stream plus request boundaries."""

    tokens: List[int]
    boundaries: List[int] = field(default_factory=list)  # request starts
    trigger_positions: List[int] = field(default_factory=list)

    def next_boundary_after(self, cursor: int) -> int:
        """First request boundary at or after ``cursor`` (used by the
        restart baseline to resync a torn stream)."""
        for b in self.boundaries:
            if b >= cursor:
                return b
        return len(self.tokens)


class App:
    """Base class: subclasses provide SOURCE, INFO, bug ground truth,
    and request generators."""

    SOURCE: str = ""
    INFO: Optional[AppInfo] = None
    BUG_TYPES: Tuple[BugType, ...] = ()
    EXPECTED_PATCH_SITES: int = 0
    #: instructions a normal request roughly costs (used by experiments
    #: to size workloads relative to checkpoint intervals)
    REQUEST_COST_HINT: int = 500

    def __init__(self) -> None:
        self._program: Optional[Program] = None

    @property
    def name(self) -> str:
        return self.INFO.name

    def program(self) -> Program:
        if self._program is None:
            self._program = compile_program(self.SOURCE, self.INFO.name)
        return self._program

    # -- request generators (override) -----------------------------------

    def normal_request(self, rng: DeterministicRNG) -> List[int]:
        raise NotImplementedError

    def trigger_request(self) -> List[int]:
        raise NotImplementedError

    def shutdown_request(self) -> List[int]:
        return [0]

    # -- workload assembly -------------------------------------------------

    def workload(self, normal_before: int = 20, triggers: int = 1,
                 normal_between: int = 20, normal_after: int = 20,
                 seed: int = 42, shutdown: bool = True) -> Workload:
        """normal requests, then ``triggers`` trigger requests separated
        by ``normal_between`` normal ones, then a normal tail."""
        rng = DeterministicRNG(seed)
        wl = Workload(tokens=[])

        def add(req: Sequence[int], trigger: bool = False) -> None:
            wl.boundaries.append(len(wl.tokens))
            if trigger:
                wl.trigger_positions.append(len(wl.tokens))
            wl.tokens.extend(req)

        for _ in range(normal_before):
            add(self.normal_request(rng))
        for t in range(triggers):
            add(self.trigger_request(), trigger=True)
            tail = normal_between if t < triggers - 1 else normal_after
            for _ in range(tail):
                add(self.normal_request(rng))
        if shutdown:
            add(self.shutdown_request())
        return wl

    def normal_workload(self, requests: int = 200,
                        seed: int = 42) -> Workload:
        """Trigger-free workload for the overhead experiments."""
        return self.workload(normal_before=requests, triggers=0,
                             normal_after=0, seed=seed)
