"""CLI: run an evaluation application under a recovery discipline.

Usage::

    python -m repro.apps                       # list the applications
    python -m repro.apps squid                 # run under First-Aid
    python -m repro.apps apache --system rx    # run under Rx
    python -m repro.apps cvs --system restart --triggers 3
    python -m repro.apps m4 --report           # print the bug report
"""

from __future__ import annotations

import argparse
import sys

from repro.apps.registry import all_apps, get_app
from repro.bench.harness import (
    run_first_aid,
    run_restart,
    run_rx,
    spaced_workload,
)


def list_apps() -> None:
    print(f"{'name':<12} {'version':<9} {'bug':<34} description")
    print("-" * 75)
    for app in all_apps():
        info = app.INFO
        print(f"{info.name:<12} {info.paper_version:<9} "
              f"{info.bug_description:<34} {info.description}")


def run_app(name: str, system: str, triggers: int,
            show_report: bool) -> int:
    app = get_app(name)
    workload = spaced_workload(app, triggers=triggers)
    print(f"running {name} under {system}: {len(workload.tokens)} "
          f"input tokens, {triggers} bug trigger(s)")

    if system == "first-aid":
        runtime, session, _ = run_first_aid(app, workload=workload)
        print(f"outcome: {session.reason}, "
              f"failures survived: {len(session.recoveries)}")
        for recovery in session.recoveries:
            diag = recovery.diagnosis
            print(f"  {diag.verdict.value}: "
                  f"{[b.value for b in diag.bug_types]}, "
                  f"{len(diag.patches)} patch(es), "
                  f"{diag.rollbacks} rollbacks, recovery "
                  f"{recovery.recovery_time_ns / 1e9:.3f}s")
            if show_report and recovery.report:
                print(recovery.report.render())
        return 0 if session.reason in ("halt", "input") else 1

    if system == "rx":
        runtime, session, _ = run_rx(app, workload=workload)
        print(f"outcome: {session.reason}, "
              f"recoveries: {len(session.recoveries)} "
              f"(Rx cannot prevent reoccurrence)")
        return 0 if session.reason in ("halt", "input") else 1

    runtime, session, _ = run_restart(app, workload=workload)
    print(f"outcome: {session.reason}, restarts: {session.restarts}")
    return 0 if session.reason in ("halt", "input") else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.apps",
        description="Run a paper-evaluation application under a "
        "recovery discipline.")
    parser.add_argument("app", nargs="?",
                        help="application name (omit to list)")
    parser.add_argument("--system", default="first-aid",
                        choices=["first-aid", "rx", "restart"])
    parser.add_argument("--triggers", type=int, default=2)
    parser.add_argument("--report", action="store_true",
                        help="print the generated bug report")
    args = parser.parse_args(argv)
    if not args.app:
        list_apps()
        return 0
    return run_app(args.app, args.system, args.triggers, args.report)


if __name__ == "__main__":
    sys.exit(main())
