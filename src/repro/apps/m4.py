"""M4 1.4.4 -- dangling pointer reads in the macro table.

The real bug (paper Table 2): m4 frees a macro's definition text while
the expansion machinery still holds a pointer to it; the next expansion
reads freed memory.  The model keeps an expansion cache holding raw
text pointers; both the *redefine* path and the *popdef* path free the
old text without invalidating the cache -- two distinct deallocation
call-sites, matching the paper's ``delay free(2)`` patch for m4.

Each definition text's first word points at the interpreter state
object, so a *delayed* free leaves cached expansion working on stale
but valid data (how the paper's patch survives the bug), while real
reuse overwrites the word with a small integer and the expansion
dereferences garbage.

Request protocol:

* ``1 <slot> <val>``  -- define macro in slot (allocates text)
* ``2 <slot>``        -- cache macro for fast expansion
* ``3 <slot> <val>``  -- redefine macro (frees old text: site A)
* ``4 <slot>``        -- popdef macro (frees text: site B)
* ``5 <n>``           -- scratch work: n live temp buffers (reuse)
* ``6 <which>``       -- expand from cache (reads possibly-stale ptr)
* ``0``               -- shutdown
"""

from __future__ import annotations

from typing import List

from repro.apps.base import App, AppInfo
from repro.core.bugtypes import BugType
from repro.util.rng import DeterministicRNG

SOURCE = """
// m4: macro processor with dangling reads through the expansion cache

int def_table = 0;    // 8 slots of text pointers
int exp_cache = 0;    // 4 slots of cached text pointers (never cleared!)
int state = 0;        // interpreter state: [0]=expansions, [8]=defines
int temp_ring = 0;    // 8 slots of live scratch buffers
int evict_list = 0;   // staging for ring evictions
int temp_next = 0;

int text_new(int val) {
    int t = malloc(40);
    store(t, state);               // texts point back at the state
    store(t, 8, val);
    store(t, 16, val * 3);
    store(state, 8, load(state, 8) + 1);
    return t;
}

int text_free(int t) {
    free(t);
    return 0;
}

int do_define(int slot, int val) {
    int old = load(def_table, slot * 8);
    if (old != 0) {
        text_free(old);
    }
    store(def_table, slot * 8, text_new(val));
    output(1);
    return 0;
}

int do_cache(int slot) {
    int t = load(def_table, slot * 8);
    store(exp_cache, (slot % 4) * 8, t);
    output(1);
    return 0;
}

int do_redefine(int slot, int val) {
    int nt = text_new(val);
    int old = load(def_table, slot * 8);
    if (old != 0) {
        text_free(old);            // site A: redefine frees old text
    }
    store(def_table, slot * 8, nt);
    output(1);
    return 0;
}

int do_popdef(int slot) {
    int old = load(def_table, slot * 8);
    if (old != 0) {
        text_free(old);            // site B: popdef frees text
        store(def_table, slot * 8, 0);
    }
    output(1);
    return 0;
}

int do_scratch(int n) {
    // Expansion temporaries kept live in a ring.  All allocations
    // happen before any eviction is freed, so fresh temporaries reuse
    // the most recently freed text chunks (LIFO bins), overwriting
    // their state-pointer word.
    int i = 0;
    while (i < n) {
        int idx = ((temp_next + i) % 8) * 8;
        store(evict_list, i * 8, load(temp_ring, idx));
        int tmp = malloc(40);
        store(tmp, 7);             // small int where a pointer was
        store(tmp, 8, 7);
        store(temp_ring, idx, tmp);
        i = i + 1;
    }
    i = 0;
    while (i < n) {
        int old = load(evict_list, i * 8);
        if (old != 0) {
            free(old);
        }
        store(evict_list, i * 8, 0);
        i = i + 1;
    }
    temp_next = temp_next + n;
    output(n);
    return 0;
}

int do_expand(int which) {
    int t = load(exp_cache, (which % 4) * 8);
    if (t == 0) {
        output(0);
        return 0;
    }
    int sp = load(t);              // stale text -> garbage pointer
    store(sp, load(sp) + 1);
    output(load(t, 8));
    return 0;
}

int main() {
    def_table = malloc(64);
    memset(def_table, 0, 64);
    exp_cache = malloc(64);
    memset(exp_cache, 0, 64);
    state = malloc(64);
    store(state, 0);
    store(state, 8, 0);
    temp_ring = malloc(64);
    memset(temp_ring, 0, 64);
    evict_list = malloc(64);
    memset(evict_list, 0, 64);
    while (1) {
        int op = input();
        if (op == 0) { halt(); }
        if (op == 1) { int s = input(); int v = input(); do_define(s, v); }
        if (op == 2) { int s = input(); do_cache(s); }
        if (op == 3) { int s = input(); int v = input(); do_redefine(s, v); }
        if (op == 4) { int s = input(); do_popdef(s); }
        if (op == 5) { int n = input(); do_scratch(n); }
        if (op == 6) { int w = input(); do_expand(w); }
    }
}
"""


class M4App(App):
    SOURCE = SOURCE
    INFO = AppInfo(
        name="m4",
        paper_version="1.4.4",
        bug_description="dangling pointer read",
        paper_loc="17K",
        description="macro processor",
    )
    BUG_TYPES = (BugType.DANGLING_READ,)
    EXPECTED_PATCH_SITES = 2
    REQUEST_COST_HINT = 300

    def normal_request(self, rng: DeterministicRNG) -> List[int]:
        roll = rng.random()
        slot = rng.randint(4, 7)   # normal traffic stays off slots 0-3
        if roll < 0.4:
            return [1, slot, rng.randint(1, 1000)]
        if roll < 0.6:
            return [5, rng.randint(1, 4)]
        if roll < 0.8:
            # define + immediately cache + expand: cache is fresh, safe
            return [1, slot, rng.randint(1, 1000), 2, slot, 6, slot]
        return [4, slot]

    def trigger_request(self) -> List[int]:
        # define 1,2 -> cache both -> redefine 1 (site A) + popdef 2
        # (site B) -> scratch reuse -> expand both stale cache entries.
        return [
            1, 1, 11,
            1, 2, 22,
            2, 1,
            2, 2,
            3, 1, 33,      # frees old text of slot 1 (site A)
            4, 2,          # frees text of slot 2 (site B)
            5, 4,          # scratch buffers reuse the freed chunks
            6, 1,          # stale expansion -> crash here unpatched
            6, 2,          # needs site B patched too
        ]
