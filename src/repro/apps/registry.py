"""Application registry (populated as app modules are written)."""

from __future__ import annotations

from typing import Dict, List, Type

from repro.apps.base import App

_REGISTRY: Dict[str, Type[App]] = {}


def register(app_cls: Type[App]) -> Type[App]:
    _REGISTRY[app_cls.INFO.name] = app_cls
    return app_cls


def _populate() -> None:
    # Imports deferred to avoid import cycles with repro.apps.base.
    from repro.apps import apache, bc, cvs, m4, mutt, pine, squid
    for module in (apache, bc, cvs, m4, mutt, pine, squid):
        for name in dir(module):
            obj = getattr(module, name)
            if (isinstance(obj, type) and issubclass(obj, App)
                    and obj is not App and obj.INFO is not None):
                _REGISTRY.setdefault(obj.INFO.name, obj)


def get_app(name: str) -> App:
    if not _REGISTRY:
        _populate()
    return _REGISTRY[name]()


def all_apps() -> List[App]:
    if not _REGISTRY:
        _populate()
    return [cls() for _, cls in sorted(_REGISTRY.items())]


def real_bug_apps() -> List[App]:
    """The seven apps with developer-introduced bugs (Table 4 set):
    excludes the two injected Apache variants."""
    return [app for app in all_apps()
            if app.INFO.name not in ("apache-uir", "apache-dpw")]
