"""The evaluation applications (paper Table 2).

Each module models one of the paper's buggy applications as a MiniC
program whose memory bug has the same type, trigger structure, and
manifestation distance as the real one:

===========  =======  ==============================  ===============
App          Paper    Bug                             Patch call-sites
===========  =======  ==============================  ===============
apache       2.0.51   dangling pointer read (LDAP     7 (delay free)
                      cache purge)
apache-uir   2.0.51   uninitialized read (injected)   1 (fill zero)
apache-dpw   2.0.51   dangling pointer write          1 (delay free)
                      (injected)
squid        2.3      buffer overflow                 1 (padding)
cvs          1.11.4   double free                     1 (delay free)
pine         4.44     buffer overflow                 1 (padding)
mutt         1.3.99i  buffer overflow                 1 (padding)
m4           1.4.4    dangling pointer read           2 (delay free)
bc           1.06     two buffer overflows            3 (padding)
===========  =======  ==============================  ===============

Use :func:`repro.apps.registry.get_app` / ``all_apps()`` to obtain
:class:`~repro.apps.base.App` instances.
"""

from repro.apps.base import App, AppInfo, Workload
from repro.apps.registry import all_apps, get_app, real_bug_apps

__all__ = ["App", "AppInfo", "Workload", "all_apps", "get_app",
           "real_bug_apps"]
