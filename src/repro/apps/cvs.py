"""CVS 1.11.4 -- double free in the commit error path.

The real bug (paper Table 2): CVS's server frees a buffer node and an
error path later frees the same node again; glibc aborts with "double
free or corruption".  The model mirrors that: ``do_commit`` releases
its delta buffer through the shared ``buf_free`` helper and, when the
commit is flagged invalid, the error cleanup path releases it a second
time.

Request protocol:

* ``1 <fsize>`` -- checkout (allocate, fill, checksum, free a buffer)
* ``2 <fsize> <bad>`` -- commit; ``bad=1`` takes the buggy error path
* ``0`` -- shutdown
"""

from __future__ import annotations

from typing import List

from repro.apps.base import App, AppInfo
from repro.core.bugtypes import BugType
from repro.util.rng import DeterministicRNG

SOURCE = """
// cvs: version-control server with a double free on the error path

int repo_meta = 0;    // [0]=revision counter, [8]=commits, [16]=checkouts

int buf_free(int b) {
    // shared buffer release helper (the wrapper both paths go through)
    free(b);
    return 0;
}

int checksum(int p, int n) {
    int s = 0;
    int i = 0;
    while (i < n) {
        s = s + load1(p + i);
        i = i + 1;
    }
    return s;
}

int do_checkout(int fsize) {
    int fbuf = malloc(fsize);
    memset(fbuf, 70, fsize);            // 'F'
    int s = checksum(fbuf, fsize);
    store(repo_meta, 16, load(repo_meta, 16) + 1);
    buf_free(fbuf);
    output(fsize);
    return s;
}

int do_commit(int fsize, int bad) {
    int delta = malloc(48);
    store(delta, fsize);
    store(delta, 8, load(repo_meta));
    store(delta, 16, bad);
    store(repo_meta, load(repo_meta) + 1);
    store(repo_meta, 8, load(repo_meta, 8) + 1);
    int rc = 0;
    if (load(delta, 16) != 0) {
        rc = 1;                          // validation failed
    }
    buf_free(delta);                     // normal cleanup
    if (rc != 0) {
        // BUG: error path frees the delta node again (CVS 1.11.4).
        buf_free(delta);
    }
    output(fsize);
    return rc;
}

int main() {
    repo_meta = malloc(64);
    store(repo_meta, 1);
    store(repo_meta, 8, 0);
    store(repo_meta, 16, 0);
    while (1) {
        int op = input();
        if (op == 0) {
            halt();
        }
        if (op == 1) {
            int fsize = input();
            do_checkout(fsize);
        }
        if (op == 2) {
            int fsize = input();
            int bad = input();
            do_commit(fsize, bad);
        }
    }
}
"""


class CvsApp(App):
    SOURCE = SOURCE
    INFO = AppInfo(
        name="cvs",
        paper_version="1.11.4",
        bug_description="double free",
        paper_loc="114K",
        description="version control",
    )
    BUG_TYPES = (BugType.DOUBLE_FREE,)
    EXPECTED_PATCH_SITES = 1
    REQUEST_COST_HINT = 700

    def normal_request(self, rng: DeterministicRNG) -> List[int]:
        if rng.random() < 0.4:
            return [2, rng.randint(64, 512), 0]
        return [1, rng.randint(64, 512)]

    def trigger_request(self) -> List[int]:
        return [2, 256, 1]

    def shutdown_request(self) -> List[int]:
        return [0]
