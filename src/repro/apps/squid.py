"""Squid 2.3 -- buffer overflow in FTP title building.

The real bug (paper Table 2): Squid's ``ftpBuildTitleUrl`` undersizes
the title buffer it builds for FTP directory listings; a long URL
overflows it on the heap.  The model reproduces the structure: a
fixed 32-byte title buffer filled from an unchecked URL length, sitting
(after steady-state chunk reuse) directly below the cache metadata
object whose first word is a pointer the per-request accounting
dereferences.  An overflowing URL smashes that pointer and the process
segfaults within the same request.

Request protocol (tokens):

* ``1 <url_len> <obj_size>`` -- fetch an object through the cache
* ``2`` -- cache maintenance (purges one table slot)
* ``0`` -- shutdown
"""

from __future__ import annotations

from typing import List

from repro.apps.base import App, AppInfo
from repro.core.bugtypes import BugType
from repro.util.rng import DeterministicRNG

SOURCE = """
// squid: proxy cache with an ftpBuildTitleUrl-style overflow

int cache_table = 0;   // 8 pointer slots for cached entries
int cache_meta = 0;    // [0]=ptr to stats, [8]=hits, [16]=next slot
int stats = 0;         // [0]=requests, [8]=bytes served

int checksum(int p, int n) {
    int s = 0;
    int i = 0;
    while (i < n) {
        s = s + load1(p + i);
        i = i + 1;
    }
    return s;
}

int ftp_build_title(int len) {
    // BUG: title is fixed at 32 bytes but len is never checked
    // (Squid 2.3 ftpBuildTitleUrl length underestimation).
    int title = malloc(32);
    int i = 0;
    while (i < len) {
        store1(title + i, 85);       // 'U'
        i = i + 1;
    }
    int s = checksum(title, 32);
    free(title);
    return s;
}

int stats_bump(int size) {
    int sp = load(cache_meta);       // pointer smashed by the overflow
    store(sp, load(sp) + 1);
    store(sp, 8, load(sp, 8) + size);
    store(cache_meta, 8, load(cache_meta, 8) + 1);
    return 0;
}

int cache_store(int size) {
    int e = malloc(48);
    store(e, size);
    store(e, 8, load(cache_meta, 16));
    int slot = load(cache_meta, 16) % 8;
    int old = load(cache_table, slot * 8);
    if (old != 0) {
        free(old);
    }
    store(cache_table, slot * 8, e);
    store(cache_meta, 16, load(cache_meta, 16) + 1);
    return e;
}

int handle_fetch(int len, int size) {
    ftp_build_title(len);
    cache_store(size);
    stats_bump(size);
    output(size);
    return 0;
}

int handle_maintenance() {
    int slot = load(cache_meta, 16) % 8;
    int old = load(cache_table, slot * 8);
    if (old != 0) {
        free(old);
        store(cache_table, slot * 8, 0);
    }
    output(1);
    return 0;
}

int main() {
    // Startup: the scratch buffer leaves a 64-payload hole directly
    // below cache_meta once freed; per-request title buffers reuse it.
    int scratch = malloc(32);
    cache_meta = malloc(64);
    stats = malloc(64);
    cache_table = malloc(64);
    memset(cache_table, 0, 64);
    store(stats, 0);
    store(stats, 8, 0);
    store(cache_meta, stats);
    store(cache_meta, 8, 0);
    store(cache_meta, 16, 0);
    free(scratch);
    while (1) {
        int op = input();
        if (op == 0) {
            halt();
        }
        if (op == 1) {
            int len = input();
            int size = input();
            handle_fetch(len, size);
        }
        if (op == 2) {
            handle_maintenance();
        }
    }
}
"""


class SquidApp(App):
    SOURCE = SOURCE
    INFO = AppInfo(
        name="squid",
        paper_version="2.3",
        bug_description="buffer overflow",
        paper_loc="93K",
        description="proxy cache",
    )
    BUG_TYPES = (BugType.BUFFER_OVERFLOW,)
    EXPECTED_PATCH_SITES = 1
    REQUEST_COST_HINT = 450

    def normal_request(self, rng: DeterministicRNG) -> List[int]:
        if rng.random() < 0.15:
            return [2]
        return [1, rng.randint(4, 24), rng.randint(512, 4096)]

    def trigger_request(self) -> List[int]:
        # URL long enough to run over the title buffer, the next chunk
        # header, and the cache_meta stats pointer.
        return [1, 64, 1024]
