"""Pine 4.44 -- buffer overflow in address expansion.

The real bug: Pine's ``rfc822_cat`` / address-book expansion
underestimates the quoted length of a From: address and overflows a
heap buffer when displaying a message with a crafted address.  The
model builds an 80-byte display header from an unchecked address
length; the overflow runs over the mailbox index object whose first
word points at the open-mailbox state.

Request protocol:

* ``1 <addr_len> <body_size>`` -- open/read a message
* ``2`` -- refile a message (allocate/free churn)
* ``0`` -- shutdown
"""

from __future__ import annotations

from typing import List

from repro.apps.base import App, AppInfo
from repro.core.bugtypes import BugType
from repro.util.rng import DeterministicRNG

SOURCE = """
// pine: email client with an address-expansion overflow

int mbox_index = 0;   // [0]=ptr to mbox state, [8]=messages read
int mbox_state = 0;   // [0]=open flag, [8]=current msg
int folders = 0;      // folder table

int expand_address(int alen) {
    // BUG: display header is 80 bytes; quoted address length is
    // computed elsewhere and trusted here (Pine 4.44).
    int hdr = malloc(80);
    int i = 0;
    while (i < alen) {
        store1(hdr + i, 64);          // '@'
        i = i + 1;
    }
    int width = load1(hdr) + load1(hdr + 40);
    free(hdr);
    return width;
}

int read_message(int alen, int body) {
    expand_address(alen);
    int msg = malloc(body);
    memset(msg, 77, body);            // 'M'
    int st = load(mbox_index);        // smashed by the overflow
    store(st, 8, load(st, 8) + 1);
    store(mbox_index, 8, load(mbox_index, 8) + 1);
    free(msg);
    output(body);
    return 0;
}

int refile() {
    int tmp = malloc(160);
    memset(tmp, 82, 160);             // 'R'
    free(tmp);
    output(1);
    return 0;
}

int main() {
    int scratch = malloc(80);         // hole below mbox_index
    mbox_index = malloc(64);
    mbox_state = malloc(64);
    folders = malloc(128);
    memset(folders, 0, 128);
    store(mbox_state, 1);
    store(mbox_state, 8, 0);
    store(mbox_index, mbox_state);
    store(mbox_index, 8, 0);
    free(scratch);
    while (1) {
        int op = input();
        if (op == 0) {
            halt();
        }
        if (op == 1) {
            int alen = input();
            int body = input();
            read_message(alen, body);
        }
        if (op == 2) {
            refile();
        }
    }
}
"""


class PineApp(App):
    SOURCE = SOURCE
    INFO = AppInfo(
        name="pine",
        paper_version="4.44",
        bug_description="buffer overflow",
        paper_loc="330K",
        description="email client",
    )
    BUG_TYPES = (BugType.BUFFER_OVERFLOW,)
    EXPECTED_PATCH_SITES = 1
    REQUEST_COST_HINT = 500

    def normal_request(self, rng: DeterministicRNG) -> List[int]:
        if rng.random() < 0.2:
            return [2]
        return [1, rng.randint(16, 72), rng.randint(256, 2048)]

    def trigger_request(self) -> List[int]:
        # 80-byte buffer + 16-byte chunk header + the index pointer.
        return [1, 112, 512]
