"""Apache httpd 2.0.51 -- three bug variants.

:class:`ApacheApp` models the real mod_ldap bug the paper features
(Figure 5): ``util_ald_cache_purge`` frees LDAP cache nodes through the
``util_ald_free`` wrapper while a connection structure retains raw
pointers into them; requests that consult the connection later read
freed memory.  Seven distinct multi-level deallocation call-sites feed
the wrapper (search-node key/value/struct, URL-node key/value/struct,
and the hash bucket array), matching the paper's ``delay free(7)``
patch.  The purge (bug-trigger point) sits several checkpoint intervals
before the failing request -- the property that makes Apache's recovery
the slowest of the evaluated bugs and exercises both the phase-1
checkpoint walk and the heap-marking technique (Figure 3).

:class:`ApacheUirApp` and :class:`ApacheDpwApp` are the two *injected*
bugs from the paper (Apache-uir, Apache-dpw): an uninitialized read in
a subrequest status structure and a dangling-pointer write through a
torn-down timeout entry.

Request protocol (main variant):

* ``1 <size>``  -- static page (compute + big scratch buffer)
* ``2 <key>``   -- LDAP search (creates/uses a search cache node)
* ``3 <key>``   -- URL lookup (creates/uses a URL cache node)
* ``8``         -- cache maintenance: util_ald_cache_purge
* ``9``         -- server-status page (pool churn + connection use)
* ``0``         -- shutdown
"""

from __future__ import annotations

from typing import List

from repro.apps.base import App, AppInfo, Workload
from repro.core.bugtypes import BugType
from repro.util.rng import DeterministicRNG

SOURCE = """
// apache 2.0.51: mod_ldap cache with dangling pointer reads

int search_node = 0;    // the (single-entry) search cache
int url_node = 0;       // the (single-entry) URL cache
int bucket = 0;         // hash bucket array shared by both caches
int conn = 0;           // connection: retained raw pointers (7 slots)
int server_stats = 0;   // [0]=requests, [8]=bytes
int pool_ring = 0;      // per-request pool entries kept live
int pool_evict = 0;
int pool_next = 0;

int util_ald_free(int p) {
    // shared wrapper around free() -- all cache memory goes through it
    free(p);
    return 0;
}

int node_new(int keyv, int valv) {
    // Each cache node interleaves small live statistics cells between
    // the node/key/value allocations (as the real cache's apr pools
    // do); the cells survive a purge, so freed node memory never
    // coalesces into larger blocks and stays in its exact size bins
    // until genuinely same-sized allocations recycle it.
    int fence_lo = malloc(16);       // live fences isolate the cluster
    int node = malloc(48);
    int cell_a = malloc(16);
    int key = malloc(32);
    int cell_b = malloc(16);
    int val = malloc(40);
    int fence_hi = malloc(16);
    store(fence_lo, keyv);
    store(fence_hi, valv);
    store(cell_a, keyv);
    store(cell_b, valv);
    store(key, server_stats);
    store(key, 8, keyv);
    store(val, server_stats);
    store(val, 8, valv);
    store(node, server_stats);
    store(node, 8, key);
    store(node, 16, val);
    store(node, 24, cell_a);
    store(node, 32, cell_b);
    return node;
}

int util_ldap_search_node_free(int node) {
    util_ald_free(load(node, 8));      // site 1: search key
    util_ald_free(load(node, 16));     // site 2: search value
    return 0;
}

int util_ldap_url_node_free(int node) {
    util_ald_free(load(node, 8));      // site 4: url key
    util_ald_free(load(node, 16));     // site 5: url value
    return 0;
}

int util_ald_cache_purge() {
    int n = search_node;
    if (n != 0) {
        util_ldap_search_node_free(n);
        util_ald_free(n);              // site 3: search node struct
        search_node = 0;
    }
    int u = url_node;
    if (u != 0) {
        util_ldap_url_node_free(u);
        util_ald_free(u);              // site 6: url node struct
        url_node = 0;
    }
    // rebuild the bucket array: allocate the new one first, then
    // release the old through the wrapper
    int nb = malloc(64);
    memset(nb, 0, 64);
    store(nb, server_stats);
    util_ald_free(bucket);             // site 7: hash bucket array
    bucket = nb;
    return 0;
}

int handle_static(int size) {
    // The response buffer (272-byte chunk) is deliberately larger
    // than any coalesced run of freed cache chunks (<= 176 bytes), so
    // static traffic never recycles purged cache memory -- only the
    // per-request pool in handle_status does.  This preserves the
    // paper's error-propagation structure: the dangling pointers stay
    // latent across several checkpoint intervals.
    int buf = malloc(256);
    int i = 0;
    int s = 0;
    while (i < size) {
        store1(buf + (i % 256), i);
        s = s + i;
        i = i + 1;
    }
    free(buf);
    store(server_stats, load(server_stats) + 1);
    store(server_stats, 8, load(server_stats, 8) + size);
    output(size);
    return s;
}

int handle_ldap_search(int key) {
    int n = search_node;
    if (n == 0) {
        n = node_new(key, key * 17);
        search_node = n;
    }
    // BUG: the connection keeps raw pointers into the cache; a later
    // util_ald_cache_purge frees them without invalidating conn.
    store(conn, load(n, 8));           // key ptr
    store(conn, 8, load(n, 16));       // value ptr
    store(conn, 16, n);                // node ptr
    store(conn, 48, bucket);           // bucket ptr
    store(server_stats, load(server_stats) + 1);
    output(64);
    return 0;
}

int handle_url_lookup(int key) {
    int n = url_node;
    if (n == 0) {
        n = node_new(key, key * 31);
        url_node = n;
    }
    store(conn, 24, load(n, 8));
    store(conn, 32, load(n, 16));
    store(conn, 40, n);
    store(conn, 48, bucket);
    store(server_stats, load(server_stats) + 1);
    output(64);
    return 0;
}

int pool_churn() {
    // per-request pool entries: allocate all, then free evictions, so
    // fresh entries take the most recently freed chunks
    int i = 0;
    while (i < 7) {
        int idx = ((pool_next + i) % 8) * 8;
        store(pool_evict, i * 8, load(pool_ring, idx));
        int sz = 32;
        if (i == 2 || i == 3) { sz = 40; }
        if (i == 4 || i == 5) { sz = 48; }
        if (i == 6) { sz = 64; }
        int e = malloc(sz);
        store(e, 7);
        store(e, 8, 7);
        store(pool_ring, idx, e);
        i = i + 1;
    }
    i = 0;
    while (i < 7) {
        int old = load(pool_evict, i * 8);
        if (old != 0) {
            free(old);
        }
        store(pool_evict, i * 8, 0);
        i = i + 1;
    }
    pool_next = pool_next + 7;
    return 0;
}

int handle_status() {
    pool_churn();
    int i = 0;
    while (i < 7) {
        int p = load(conn, i * 8);
        if (p != 0) {
            int sp = load(p);          // stale after a purge
            store(sp, load(sp) + 1);   // -> SIGSEGV once reused
        }
        i = i + 1;
    }
    output(32);
    return 0;
}

int main() {
    server_stats = malloc(64);
    store(server_stats, 0);
    store(server_stats, 8, 0);
    conn = malloc(56);
    memset(conn, 0, 56);
    bucket = malloc(64);
    memset(bucket, 0, 64);
    store(bucket, server_stats);
    pool_ring = malloc(64);
    memset(pool_ring, 0, 64);
    pool_evict = malloc(64);
    memset(pool_evict, 0, 64);
    while (1) {
        int op = input();
        if (op == 0) { halt(); }
        if (op == 1) { int size = input(); handle_static(size); }
        if (op == 2) { int key = input(); handle_ldap_search(key); }
        if (op == 3) { int key = input(); handle_url_lookup(key); }
        if (op == 8) { util_ald_cache_purge(); output(1); }
        if (op == 9) { handle_status(); }
    }
}
"""


class ApacheApp(App):
    SOURCE = SOURCE
    INFO = AppInfo(
        name="apache",
        paper_version="2.0.51",
        bug_description="dangling pointer read",
        paper_loc="263K",
        description="web server",
    )
    BUG_TYPES = (BugType.DANGLING_READ,)
    EXPECTED_PATCH_SITES = 7
    REQUEST_COST_HINT = 800
    #: static-page fillers between purge and the failing status request;
    #: sized so the error propagation distance spans ~3 checkpoint
    #: intervals at the default 20k-instruction interval (a filler
    #: request costs ~2k instructions).
    DEFAULT_FILLERS = 35
    FILLER_SIZE = 256

    def normal_request(self, rng: DeterministicRNG) -> List[int]:
        roll = rng.random()
        if roll < 0.6:
            return [1, rng.randint(64, 400)]
        if roll < 0.8:
            return [2, rng.randint(0, 15)]
        return [3, rng.randint(0, 15)]

    def trigger_request(self) -> List[int]:
        return [8]

    def workload(self, normal_before: int = 25, triggers: int = 1,
                 normal_between: int = 25, normal_after: int = 25,
                 seed: int = 42, shutdown: bool = True,
                 fillers: int = None) -> Workload:
        """Scenario: normals (incl. LDAP/URL traffic filling the cache
        and the connection) -> purge -> ``fillers`` static requests
        (the propagation distance) -> server-status (the failure)."""
        if fillers is None:
            fillers = self.DEFAULT_FILLERS
        rng = DeterministicRNG(seed)
        wl = Workload(tokens=[])

        def add(req: List[int], trigger: bool = False) -> None:
            wl.boundaries.append(len(wl.tokens))
            if trigger:
                wl.trigger_positions.append(len(wl.tokens))
            wl.tokens.extend(req)

        def normals(n: int) -> None:
            for _ in range(n):
                add(self.normal_request(rng))

        normals(normal_before)
        add([2, 3])                      # make sure conn holds nodes
        add([3, 5])
        for t in range(triggers):
            add([8], trigger=True)       # purge: the bug-trigger point
            for _ in range(fillers):
                add([1, self.FILLER_SIZE])
            add([9])                     # the failing request
            normals(normal_between if t < triggers - 1 else normal_after)
        if shutdown:
            add(self.shutdown_request())
        return wl


UIR_SOURCE = """
// apache-uir: injected uninitialized read in a subrequest status

int server_stats = 0;
int subreq_count = 0;

int checksum(int p, int n) {
    int s = 0;
    int i = 0;
    while (i < n) {
        s = s + load1(p + i);
        i = i + 1;
    }
    return s;
}

int handle_static(int size) {
    int buf = malloc(128);
    memset(buf, 65, 128);
    int s = checksum(buf, 128);
    free(buf);
    store(server_stats, load(server_stats) + 1);
    output(size);
    return s;
}

int scratch_work(int n) {
    // auth-module scratch: leaves garbage (incl. a bogus pointer) in
    // chunks that the subrequest status struct will reuse
    int i = 0;
    while (i < n) {
        int sc = malloc(56);
        store(sc, 5);                 // nonzero where flags will live
        store(sc, 8, 12345);          // bogus pointer value
        store(sc, 16, i);
        free(sc);
        i = i + 1;
    }
    output(n);
    return 0;
}

int run_subrequest(int kind) {
    int st = malloc(56);
    if (kind == 1) {
        store(st, 0);                 // flags initialized on this path
        store(st, 8, server_stats);
    }
    // BUG (injected): kind==2 path forgets to initialize flags/ptr
    store(st, 16, kind);
    if (load(st) != 0) {              // uninitialized read of flags
        int p = load(st, 8);          // uninitialized read of ptr
        store(p, load(p) + 1);
    }
    subreq_count = subreq_count + 1;
    free(st);
    output(16);
    return 0;
}

int main() {
    server_stats = malloc(64);
    store(server_stats, 0);
    while (1) {
        int op = input();
        if (op == 0) { halt(); }
        if (op == 1) { int size = input(); handle_static(size); }
        if (op == 4) { int kind = input(); run_subrequest(kind); }
        if (op == 5) { int n = input(); scratch_work(n); }
    }
}
"""


class ApacheUirApp(App):
    SOURCE = UIR_SOURCE
    INFO = AppInfo(
        name="apache-uir",
        paper_version="2.0.51",
        bug_description="uninitialized read (injected)",
        paper_loc="263K",
        description="web server",
    )
    BUG_TYPES = (BugType.UNINIT_READ,)
    EXPECTED_PATCH_SITES = 1
    REQUEST_COST_HINT = 700

    def normal_request(self, rng: DeterministicRNG) -> List[int]:
        roll = rng.random()
        if roll < 0.7:
            return [1, rng.randint(64, 400)]
        return [4, 1]

    def trigger_request(self) -> List[int]:
        # scratch leaves garbage; the kind==2 subrequest reuses it and
        # reads the uninitialized flags/pointer
        return [5, 3, 4, 2]


DPW_SOURCE = """
// apache-dpw: injected dangling pointer write through a timeout entry

int server_stats = 0;
int timers = 0;        // current timeout entry (may be stale!)
int routes = 0;        // current route entry

int handle_static(int size) {
    int buf = malloc(128);
    memset(buf, 65, 128);
    free(buf);
    store(server_stats, load(server_stats) + 1);
    output(size);
    return 0;
}

int conn_open() {
    // a new connection installs a fresh timeout entry; old entries are
    // only released by conn_close (the injected bug lives there)
    int e = malloc(36);
    store(e, 0);                      // [0] = tick count
    store(e, 8, 1);                   // [8] = generation
    timers = e;
    output(8);
    return 0;
}

int conn_close() {
    if (timers != 0) {
        free(timers);                 // BUG (injected): entry freed but
                                      // left on the timer list
    }
    output(8);
    return 0;
}

int route_update(int id) {
    int r = malloc(36);
    store(r, server_stats);           // [0] = pointer the server uses
    store(r, 8, id);
    if (routes != 0) {
        free(routes);
    }
    routes = r;
    output(8);
    return 0;
}

int timer_tick() {
    int e = timers;
    if (e != 0) {
        // count := generation + 1; after conn_close this WRITES through
        // a stale pointer, depositing a small integer over whatever
        // object reused the chunk
        store(e, load(e, 8) + 1);
    }
    output(4);
    return 0;
}

int route_use() {
    int r = routes;
    if (r != 0) {
        int sp = load(r);             // smashed by the dangling write
        store(sp, load(sp) + 1);
    }
    output(4);
    return 0;
}

int main() {
    server_stats = malloc(64);
    store(server_stats, 0);
    while (1) {
        int op = input();
        if (op == 0) { halt(); }
        if (op == 1) { int size = input(); handle_static(size); }
        if (op == 2) { conn_open(); }
        if (op == 3) { conn_close(); }
        if (op == 4) { int id = input(); route_update(id); }
        if (op == 5) { timer_tick(); }
        if (op == 6) { route_use(); }
    }
}
"""


class ApacheDpwApp(App):
    SOURCE = DPW_SOURCE
    INFO = AppInfo(
        name="apache-dpw",
        paper_version="2.0.51",
        bug_description="dangling pointer write (injected)",
        paper_loc="263K",
        description="web server",
    )
    BUG_TYPES = (BugType.DANGLING_WRITE,)
    EXPECTED_PATCH_SITES = 1
    REQUEST_COST_HINT = 400

    def normal_request(self, rng: DeterministicRNG) -> List[int]:
        roll = rng.random()
        if roll < 0.5:
            return [1, rng.randint(64, 400)]
        if roll < 0.7:
            return [2, 5]            # open + tick: entry is live
        if roll < 0.9:
            return [4, rng.randint(1, 99), 6]
        return [5]

    def trigger_request(self) -> List[int]:
        # close frees the entry but leaves it listed; the next route
        # allocation reuses the chunk; the tick then writes through the
        # stale pointer, smashing the route; route_use crashes.
        return [2,           # open (fresh entry)
                3,           # close: free, entry stays on the list
                4, 7,        # route reuses the freed chunk
                5,           # dangling write smashes route[0]
                6]           # route_use dereferences the damage
