"""BC 1.06 -- two buffer overflows, three patched call-sites.

The real bugs (paper Table 2/3): bc 1.06 has the well-known
``more_arrays()`` off-by-one -- growing the array storage copies one
element too many -- plus a second overflow in number-to-string
formatting.  The paper's First-Aid run patches *three* allocation
call-sites: ``more_arrays`` is reached from two different callers
(statement execution and function definition), so its buffer gets two
distinct multi-level call-sites, and the format buffer adds the third.

The model: the grown array buffer overflows into the symbol-table
object, the format buffer overflows into the output-state object; both
victims hold pointers dereferenced by ``flush_line``, so the calculator
crashes after a crafted script line.  One trigger line exercises both
callers of ``more_arrays`` and the formatter before any victim pointer
is used, so all three overflows are inside the failure window.

Request protocol (one "script line" per request):

* ``1 <a> <b>`` -- arithmetic (safe)
* ``2 <idx> <val>`` -- array assignment; idx >= 6 grows storage (bug)
* ``3 <idx>`` -- function definition with array param; idx >= 6 grows
  storage via the second caller (bug)
* ``4 <val>`` -- print val; huge values overflow the format buffer
* ``5`` -- flush output (dereferences the victim pointers)
* ``0`` -- shutdown
"""

from __future__ import annotations

from typing import List

from repro.apps.base import App, AppInfo
from repro.core.bugtypes import BugType
from repro.util.rng import DeterministicRNG

SOURCE = """
// bc: calculator with the more_arrays off-by-one and a format overflow

int symtab = 0;       // [0]=ptr to globals block, [8]=entries
int outstate = 0;     // [0]=ptr to line buffer, [8]=column
int globals_blk = 0;
int line_buf = 0;
int arrays = 0;       // current array storage (grown by more_arrays)
int acc = 0;

int more_arrays(int count) {
    // BUG (bc 1.06): storage for `count` elements but the copy loop
    // runs to count+2 ("v_count+1" in the original, amplified by the
    // 8-byte element size here).
    int store_new = malloc(count * 8);
    int i = 0;
    while (i < count + 3) {
        store(store_new + i * 8, 11111);
        i = i + 1;
    }
    if (arrays != 0) {
        free(arrays);
    }
    arrays = store_new;
    return store_new;
}

int fmt_number(int val) {
    // BUG 2: 32-byte digit buffer; digit count is derived from the
    // value's magnitude without a bound.
    int digits = val / 100;
    if (digits < 4) {
        digits = 4;
    }
    int fbuf = malloc(32);
    int i = 0;
    while (i < digits) {
        store1(fbuf + i, 48 + (i % 10));
        i = i + 1;
    }
    int first = load1(fbuf);
    free(fbuf);
    return first;
}

int exec_arith(int a, int b) {
    acc = a * b + a - b;
    output(1);
    return acc;
}

int exec_array_assign(int idx, int val) {
    if (idx >= 6) {
        more_arrays(6);            // caller 1 of the buggy grower
    }
    store(arrays, (idx % 6) * 8, val);
    output(1);
    return 0;
}

int exec_func_define(int idx) {
    if (idx >= 6) {
        more_arrays(6);            // caller 2 of the buggy grower
    }
    store(symtab, 8, load(symtab, 8) + 1);
    output(1);
    return 0;
}

int exec_print(int val) {
    fmt_number(val);
    store(outstate, 8, load(outstate, 8) + 1);
    output(1);
    return 0;
}

int flush_line() {
    int g = load(symtab);          // smashed by more_arrays overflow
    store(g, load(g) + 1);
    int lb = load(outstate);       // smashed by fmt_number overflow
    store(lb, load(lb) + 1);
    output(1);
    return 0;
}

int main() {
    int hole_a = malloc(48);       // hole below symtab (64-chunk)
    symtab = malloc(48);
    int hole_b = malloc(32);       // hole below outstate (48-chunk)
    outstate = malloc(48);
    globals_blk = malloc(64);
    line_buf = malloc(64);
    store(globals_blk, 0);
    store(line_buf, 0);
    store(symtab, globals_blk);
    store(symtab, 8, 0);
    store(outstate, line_buf);
    store(outstate, 8, 0);
    arrays = malloc(48);
    memset(arrays, 0, 48);
    free(hole_a);
    free(hole_b);
    while (1) {
        int op = input();
        if (op == 0) { halt(); }
        if (op == 1) { int a = input(); int b = input(); exec_arith(a, b); }
        if (op == 2) { int i = input(); int v = input(); exec_array_assign(i, v); }
        if (op == 3) { int i = input(); exec_func_define(i); }
        if (op == 4) { int v = input(); exec_print(v); }
        if (op == 5) { flush_line(); }
    }
}
"""


class BcApp(App):
    SOURCE = SOURCE
    INFO = AppInfo(
        name="bc",
        paper_version="1.06",
        bug_description="two buffer overflows",
        paper_loc="14K",
        description="calculator",
    )
    BUG_TYPES = (BugType.BUFFER_OVERFLOW,)
    EXPECTED_PATCH_SITES = 3
    REQUEST_COST_HINT = 250

    def normal_request(self, rng: DeterministicRNG) -> List[int]:
        roll = rng.random()
        if roll < 0.5:
            return [1, rng.randint(1, 999), rng.randint(1, 999)]
        if roll < 0.7:
            return [2, rng.randint(0, 5), rng.randint(1, 99)]
        if roll < 0.9:
            return [4, rng.randint(100, 2000)]   # <= 20 digits: safe
        return [5]

    def trigger_request(self) -> List[int]:
        # one script line hitting both more_arrays callers, the format
        # overflow, and then the flush that dereferences the victims
        return [2, 8, 42,      # grow via caller 1 (overflow into symtab)
                3, 9,          # grow via caller 2 (site 2)
                4, 5700,       # 57 digits overflow the 32-byte buffer
                5]             # flush dereferences the smashed pointers
