"""MiniC kernel generator: Profile -> Program.

The kernel builds a table of ``live_objects`` objects, then runs
``rounds`` steady-state rounds.  Each round:

1. **churn**: frees and reallocates ``churn_per_round`` objects
   (allocator + extension load -- Figure 6's 'allocator' bars);
2. **touch**: writes two words into ``touch_per_round`` objects at
   pseudo-random slots (dirty-page / COW load -- Table 7);
3. **compute**: a pure arithmetic loop (the non-memory baseline cost);
4. emits one OUT token (progress/throughput marker).

Slot selection uses a linear-congruential walk computed inside the
kernel so the program stays fully deterministic.
"""

from __future__ import annotations

from repro.lang import compile_program
from repro.vm.program import Program
from repro.workloads.profiles import Profile

_TEMPLATE = """
// {name}: synthetic kernel ({group}), profile-generated
int table = 0;
int acc = 0;

int main() {{
    int n = {n};
    int size = {size};
    table = malloc(n * 8);
    int i = 0;
    while (i < n) {{
        int obj = malloc(size);
        store(obj, i);
        store(obj + size - 8, i);
        store(table + i * 8, obj);
        i = i + 1;
    }}
    int r = 0;
    while (r < {rounds}) {{
        // churn phase
        int c = 0;
        while (c < {churn}) {{
            int idx = (r * 7919 + c * 104729) % n;
            int old = load(table + idx * 8);
            free(old);
            int fresh = malloc(size);
            store(fresh, r);
            store(fresh + size - 8, c);
            store(table + idx * 8, fresh);
            c = c + 1;
        }}
        // touch phase (dirties pages across the working set)
        int t = 0;
        while (t < {touch}) {{
            int idx = (r * 31 + t * 17) % n;
            int obj = load(table + idx * 8);
            store(obj, r + t);
            store(obj + (size / 2), t);
            t = t + 1;
        }}
        // compute phase
        int k = 0;
        while (k < {compute}) {{
            acc = acc * 3 + k;
            acc = acc % 1000003;
            k = k + 1;
        }}
        output(1);
        r = r + 1;
    }}
    halt();
}}
"""


def kernel_source(profile: Profile) -> str:
    return _TEMPLATE.format(
        name=profile.name, group=profile.group,
        n=profile.live_objects, size=max(profile.obj_size, 16),
        rounds=profile.rounds, churn=profile.churn_per_round,
        touch=profile.touch_per_round, compute=profile.compute_per_round)


def build_kernel(profile: Profile) -> Program:
    """Compile the kernel program for ``profile``."""
    return compile_program(kernel_source(profile), profile.name)
