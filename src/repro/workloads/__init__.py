"""Synthetic workloads for the overhead experiments.

The paper measures normal-run overhead (Figure 6) and space overheads
(Tables 6-7) on SPEC INT2000 plus four allocation-intensive programs
(cfrac, espresso, lindsay, p2c).  Those binaries and inputs are not
reproducible here; what the experiments actually depend on is each
benchmark's *memory profile* -- live heap size, object size
distribution, allocation/free rate, and per-interval page touch rate.
:mod:`repro.workloads.profiles` records those profiles (heap sizes
scaled 1/100 from Table 6, page rates shaped from Table 7) and
:mod:`repro.workloads.kernel` generates a MiniC kernel with exactly
that profile.
"""

from repro.workloads.profiles import (
    ALLOC_INTENSIVE,
    PROFILES,
    SPEC_INT2000,
    Profile,
)
from repro.workloads.kernel import build_kernel

__all__ = ["Profile", "PROFILES", "SPEC_INT2000", "ALLOC_INTENSIVE",
           "build_kernel"]
