"""Benchmark memory profiles.

Heap sizes are the paper's Table 6 "original heap" values scaled by
1/100 (the simulator works comfortably at that scale and every reported
quantity is a ratio).  Touch/churn/compute rates are shaped from the
paper's observations: SPEC programs with large working sets (vortex,
bzip2, mcf, gzip) dominate checkpoint traffic (Table 7); the
allocation-intensive quartet (cfrac, espresso, p2c) and twolf/perlbmk
have many small objects, which is where the 16-byte-per-object
allocator metadata shows up (Table 6); crafty/eon barely allocate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class Profile:
    """Memory behaviour of one benchmark."""

    name: str
    group: str              # "spec" | "alloc" | "app"
    live_objects: int       # steady-state object count
    obj_size: int           # bytes per object
    churn_per_round: int    # objects freed+reallocated each round
    touch_per_round: int    # objects written each round
    compute_per_round: int  # arithmetic loop iterations each round
    rounds: int             # steady-state rounds

    @property
    def heap_bytes(self) -> int:
        return self.live_objects * self.obj_size


def _p(name: str, group: str, n: int, size: int, churn: int, touch: int,
       compute: int, rounds: int) -> Profile:
    return Profile(name, group, n, size, churn, touch, compute, rounds)


#: SPEC INT2000 profiles (scaled).  Comments give the paper's original
#: heap (Table 6) and MB/checkpoint regime (Table 7) being modelled.
SPEC_INT2000: List[Profile] = [
    _p("164.gzip", "spec", 28, 65536, 1, 20, 500, 36),      # 180 MB, 4.6 MB/ck
    _p("175.vpr", "spec", 400, 512, 6, 60, 400, 40),        # 20 MB, 1.4 MB/ck
    _p("176.gcc", "spec", 1680, 512, 24, 80, 330, 36),      # 84 MB, 4.5 MB/ck
    _p("181.mcf", "spec", 950, 1024, 0, 110, 300, 40),      # 95 MB, 9.7 MB/ck
    _p("186.crafty", "spec", 17, 512, 0, 8, 850, 40),       # 0.86 MB, 0.9 MB/ck
    _p("197.parser", "spec", 1200, 256, 30, 90, 300, 40),   # 30 MB, 10.9 MB/ck
    _p("252.eon", "spec", 7, 512, 1, 2, 750, 40),           # 0.35 MB, 0.06 MB/ck
    _p("253.perlbmk", "spec", 2280, 256, 60, 60, 270, 36),  # 57 MB, 4.6 MB/ck
    _p("255.vortex", "spec", 1090, 1024, 12, 160, 240, 36), # 109 MB, 33 MB/ck
    _p("256.bzip2", "spec", 29, 65536, 1, 45, 400, 36),     # 185 MB, 16 MB/ck
    _p("300.twolf", "spec", 800, 40, 40, 50, 370, 40),      # 3.2 MB, 1.6 MB/ck
]

#: Allocation-intensive benchmarks (Berger 2000): tiny objects, very
#: high malloc/free rates -- the allocator-extension stress case.
ALLOC_INTENSIVE: List[Profile] = [
    _p("cfrac", "alloc", 128, 16, 220, 20, 100, 36),        # 93% metadata
    _p("espresso", "alloc", 300, 24, 150, 40, 130, 36),     # 30% metadata
    _p("lindsay", "alloc", 18, 1024, 2, 12, 500, 40),       # 0.2% metadata
    _p("p2c", "alloc", 400, 24, 130, 40, 130, 36),          # 55% metadata
]

PROFILES: Dict[str, Profile] = {
    p.name: p for p in SPEC_INT2000 + ALLOC_INTENSIVE}
