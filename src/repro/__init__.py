"""First-Aid reproduction: surviving and preventing memory management
bugs during production runs (Gao, Zhang, Tang & Qin, EuroSys 2009).

Public API tour
---------------

Run a (buggy) program under First-Aid::

    from repro import FirstAidRuntime, compile_program

    program = compile_program(minic_source, name="myapp")
    runtime = FirstAidRuntime(program, input_tokens=workload)
    session = runtime.run()
    for recovery in session.recoveries:
        print(recovery.report.render())

The seven applications from the paper's evaluation live in
:mod:`repro.apps`; the experiment harness that regenerates every table
and figure lives in :mod:`repro.bench`.
"""

from repro.core.bugtypes import BugType
from repro.core.diagnosis import Diagnosis, DiagnosticEngine, Verdict
from repro.core.patches import PatchPool, RuntimePatch
from repro.core.report import BugReport
from repro.core.runtime import (
    FirstAidConfig,
    FirstAidRuntime,
    RecoveryRecord,
    SessionResult,
)
from repro.core.validation import ValidationEngine, ValidationResult
from repro.errors import CompileError, ReproError, SimulatedFault
from repro.lang import compile_program
from repro.process import Process
from repro.util.callsite import CallSite
from repro.util.simclock import CostModel, SimClock

__version__ = "1.0.0"

__all__ = [
    "BugType",
    "Diagnosis",
    "DiagnosticEngine",
    "Verdict",
    "PatchPool",
    "RuntimePatch",
    "BugReport",
    "FirstAidConfig",
    "FirstAidRuntime",
    "RecoveryRecord",
    "SessionResult",
    "ValidationEngine",
    "ValidationResult",
    "CompileError",
    "ReproError",
    "SimulatedFault",
    "compile_program",
    "Process",
    "CallSite",
    "CostModel",
    "SimClock",
    "__version__",
]
