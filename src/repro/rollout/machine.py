"""Rollout stage vocabulary and deterministic canary assignment.

The staged-rollout subsystem (DESIGN.md §14) hinges on two small, pure
pieces that everything else -- the store's stage lattice, the
promotion controller, the runtime's adoption filter, the benches --
must agree on exactly:

* The **stage lattice**: ``staged < canary < validating < fleet_wide``.
  Stages only ever advance along this order (or terminate at
  ``rolled_back``), so concurrent controllers merging through the
  store's read-modify-write protocol converge: max-over-order is a
  join, never a conflict.
* **Canary assignment**: a process is a canary iff the SHA-256 bucket
  of its ``process_label`` falls below the configured fraction.  Pure
  function of the label -- no pids, no randomness, no wall clock -- so
  a serial fleet and a forked fleet (and a re-run next week) assign
  identically, which the byte-identity gates depend on.

This module must stay dependency-free (stdlib only): it is imported by
``repro.store.store`` during package init, below everything else in
the layer cake.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Tuple

#: Stage names, as stored in patch payloads (``rollout.stage``).
STAGED = "staged"
CANARY = "canary"
VALIDATING = "validating"
FLEET_WIDE = "fleet_wide"
ROLLED_BACK = "rolled_back"

#: Advancement lattice; merges take the max.  ``rolled_back`` is not a
#: position on the ladder but a terminal tombstone (the patch record
#: leaves the store entirely; see SharedPatchStore.rollback).
STAGE_ORDER = {STAGED: 0, CANARY: 1, VALIDATING: 2, FLEET_WIDE: 3}

#: Stages only a canary process may adopt.
CANARY_ONLY_STAGES = (STAGED, CANARY, VALIDATING)


def stage_of(payload: dict) -> str:
    """The rollout stage of one store patch payload.  A record with no
    ``rollout`` envelope predates (or opted out of) staged rollout and
    is treated as fleet-wide -- exactly the pre-rollout semantics, so
    a rollout-disabled fleet behaves byte-identically to one that
    never heard of stages."""
    rollout = payload.get("rollout")
    if not isinstance(rollout, dict):
        return FLEET_WIDE
    stage = str(rollout.get("stage", FLEET_WIDE))
    return stage if stage in STAGE_ORDER else FLEET_WIDE


def canary_bucket(process_label: str) -> float:
    """Deterministic bucket in [0, 1) for a fleet identity."""
    digest = hashlib.sha256(process_label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def is_canary(process_label: str, fraction: float) -> bool:
    """Whether this process belongs to the canary cohort.  Monotonic
    in ``fraction``: growing the cohort never evicts a member."""
    if fraction >= 1.0:
        return True
    if fraction <= 0.0:
        return False
    return canary_bucket(process_label) < fraction


def pick_labels(canaries: int, others: int, fraction: float,
                prefix: str = "node") -> Tuple[List[str], List[str]]:
    """Scan ``prefix-0``, ``prefix-1``, ... until ``canaries`` canary
    labels and ``others`` non-canary labels are found.  Pure, so the
    fleet benches (serial and forked) cast identical fleets."""
    canary_labels: List[str] = []
    other_labels: List[str] = []
    i = 0
    while len(canary_labels) < canaries or len(other_labels) < others:
        label = f"{prefix}-{i}"
        i += 1
        if is_canary(label, fraction):
            if len(canary_labels) < canaries:
                canary_labels.append(label)
        elif len(other_labels) < others:
            other_labels.append(label)
        if i > 100_000:
            raise ValueError(
                f"could not cast {canaries} canaries / {others} others "
                f"at fraction {fraction}")
    return canary_labels, other_labels


@dataclass
class RolloutConfig:
    """Promotion gates, all in simulated time (determinism)."""

    #: Fraction of the fleet (by label hash) that adopts pre-fleet-wide
    #: patches.  The paper-adjacent default: a quarter of the fleet
    #: takes the risk, three quarters stay shielded.
    canary_fraction: float = 0.25
    #: Minimum canary exposure (max over the cohort of beacon time
    #: minus adoption time) before CANARY may advance to VALIDATING.
    min_observe_ns: int = 200_000_000
    #: Highest tolerated post-adoption failure rate over the canary
    #: cohort (failures attributed after the patch was live, divided
    #: by cohort size).  0.0: any post-adopt failure rolls back.
    max_failure_rate: float = 0.0
    #: Latency-tail ceiling: the canary cohort's merged request-latency
    #: p99 must stay at or below this for VALIDATING -> FLEET_WIDE.
    max_latency_p99_ns: int = 10_000_000_000
    #: Canary evidence floor: STAGED waits until at least this many
    #: cohort members report the patch.
    min_canary_processes: int = 1
