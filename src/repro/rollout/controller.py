"""The promotion controller: health evidence in, stage decisions out.

:func:`evaluate` is the whole policy, and it is a *pure function* of
``(store state, health beacons, gates)``: no clocks, no randomness, no
I/O.  Beacons feed in as parsed :class:`~repro.obs.health.HealthBeacon`
objects; the cohort for each patch is rebuilt in sorted order, so the
decision list is byte-identical regardless of beacon arrival order and
identical between serial and forked fleets -- the property the rollout
bench gates on.

Per patch, the cascade walks the lattice as far as the evidence allows
in one evaluation (a patch can go STAGED -> CANARY -> VALIDATING ->
FLEET_WIDE in a single pass when the cohort already proved it out):

* ``STAGED -> CANARY`` once at least ``min_canary_processes`` cohort
  members report the patch in their beacons (it is actually live
  somewhere, not just published).
* ``CANARY -> VALIDATING`` once the longest cohort exposure (beacon
  time minus adoption time, sim-time both) clears ``min_observe_ns``.
* ``VALIDATING -> FLEET_WIDE`` when the cohort's post-adoption failure
  rate is at or under ``max_failure_rate`` AND the merged canary
  request-latency p99 is at or under ``max_latency_p99_ns``.
* ``-> ROLLED_BACK`` from any stage, immediately, when a cohort member
  died or gave up, or the failure-rate gate is already blown --
  a patch that hurts its canaries must never graduate.

The cohort counts canary processes plus any process that *diagnosed*
the patch itself (the origin earns membership by evidence: it ran the
patch longest, whatever its hash bucket says).

:class:`PromotionController` binds the pure policy to a store and a
health channel: ``tick()`` evaluates and applies, promotions via the
store's advance-only stage merge, rollbacks via tombstone + rollback
record.  Applying is idempotent -- a second tick over the same
evidence decides nothing new.

Module-level imports stay stdlib-plus-:mod:`repro.rollout.machine`
only: ``repro.store.store`` imports this package during init, and the
health plane sits above the store in the layer cake (lazy imports
below break the cycle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.rollout.machine import (
    CANARY,
    FLEET_WIDE,
    ROLLED_BACK,
    STAGED,
    VALIDATING,
    RolloutConfig,
    stage_of,
)


@dataclass
class RolloutDecision:
    """One stage transition the evidence justifies."""

    key: str
    from_stage: str
    to_stage: str
    reason: str

    def render(self) -> str:
        return (f"{self.key}: {self.from_stage} -> {self.to_stage}"
                f" ({self.reason})")


def _cohort(key: str, beacons) -> List[Tuple[object, dict]]:
    """The evidence cohort for one patch: canary members plus
    diagnosing origins, sorted by process id."""
    rows = []
    for beacon in sorted(beacons, key=lambda b: b.process_id):
        entry = beacon.patches.get(key)
        if entry is None:
            continue
        if getattr(beacon, "canary", False) \
                or int(entry.get("diagnosed", 0)) > 0:
            rows.append((beacon, entry))
    return rows


def _unhealthy(cohort, cfg: RolloutConfig) -> Optional[str]:
    """A rollback reason when the cohort is hurting, else None."""
    for beacon, _ in cohort:
        if beacon.reason == "died" or beacon.gave_up > 0:
            return (f"canary {beacon.process_id} unhealthy "
                    f"(reason={beacon.reason}, "
                    f"gave_up={beacon.gave_up})")
    failures = sum(int(entry.get("post_adopt_failures", 0))
                   for _, entry in cohort)
    rate = failures / len(cohort) if cohort else 0.0
    if rate > cfg.max_failure_rate:
        return (f"post-adopt failure rate {rate:.4f} over "
                f"{len(cohort)} canaries exceeds "
                f"{cfg.max_failure_rate:.4f}")
    return None


def _latency_p99(cohort) -> int:
    """Merged request-latency p99 over the cohort (sim-ns)."""
    from repro.obs.health import LATENCY_BOUNDS
    from repro.obs.metrics import Histogram
    merged = Histogram("latency_ns", LATENCY_BOUNDS)
    for beacon, _ in cohort:
        try:
            merged.merge_from(
                Histogram.from_snapshot("latency_ns",
                                        beacon.latency_ns))
        except ValueError:
            continue  # a scrambled histogram is not evidence
    return int(merged.quantile(0.99))


def _step(stage: str, cohort, cfg: RolloutConfig
          ) -> Optional[Tuple[str, str]]:
    """One lattice step (next stage, reason), or None to hold."""
    bad = _unhealthy(cohort, cfg)
    if stage == STAGED:
        if len(cohort) >= cfg.min_canary_processes:
            return CANARY, (f"{len(cohort)} canary process(es) "
                            f"adopted")
        return None
    if bad is not None:
        return ROLLED_BACK, bad
    if stage == CANARY:
        exposure = max(
            (beacon.time_ns
             - int(entry.get("adopted_ns", beacon.time_ns))
             for beacon, entry in cohort), default=0)
        if exposure >= cfg.min_observe_ns:
            return VALIDATING, (f"observed {exposure}ns >= "
                                f"{cfg.min_observe_ns}ns")
        return None
    if stage == VALIDATING:
        p99 = _latency_p99(cohort)
        if p99 > cfg.max_latency_p99_ns:
            return ROLLED_BACK, (f"canary latency p99 {p99}ns "
                                 f"exceeds {cfg.max_latency_p99_ns}ns")
        return FLEET_WIDE, (f"gates clear (latency p99 {p99}ns, "
                            f"{len(cohort)} canaries healthy)")
    return None


def evaluate(state, beacons, cfg: RolloutConfig
             ) -> List[RolloutDecision]:
    """All transitions the current evidence justifies, in sorted
    patch-key order, cascading each patch as far as it can go."""
    decisions: List[RolloutDecision] = []
    for key in sorted(state.patches):
        stage = stage_of(state.patches[key])
        if stage == FLEET_WIDE:
            continue
        cohort = _cohort(key, beacons)
        while True:
            step = _step(stage, cohort, cfg)
            if step is None:
                break
            to_stage, reason = step
            decisions.append(RolloutDecision(
                key=key, from_stage=stage, to_stage=to_stage,
                reason=reason))
            stage = to_stage
            if stage in (FLEET_WIDE, ROLLED_BACK):
                break
    return decisions


class PromotionController:
    """Evaluate-and-apply against a live store + health channel."""

    def __init__(self, store, channel, cfg: Optional[RolloutConfig]
                 = None, events=None):
        self.store = store
        self.channel = channel
        self.cfg = cfg or RolloutConfig()
        self.events = events
        #: Diagnostics for the bench and tests.
        self.promotions = 0
        self.rollbacks = 0
        self.beacon_errors = 0

    def _beacons(self) -> list:
        from repro.obs.health import HealthBeacon
        beacons = []
        for _, payload in sorted(
                self.channel.load().live_beacons().items()):
            try:
                beacons.append(HealthBeacon.from_json(payload))
            except ValueError:
                self.beacon_errors += 1
        return beacons

    def decisions(self) -> List[RolloutDecision]:
        """Pure evaluation over the store + channel as they stand."""
        return evaluate(self.store.load(), self._beacons(), self.cfg)

    def tick(self, time_ns: int = 0) -> List[RolloutDecision]:
        """Evaluate once and apply every decision.  ``time_ns`` is the
        caller's simulated clock, stamped onto stage/rollback records
        (never a wall clock -- determinism).  Idempotent: applied
        decisions dissolve their own preconditions."""
        decided = self.decisions()
        for decision in decided:
            if decision.to_stage == ROLLED_BACK:
                self.store.rollback([decision.key], time_ns=time_ns,
                                    reason=decision.reason)
                self.rollbacks += 1
                if self.events is not None:
                    self.events.emit(time_ns, "rollout.rolled_back",
                                     key=decision.key,
                                     reason=decision.reason)
            else:
                self.store.set_stage(decision.key, decision.to_stage,
                                     time_ns=time_ns)
                self.promotions += 1
                if self.events is not None:
                    self.events.emit(time_ns, "rollout.promoted",
                                     key=decision.key,
                                     stage=decision.to_stage)
        return decided
