"""Health-gated staged patch rollout (DESIGN.md §14).

Fleet-wide prevention (DESIGN.md §9) pushes every patch to every
process instantly; production systems canary first.  This package
layers a deterministic rollout state machine over the shared patch
store: patches enter STAGED, a hash-bucketed canary fraction of the
fleet adopts them, health beacons report the canaries' experience back
through the existing channel, and the promotion controller advances
patches along ``staged -> canary -> validating -> fleet_wide`` when
the evidence clears configurable gates -- or retracts them with a
``rolled_back`` tombstone the moment a canary is hurt.  Non-canary
processes never absorb a pre-fleet-wide patch, and a rolled-back patch
is never re-adopted mid-session.
"""

from repro.rollout.controller import (
    PromotionController,
    RolloutDecision,
    evaluate,
)
from repro.rollout.machine import (
    CANARY,
    CANARY_ONLY_STAGES,
    FLEET_WIDE,
    ROLLED_BACK,
    STAGE_ORDER,
    STAGED,
    VALIDATING,
    RolloutConfig,
    canary_bucket,
    is_canary,
    pick_labels,
    stage_of,
)

__all__ = [
    "CANARY",
    "CANARY_ONLY_STAGES",
    "FLEET_WIDE",
    "ROLLED_BACK",
    "STAGED",
    "STAGE_ORDER",
    "VALIDATING",
    "PromotionController",
    "RolloutConfig",
    "RolloutDecision",
    "canary_bucket",
    "evaluate",
    "is_canary",
    "pick_labels",
    "stage_of",
]
