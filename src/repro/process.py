"""A simulated process: program + heap + allocator extension + machine.

Everything First-Aid operates on is a :class:`Process`.  It bundles the
substrate pieces, provides whole-process snapshot/restore (what a
checkpoint contains), and can be cloned so the validation engine can
work on "a snapshot of the program ... in parallel" (paper Section 2)
without disturbing the recovering process.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import CheckpointError
from repro.heap.allocator import LeaAllocator
from repro.heap.base import DEFAULT_LIMIT, Memory
from repro.heap.extension import AllocatorExtension, ChangePolicy, ExtensionMode
from repro.heap.quarantine import DEFAULT_THRESHOLD
from repro.heap.random_alloc import RandomizedLeaAllocator
from repro.util.rng import DeterministicRNG
from repro.util.simclock import CostModel, SimClock
from repro.vm.compile import TIER_REFERENCE
from repro.vm.io import OutputLog, ReplayableInput
from repro.vm.machine import Machine, RunResult
from repro.vm.program import Program
from repro.vm.state import MachineSnapshot


class ProcessSnapshot:
    """Full-state snapshot of a process (one checkpoint's payload).

    ``memory`` may be None for a *meta* snapshot (machine + allocator +
    extension only); the incremental checkpoint layer stores heap pages
    separately and composes them back on materialization.
    """

    __slots__ = ("machine", "memory", "allocator", "extension",
                 "instr_count", "randomized")

    def __init__(self, machine: MachineSnapshot, memory: Optional[tuple],
                 allocator: tuple, extension: tuple, randomized: bool):
        self.machine = machine
        self.memory = memory
        self.allocator = allocator
        self.extension = extension
        self.instr_count = machine.instr_count
        self.randomized = randomized


class Process:
    """One simulated process under First-Aid's control."""

    def __init__(self, program: Program,
                 input_tokens: Optional[Iterable[int]] = None,
                 input_stream: Optional[ReplayableInput] = None,
                 mode: ExtensionMode = ExtensionMode.NORMAL,
                 policy: Optional[ChangePolicy] = None,
                 clock: Optional[SimClock] = None,
                 costs: Optional[CostModel] = None,
                 heap_limit: int = DEFAULT_LIMIT,
                 quarantine_threshold: int = DEFAULT_THRESHOLD,
                 entropy_seed: int = 1,
                 output: Optional[OutputLog] = None,
                 vm_tier: str = TIER_REFERENCE,
                 sampling_rate: int = 0):
        self.program = program
        self.costs = costs or CostModel()
        self.clock = clock or SimClock()
        self.mem = Memory(limit=heap_limit)
        self.allocator: LeaAllocator = LeaAllocator(self.mem)
        self.extension = AllocatorExtension(
            self.mem, self.allocator, mode, policy, self.clock, self.costs,
            quarantine_threshold)
        self.sampling_rate = sampling_rate
        if sampling_rate > 0:
            # Sampled always-on detection: every ~1/rate allocations is
            # promoted to a guarded allocation, deterministically via
            # the process entropy salt.  Rate 0 (the default) attaches
            # nothing and leaves every code path byte-identical.
            from repro.sampling import SampleSelector
            self.extension.attach_sampler(
                SampleSelector(sampling_rate, entropy_seed))
        if input_stream is not None:
            self.input = input_stream
        else:
            self.input = ReplayableInput(input_tokens or ())
        self.output = output if output is not None else OutputLog()
        self.machine = Machine(program, self.mem, self.extension,
                               self.input, self.output, self.clock,
                               self.costs, entropy_seed, tier=vm_tier)

    # ------------------------------------------------------------------
    # convenience passthroughs
    # ------------------------------------------------------------------

    @property
    def instr_count(self) -> int:
        return self.machine.instr_count

    def run(self, stop_at: Optional[int] = None,
            max_steps: Optional[int] = None) -> RunResult:
        return self.machine.run(stop_at=stop_at, max_steps=max_steps)

    def set_mode(self, mode: ExtensionMode,
                 policy: Optional[ChangePolicy] = None) -> None:
        self.extension.mode = mode
        if policy is not None:
            self.extension.policy = policy

    def set_costs(self, costs: CostModel) -> None:
        """Swap the cost model for all components (e.g. replay costs
        during diagnostic re-execution)."""
        self.costs = costs
        self.machine.costs = costs
        self.extension.costs = costs

    def attach_telemetry(self, telemetry) -> None:
        """Wire a :class:`~repro.obs.telemetry.Telemetry` facade into
        this process: VM counters on the machine, heap instruments and
        the flight-recorder feed on the extension, and the tracer's
        clock.  A disabled facade attaches nothing."""
        if telemetry is None:
            return
        telemetry.bind_clock(self.clock)
        if telemetry.enabled:
            self.machine.attach_metrics(telemetry.metrics)
            self.extension.attach_telemetry(telemetry)

    def reseed_entropy(self, seed: int) -> None:
        """Fresh entropy for RAND -- each execution *attempt* gets its
        own environment nondeterminism, which is never checkpointed."""
        self.machine.entropy = DeterministicRNG(seed)

    # ------------------------------------------------------------------
    # snapshot / restore / clone
    # ------------------------------------------------------------------

    def snapshot(self) -> ProcessSnapshot:
        return ProcessSnapshot(
            machine=self.machine.snapshot(),
            memory=self.mem.snapshot(),
            allocator=self.allocator.snapshot(),
            extension=self.extension.snapshot(),
            randomized=isinstance(self.allocator, RandomizedLeaAllocator),
        )

    def snapshot_meta(self) -> ProcessSnapshot:
        """Everything except heap contents (``memory=None``).  The
        checkpoint manager captures heap pages separately at page
        granularity, so a checkpoint costs O(dirty pages) instead of
        O(heap)."""
        return ProcessSnapshot(
            machine=self.machine.snapshot(),
            memory=None,
            allocator=self.allocator.snapshot(),
            extension=self.extension.snapshot(),
            randomized=isinstance(self.allocator, RandomizedLeaAllocator),
        )

    def restore(self, snap: ProcessSnapshot) -> None:
        if snap.memory is not None:
            self.mem.restore(snap.memory)
        if snap.randomized:
            if not isinstance(self.allocator, RandomizedLeaAllocator):
                raise CheckpointError(
                    "snapshot was taken under a randomized allocator")
            self.allocator.restore(snap.allocator)
        elif isinstance(self.allocator, RandomizedLeaAllocator):
            # Plain snapshot into a randomized process: adopt the
            # snapshot's allocator structures, keep the RNG stream.
            self.allocator.restore((snap.allocator,
                                    self.allocator.rng.getstate()))
        else:
            self.allocator.restore(snap.allocator)
        self.extension.restore(snap.extension)
        self.machine.restore(snap.machine)

    def use_randomized_allocator(self, seed: int) -> None:
        """Replace the allocator with a randomized one carrying over the
        current allocator state (validation mode)."""
        base_state = (self.allocator.snapshot()
                      if not isinstance(self.allocator,
                                        RandomizedLeaAllocator)
                      else self.allocator.snapshot()[0])
        randomized = RandomizedLeaAllocator(self.mem, seed)
        randomized.restore((base_state, randomized.rng.getstate()))
        self.allocator = randomized
        self.extension.allocator = randomized

    def clone(self, snap: Optional[ProcessSnapshot] = None) -> "Process":
        """An independent process with the same program and a copy of
        the input journal, restored to ``snap`` (or to this process's
        current state).  Used by the validation engine."""
        snap = snap or self.snapshot()
        journal = self.input.journal_slice(0)
        clone = Process(self.program,
                        mode=self.extension.mode,
                        policy=self.extension.policy.frozen_copy(),
                        costs=self.costs,
                        heap_limit=self.mem.limit,
                        quarantine_threshold=self.extension
                        .quarantine.threshold_bytes,
                        vm_tier=self.machine.tier)
        if snap.randomized:
            clone.use_randomized_allocator(seed=1)
        # Bulk-load the journal into the clone's input so the cursor in
        # the snapshot points at recorded tokens, and carry over the
        # output history up to the snapshot point.
        clone.input.preload_journal(journal)
        clone.output.preload(
            self.output.entries()[:snap.machine.output_length])
        clone.restore(snap)
        return clone
