"""Generic crash-safe shared-file channel machinery.

The patch store (DESIGN.md §9) grew a careful protocol for sharing one
JSON file between mutually distrusting processes: sidecar file locking
with stale-lock breaking, read-modify-write merges under the lock, a
generation counter for cheap freshness probes, atomic
tmp+fsync+replace commits mirrored to a ``.bak``, and a
primary→backup→empty load ladder that quarantines corruption instead
of raising.  The fleet health plane (DESIGN.md §12) needs the exact
same machinery for a different payload, so the machinery lives here
and each channel supplies only its state type and merge semantics:

* :meth:`SharedStateChannel._empty_state` -- the state when nothing
  was ever committed.
* :meth:`SharedStateChannel._parse` -- payload dict to state; must
  raise ``ValueError`` (or KeyError/TypeError) on anything malformed,
  which the reader turns into quarantine, never a crash.

State objects must expose ``program`` (str), ``generation`` (int,
mutable), and ``to_json()``.  Fault injection rides along: the shared
kinds ``torn_write`` / ``stale_lock`` / ``corrupt``
(:mod:`repro.store.faults`) are consulted at the same points for every
channel, so the chaos harness exercises the health plane with the
identical vocabulary that hardened the patch store.

Two freshness contracts matter fleet-wide:

* **No-op mutations do not commit.**  :meth:`SharedStateChannel._mutate`
  serializes the state before and after the mutator runs; when the
  merged state is byte-identical (e.g. a session-exit sync
  republishing trigger counts the store already holds) the commit --
  and the generation bump -- is skipped entirely, so idle peers'
  checkpoint-boundary refreshes see an unchanged generation and do no
  work.  The only exception: a state loaded from the ``.bak`` fallback
  always commits, because the commit is what repairs the primary.
* **``generation()`` is genuinely cheap.**  The probe caches the last
  loaded generation against the primary file's ``(st_mtime_ns,
  st_size)`` signature; an unchanged file costs one ``stat`` and zero
  JSON parsing.  Any commit (ours via the cache invalidation in
  :meth:`_commit`, a peer's via the atomic-replace changing the
  signature) forces the next probe to re-load.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Optional

from repro.store.faults import FaultPlan, TornWriteCrash
from repro.store.locking import DEFAULT_STALE_AFTER, FileLock


class SharedStateChannel:
    """One crash-safe shared JSON file: lock, merge, commit, recover.

    ``program_name`` of None disables the ownership check (a read-only
    consumer, e.g. the fleet CLI, that renders whatever program the
    file belongs to)."""

    def __init__(self, path: str, program_name: Optional[str],
                 lock_timeout: float = 5.0,
                 stale_lock_after: float = DEFAULT_STALE_AFTER,
                 faults: Optional[FaultPlan] = None):
        self.path = path
        self.backup_path = path + ".bak"
        self.program_name = program_name
        self.faults = faults or FaultPlan()
        self.lock = FileLock(path + ".lock", timeout=lock_timeout,
                             stale_after=stale_lock_after)
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        #: Diagnostics for tests, benchmarks, and telemetry.
        self.commits = 0
        self.quarantined = 0
        self.recovered_from_backup = 0
        self.noop_mutations = 0
        self.mismatches = 0
        #: Optional EventLog; ownership mismatches surface here as
        #: ``store.error`` events (the runtime attaches its log).
        self.events = None
        #: generation() cache: primary-file (st_mtime_ns, st_size)
        #: signature -> generation, invalidated by our own commits and
        #: by any peer commit (atomic replace changes the signature).
        self._gen_sig = None
        self._gen_value = 0
        #: Which source the last load() resolved from:
        #: "primary" | "backup" | "empty".
        self._loaded_from = "empty"

    # ------------------------------------------------------------------
    # channel-specific hooks
    # ------------------------------------------------------------------

    def _empty_state(self):
        raise NotImplementedError

    def _parse(self, payload: dict):
        raise NotImplementedError

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def _quarantine(self, path: str) -> None:
        """Move an unreadable file aside (never delete: the bytes are
        evidence) and count it.  The slot search is unbounded --
        capping it would silently overwrite the last slot once
        enough corruption accumulated, destroying exactly the
        evidence quarantine exists to keep."""
        n = 0
        while True:
            target = f"{path}.quarantined.{n}"
            if not os.path.exists(target):
                break
            n += 1
        try:
            os.replace(path, target)
            self.quarantined += 1
        except FileNotFoundError:
            pass  # a concurrent reader already quarantined it

    def _read_candidate(self, path: str):
        """Parse one file; None when missing, quarantined when
        corrupt."""
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return None
        try:
            state = self._parse(json.loads(raw.decode("utf-8")))
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            self._quarantine(path)
            return None
        if self.program_name is not None \
                and state.program != self.program_name:
            # Ownership mismatch is a corruption flavor, not a crash:
            # the load() contract says corruption is quarantined, never
            # raised, and the recovery path upstream depends on it.
            # The bytes are preserved as evidence and the mismatch is
            # surfaced as a store.error event for the operator.
            self.mismatches += 1
            if self.events is not None:
                self.events.emit(
                    0, "store.error", op="ownership", path=path,
                    error=(f"shared file belongs to {state.program!r},"
                           f" not {self.program_name!r}; quarantined"))
            self._quarantine(path)
            return None
        return state

    def load(self):
        """The current state: primary, else backup, else empty.
        Lock-free (commits are atomic renames, so reads are always
        consistent); corruption -- including a program-ownership
        mismatch -- is quarantined, never raised."""
        if self.faults.take("corrupt"):
            FaultPlan.corrupt_file(self.path)
        state = self._read_candidate(self.path)
        if state is not None:
            self._loaded_from = "primary"
            return state
        state = self._read_candidate(self.backup_path)
        if state is not None:
            self.recovered_from_backup += 1
            self._loaded_from = "backup"
            return state
        self._loaded_from = "empty"
        return self._empty_state()

    def generation(self) -> int:
        """Cheap freshness probe for periodic refresh: one ``stat``
        when the primary file is unchanged since the last probe, a
        full load only when the ``(st_mtime_ns, st_size)`` signature
        moved (or the primary is missing, so backup recovery and
        armed faults stay observable)."""
        try:
            st = os.stat(self.path)
            sig = (st.st_mtime_ns, st.st_size)
        except OSError:
            sig = None
        if sig is not None and sig == self._gen_sig:
            return self._gen_value
        gen = self.load().generation
        # A replace racing between the stat and the load self-heals:
        # the next probe re-stats, sees a newer signature, re-loads.
        if sig is not None and self._loaded_from == "primary":
            self._gen_sig = sig
            self._gen_value = gen
        else:
            self._gen_sig = None
        return gen

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def _write_atomic(self, path: str, payload: bytes) -> None:
        directory = os.path.dirname(os.path.abspath(path))
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def _commit(self, state) -> None:
        payload = json.dumps(state.to_json(), indent=2,
                             sort_keys=True).encode("utf-8")
        if self.faults.take("torn_write"):
            # Simulate a non-atomic writer dying mid-commit: torn bytes
            # at the primary path, the lock abandoned, the caller dead.
            FaultPlan.tear_file(self.path, payload)
            self.lock._abandon = True
            raise TornWriteCrash(f"injected torn write on {self.path}")
        self._write_atomic(self.path, payload)
        # Mirror to the backup only after the primary commit succeeded;
        # the backup therefore lags by at most one committed state.
        self._write_atomic(self.backup_path, payload)
        self.commits += 1
        self._gen_sig = None

    def _locked(self) -> FileLock:
        if self.faults.take("stale_lock"):
            FaultPlan.plant_stale_lock(self.lock.path)
        return self.lock

    def _mutate(self, mutator):
        """Read-modify-write under the lock; returns the (possibly
        already-committed) state.  When the mutator leaves the state
        byte-identical, the commit and the generation bump are skipped:
        no-op syncs must not churn every peer's refresh.  A state that
        was recovered from the backup commits unconditionally -- the
        commit is what repairs the missing/quarantined primary."""
        with self._locked():
            state = self.load()
            recovered = self._loaded_from == "backup"
            before = None
            if not recovered:
                before = json.dumps(state.to_json(), sort_keys=True)
            state = mutator(state)
            if before is not None \
                    and json.dumps(state.to_json(),
                                   sort_keys=True) == before:
                self.noop_mutations += 1
                return state
            state.generation += 1
            self._commit(state)
        return state
