"""Cross-process file locking for the shared patch store.

A lock is a sidecar file (``<store>.lock``) created with
``O_CREAT | O_EXCL`` -- atomic on every POSIX filesystem, including the
NFS mounts where ``fcntl`` locks are historically unreliable.  The lock
payload records the owner pid and acquisition time for diagnostics and
stale-lock detection.

Two failure modes are handled explicitly:

* **Contention**: acquisition retries with exponential backoff (plus a
  small pid-derived jitter so colliding processes desynchronise) until
  ``timeout`` elapses, then raises :class:`StoreLockTimeout`.
* **Stale locks**: a process that dies between acquire and release
  leaves the lock file behind forever.  A lock is considered stale when
  it is older than ``stale_after`` seconds, or immediately when its
  owner pid is provably dead on this host.  Stale locks are broken
  (unlinked) and acquisition retried; the unlink itself may race
  another breaker, which is fine -- exactly one ``O_CREAT | O_EXCL``
  winner follows.
"""

from __future__ import annotations

import errno
import json
import os
import time
from typing import Optional

from repro.errors import StoreLockTimeout

#: Locks older than this many seconds are presumed abandoned.
DEFAULT_STALE_AFTER = 10.0

#: First backoff sleep; doubles per retry, capped at BACKOFF_CAP.
BACKOFF_BASE = 0.002
BACKOFF_CAP = 0.05


def _pid_dead(pid: int) -> bool:
    """True only when ``pid`` provably does not exist on this host.
    Permission errors and weird pids count as alive (be conservative:
    breaking a live lock corrupts the merge protocol, tolerating a
    stale one only delays it)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return True
    except OSError:
        return False
    return False


class FileLock:
    """An exclusive advisory lock at ``path`` (use as a context
    manager).  Re-entrant acquisition is a caller bug and raises."""

    def __init__(self, path: str,
                 timeout: float = 5.0,
                 stale_after: float = DEFAULT_STALE_AFTER):
        self.path = path
        self.timeout = timeout
        self.stale_after = stale_after
        self._held = False
        #: Set by fault injection to simulate a holder that died: the
        #: context manager exits without releasing.
        self._abandon = False
        #: Diagnostics: how many times acquisition had to wait, and how
        #: many stale locks were broken.
        self.contentions = 0
        self.stale_broken = 0

    # ------------------------------------------------------------------

    def _try_acquire(self) -> bool:
        try:
            fd = os.open(self.path,
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            return False
        except OSError as exc:  # pragma: no cover - exotic filesystems
            if exc.errno == errno.EEXIST:
                return False
            raise
        try:
            payload = {"pid": os.getpid(), "acquired_unix": time.time()}
            os.write(fd, json.dumps(payload).encode("utf-8"))
        finally:
            os.close(fd)
        return True

    def _lock_owner(self) -> Optional[int]:
        try:
            with open(self.path, "rb") as handle:
                data = json.loads(handle.read().decode("utf-8"))
            return int(data.get("pid", -1))
        except (OSError, ValueError):
            # Vanished, unreadable, or torn lock payload: age decides.
            return None

    def _is_stale(self) -> bool:
        try:
            age = time.time() - os.stat(self.path).st_mtime
        except FileNotFoundError:
            return False  # released under us; just retry acquisition
        if age > self.stale_after:
            return True
        owner = self._lock_owner()
        return owner is not None and owner != os.getpid() \
            and _pid_dead(owner)

    def _break_stale(self) -> None:
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass
        self.stale_broken += 1

    # ------------------------------------------------------------------

    def acquire(self) -> None:
        if self._held:
            raise RuntimeError(f"lock {self.path} already held")
        deadline = time.monotonic() + self.timeout
        delay = BACKOFF_BASE
        # Desynchronise processes that collide on the same store.
        jitter = 1.0 + (os.getpid() % 7) / 20.0
        attempt = 0
        while True:
            if self._try_acquire():
                self._held = True
                self._abandon = False
                if attempt:
                    self.contentions += 1
                return
            if self._is_stale():
                self._break_stale()
                continue
            attempt += 1
            if time.monotonic() >= deadline:
                owner = self._lock_owner()
                raise StoreLockTimeout(
                    f"could not lock {self.path} within "
                    f"{self.timeout:.1f}s (held by pid {owner})")
            time.sleep(min(delay * jitter, BACKOFF_CAP))
            delay *= 2

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        if self._abandon:
            # Fault injection: the "holder" crashed without releasing;
            # leave the lock file for stale-breaking to clean up.
            self._abandon = False
            return
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass  # broken as stale by a peer; nothing left to release

    def force_break(self) -> None:
        """Unlink the lock file regardless of age or owner.  Only for
        callers that *know* the holder is gone -- e.g. the health
        channel after an injected publisher crash abandoned our own
        lock: the pid in the file is alive (it is us), so the ordinary
        staleness rules would stall every later acquisition until
        ``stale_after``.  A no-op while this object holds the lock."""
        if self._held:
            return
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()
