"""Crash-safe shared patch store.

The paper's system-wide prevention claim (Section 5) rests on patches
outliving the process that generated them: a patch diagnosed in one
process must reach concurrent and future processes of the same program,
and must survive the messy realities of shared files -- concurrent
writers, processes dying mid-write, corrupted payloads, abandoned
locks.  ``PatchPool.save()`` alone gives none of that: it is
last-writer-wins, so two processes publishing interleaved silently
erase each other's patches.

:class:`SharedPatchStore` is the fix.  One JSON file per program, with:

* **File locking** (:mod:`repro.store.locking`): every mutation runs
  under an exclusive sidecar lock with retry-with-backoff on
  contention and stale-lock breaking for dead holders.
* **Merge-on-write**: a mutation is read-modify-write under the lock.
  Patches union by :func:`~repro.core.patches.patch_key` identity
  (``(bug_type, point)``); colliding entries keep the max trigger
  count and the sticky validated flag.  Nothing is ever
  last-writer-wins.
* **Retraction tombstones**: a patch that fails validation is removed
  *and* tombstoned, so processes that already absorbed it drop it on
  their next refresh instead of resurrecting it into the union.  A
  later re-publish of the same key (the bug was re-diagnosed) clears
  the tombstone.
* **Generation counter**: every commit bumps ``generation``;
  refreshers poll it cheaply and skip merging when nothing changed.
* **Atomic, double-written commits**: payloads go to a temp file,
  fsync, then ``os.replace`` -- readers see the old or the new store,
  never a torn one.  Each commit is mirrored to ``<path>.bak`` so a
  corrupted primary recovers from the last committed state.
* **Corruption quarantine**: an unparsable store (torn by a crashed
  foreign writer, bit-rotted, truncated) is renamed to
  ``<path>.quarantined.N`` and reading falls back to the backup, then
  to an empty store.  Corruption never raises out of the store.

Fault injection (:mod:`repro.store.faults`) drives all three failure
modes deliberately; ``benchmarks/bench_fleet_prevention.py`` gates that
injected faults lose zero validated patches.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.patches import PatchPool, RuntimePatch
from repro.errors import StoreError
from repro.store.faults import FaultPlan, TornWriteCrash
from repro.store.locking import DEFAULT_STALE_AFTER, FileLock

STORE_FORMAT = "first-aid-patch-store"
STORE_VERSION = 1


@dataclass
class StoreState:
    """One parsed store payload (or the empty state)."""

    program: str
    generation: int = 0
    #: patch_key -> RuntimePatch.to_json() payload
    patches: Dict[str, dict] = field(default_factory=dict)
    #: patch_key -> generation at which the patch was retracted
    retracted: Dict[str, int] = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "format": STORE_FORMAT,
            "version": STORE_VERSION,
            "program": self.program,
            "generation": self.generation,
            "patches": self.patches,
            "retracted": self.retracted,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "StoreState":
        if payload.get("format") != STORE_FORMAT:
            raise ValueError(f"not a patch store: "
                             f"format={payload.get('format')!r}")
        if int(payload.get("version", 0)) > STORE_VERSION:
            raise ValueError(f"store version {payload.get('version')} "
                             f"is newer than supported {STORE_VERSION}")
        return cls(
            program=str(payload["program"]),
            generation=int(payload["generation"]),
            patches={str(k): dict(v)
                     for k, v in dict(payload["patches"]).items()},
            retracted={str(k): int(v)
                       for k, v in dict(payload["retracted"]).items()},
        )

    def runtime_patches(self) -> List[RuntimePatch]:
        return [RuntimePatch.from_json(p) for p in self.patches.values()]

    def validated_keys(self) -> List[str]:
        return [k for k, p in self.patches.items()
                if p.get("validated", False)]


class SharedPatchStore:
    """The shared, crash-safe patch store for one program."""

    def __init__(self, path: str, program_name: str,
                 lock_timeout: float = 5.0,
                 stale_lock_after: float = DEFAULT_STALE_AFTER,
                 faults: Optional[FaultPlan] = None):
        self.path = path
        self.backup_path = path + ".bak"
        self.program_name = program_name
        self.faults = faults or FaultPlan()
        self.lock = FileLock(path + ".lock", timeout=lock_timeout,
                             stale_after=stale_lock_after)
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        #: Diagnostics for tests, the fleet benchmark, and telemetry.
        self.publishes = 0
        self.retractions = 0
        self.commits = 0
        self.quarantined = 0
        self.recovered_from_backup = 0

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def _quarantine(self, path: str) -> None:
        """Move an unreadable store file aside (never delete: the bytes
        are evidence) and count it."""
        for n in range(1000):
            target = f"{path}.quarantined.{n}"
            if not os.path.exists(target):
                break
        try:
            os.replace(path, target)
            self.quarantined += 1
        except FileNotFoundError:
            pass  # a concurrent reader already quarantined it

    def _read_candidate(self, path: str) -> Optional[StoreState]:
        """Parse one store file; None when missing, quarantined when
        corrupt."""
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return None
        try:
            state = StoreState.from_json(
                json.loads(raw.decode("utf-8")))
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            self._quarantine(path)
            return None
        if state.program != self.program_name:
            raise StoreError(
                f"patch store at {path} belongs to "
                f"{state.program!r}, not {self.program_name!r}")
        return state

    def load(self) -> StoreState:
        """The current store state: primary, else backup, else empty.
        Lock-free (commits are atomic renames, so reads are always
        consistent); corruption is quarantined, never raised."""
        if self.faults.take("corrupt"):
            FaultPlan.corrupt_file(self.path)
        state = self._read_candidate(self.path)
        if state is not None:
            return state
        state = self._read_candidate(self.backup_path)
        if state is not None:
            self.recovered_from_backup += 1
            return state
        return StoreState(self.program_name)

    def generation(self) -> int:
        """Cheap freshness probe for periodic refresh."""
        return self.load().generation

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def _write_atomic(self, path: str, payload: bytes) -> None:
        directory = os.path.dirname(os.path.abspath(path))
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def _commit(self, state: StoreState) -> None:
        payload = json.dumps(state.to_json(), indent=2,
                             sort_keys=True).encode("utf-8")
        if self.faults.take("torn_write"):
            # Simulate a non-atomic writer dying mid-commit: torn bytes
            # at the primary path, the lock abandoned, the caller dead.
            FaultPlan.tear_file(self.path, payload)
            self.lock._abandon = True
            raise TornWriteCrash(f"injected torn write on {self.path}")
        self._write_atomic(self.path, payload)
        # Mirror to the backup only after the primary commit succeeded;
        # the backup therefore lags by at most one committed state.
        self._write_atomic(self.backup_path, payload)
        self.commits += 1

    def _locked(self) -> FileLock:
        if self.faults.take("stale_lock"):
            FaultPlan.plant_stale_lock(self.lock.path)
        return self.lock

    def _mutate(self, mutator) -> StoreState:
        """Read-modify-write under the lock; returns the committed
        state."""
        with self._locked():
            state = self.load()
            state = mutator(state)
            state.generation += 1
            self._commit(state)
        return state

    # ------------------------------------------------------------------
    # the protocol: publish / retract / refresh
    # ------------------------------------------------------------------

    def publish(self,
                patches: Iterable[RuntimePatch]) -> StoreState:
        """Merge ``patches`` into the store (union by patch key, max
        trigger count, sticky validated flag).  Publishing a tombstoned
        key clears the tombstone: the publisher re-diagnosed the bug,
        which outranks a stale retraction."""
        incoming = list(patches)

        def merge(state: StoreState) -> StoreState:
            for patch in incoming:
                key = patch.key
                state.retracted.pop(key, None)
                mine = patch.to_json()
                cur = state.patches.get(key)
                if cur is None:
                    state.patches[key] = mine
                    continue
                cur["trigger_count"] = max(
                    int(cur.get("trigger_count", 0)),
                    patch.trigger_count)
                cur["validated"] = bool(cur.get("validated", False)) \
                    or patch.validated
            return state

        state = self._mutate(merge)
        self.publishes += 1
        return state

    def retract(self,
                patches: Iterable[RuntimePatch]) -> StoreState:
        """Remove ``patches`` from the store and tombstone their keys,
        so peers that already absorbed them drop them on refresh (a
        patch that failed validation is wrong *everywhere*, not just in
        the process that noticed)."""
        keys = [p.key for p in patches]

        def remove(state: StoreState) -> StoreState:
            for key in keys:
                state.patches.pop(key, None)
                state.retracted[key] = state.generation + 1
            return state

        state = self._mutate(remove)
        self.retractions += 1
        return state

    def sync_into(self, pool: PatchPool) -> Tuple[bool, int]:
        """Pull the store into a local pool: drop tombstoned patches,
        absorb everything else.  Returns (pool changed?, store
        generation) so callers can refresh policies and remember the
        generation they are current with."""
        state = self.load()
        changed = False
        for key in state.retracted:
            if pool.remove_key(key) is not None:
                changed = True
        if pool.absorb(state.runtime_patches()):
            changed = True
        return changed, state.generation
