"""Crash-safe shared patch store.

The paper's system-wide prevention claim (Section 5) rests on patches
outliving the process that generated them: a patch diagnosed in one
process must reach concurrent and future processes of the same program,
and must survive the messy realities of shared files -- concurrent
writers, processes dying mid-write, corrupted payloads, abandoned
locks.  ``PatchPool.save()`` alone gives none of that: it is
last-writer-wins, so two processes publishing interleaved silently
erase each other's patches.

:class:`SharedPatchStore` is the fix.  One JSON file per program, built
on the generic crash-safe channel machinery
(:class:`~repro.store.base.SharedStateChannel`: sidecar file locking
with stale-lock breaking, atomic double-written commits, corruption
quarantine with backup fallback, generation counter, fault injection)
plus the patch-specific merge semantics:

* **Merge-on-write**: a mutation is read-modify-write under the lock.
  Patches union by :func:`~repro.core.patches.patch_key` identity
  (``(bug_type, point)``); colliding entries keep the max trigger
  count and the sticky validated flag.  Nothing is ever
  last-writer-wins.
* **Retraction tombstones**: a patch that fails validation is removed
  *and* tombstoned, so processes that already absorbed it drop it on
  their next refresh instead of resurrecting it into the union.  A
  later re-publish of the same key (the bug was re-diagnosed) clears
  the tombstone.
* **Rollout stages** (schema v2, DESIGN.md §14): a patch payload may
  carry a ``rollout`` envelope (``{"stage": ..., "since_ns": ...}``).
  Records without one are fleet-wide -- the exact pre-rollout
  semantics, so a rollout-disabled fleet reads and writes byte-
  compatible stores.  Stages advance along the
  :data:`~repro.rollout.machine.STAGE_ORDER` lattice only
  (:meth:`SharedPatchStore.set_stage` is advance-only, so concurrent
  controllers converge).  :meth:`SharedPatchStore.rollback` is
  retraction plus a durable ``rolled_back`` record: the record blocks
  plain re-publishes from resurrecting the key (publishing a
  rolled-back key needs an explicit ``restage=True`` -- a fresh
  re-diagnosis re-entering at STAGED), and lets every process refuse
  the key for the rest of its session.

Empty-iterable ``publish()`` / ``retract()`` calls return the current
state without touching the file or the ``publishes`` /
``retractions`` counters, and any mutation that leaves the merged
state unchanged skips the commit entirely (see
:class:`~repro.store.base.SharedStateChannel`).

Fault injection (:mod:`repro.store.faults`) drives all three failure
modes deliberately; ``benchmarks/bench_fleet_prevention.py`` gates that
injected faults lose zero validated patches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.patches import PatchPool, RuntimePatch
from repro.rollout.machine import (
    CANARY_ONLY_STAGES,
    FLEET_WIDE,
    STAGE_ORDER,
    stage_of,
)
from repro.store.base import SharedStateChannel
from repro.store.faults import FaultPlan
from repro.store.locking import DEFAULT_STALE_AFTER

STORE_FORMAT = "first-aid-patch-store"
#: v2 added rollout envelopes + the ``rolled_back`` map.  v1 files
#: load fine (both default empty); readers reject anything newer.
STORE_VERSION = 2


@dataclass
class StoreState:
    """One parsed store payload (or the empty state)."""

    program: str
    generation: int = 0
    #: patch_key -> RuntimePatch.to_json() payload
    patches: Dict[str, dict] = field(default_factory=dict)
    #: patch_key -> generation at which the patch was retracted
    retracted: Dict[str, int] = field(default_factory=dict)
    #: patch_key -> rollback record ({"count", "time_ns",
    #: "generation", "reason"}).  Durable across re-publishes: only an
    #: explicit restage (re-diagnosis) re-enters the key at STAGED.
    rolled_back: Dict[str, dict] = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "format": STORE_FORMAT,
            "version": STORE_VERSION,
            "program": self.program,
            "generation": self.generation,
            "patches": self.patches,
            "retracted": self.retracted,
            "rolled_back": self.rolled_back,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "StoreState":
        if payload.get("format") != STORE_FORMAT:
            raise ValueError(f"not a patch store: "
                             f"format={payload.get('format')!r}")
        if int(payload.get("version", 0)) > STORE_VERSION:
            raise ValueError(f"store version {payload.get('version')} "
                             f"is newer than supported {STORE_VERSION}")
        return cls(
            program=str(payload["program"]),
            generation=int(payload["generation"]),
            patches={str(k): dict(v)
                     for k, v in dict(payload["patches"]).items()},
            retracted={str(k): int(v)
                       for k, v in dict(payload["retracted"]).items()},
            rolled_back={str(k): dict(v) for k, v in
                         dict(payload.get("rolled_back", {})).items()},
        )

    def runtime_patches(self) -> List[RuntimePatch]:
        return [RuntimePatch.from_json(p) for p in self.patches.values()]

    def validated_keys(self) -> List[str]:
        return [k for k, p in self.patches.items()
                if p.get("validated", False)]

    def stages(self) -> Dict[str, str]:
        """patch_key -> rollout stage, including terminal
        ``rolled_back`` entries (whose patch records are gone)."""
        out = {key: stage_of(payload)
               for key, payload in self.patches.items()}
        for key in self.rolled_back:
            out.setdefault(key, "rolled_back")
        return out


class SharedPatchStore(SharedStateChannel):
    """The shared, crash-safe patch store for one program."""

    def __init__(self, path: str, program_name: str,
                 lock_timeout: float = 5.0,
                 stale_lock_after: float = DEFAULT_STALE_AFTER,
                 faults: Optional[FaultPlan] = None):
        super().__init__(path, program_name,
                         lock_timeout=lock_timeout,
                         stale_lock_after=stale_lock_after,
                         faults=faults)
        #: Diagnostics for tests, the fleet benchmark, and telemetry.
        self.publishes = 0
        self.retractions = 0
        self.promotions = 0
        self.rollbacks = 0

    def _empty_state(self) -> StoreState:
        return StoreState(self.program_name or "")

    def _parse(self, payload: dict) -> StoreState:
        return StoreState.from_json(payload)

    # ------------------------------------------------------------------
    # the protocol: publish / retract / refresh
    # ------------------------------------------------------------------

    def publish(self, patches: Iterable[RuntimePatch],
                stage: Optional[str] = None,
                restage: bool = False) -> StoreState:
        """Merge ``patches`` into the store (union by patch key, max
        trigger count, sticky validated flag).  Publishing a tombstoned
        key clears the tombstone: the publisher re-diagnosed the bug,
        which outranks a stale retraction.

        ``stage`` (a :data:`~repro.rollout.machine.STAGE_ORDER` name)
        wraps *newly created* records in a rollout envelope at that
        stage; existing records keep their envelope untouched (merges
        never regress a stage).  ``None`` keeps the legacy fleet-wide
        behavior, byte-compatible with pre-rollout stores.

        A key with a ``rolled_back`` record is *not* re-created by a
        plain publish (the fleet decided the patch hurts); counts
        still merge into a record someone already restaged.  Passing
        ``restage=True`` -- a fresh re-diagnosis -- re-enters the key
        at ``stage`` and starts a new canary cycle."""
        incoming = list(patches)
        if not incoming:
            return self.load()

        def merge(state: StoreState) -> StoreState:
            for patch in incoming:
                key = patch.key
                cur = state.patches.get(key)
                if cur is None and key in state.rolled_back \
                        and not restage:
                    continue
                state.retracted.pop(key, None)
                if cur is None:
                    mine = patch.to_json()
                    if stage is not None:
                        mine["rollout"] = {
                            "stage": stage,
                            "since_ns": patch.created_time_ns,
                        }
                    state.patches[key] = mine
                    continue
                cur["trigger_count"] = max(
                    int(cur.get("trigger_count", 0)),
                    patch.trigger_count)
                cur["validated"] = bool(cur.get("validated", False)) \
                    or patch.validated
            return state

        state = self._mutate(merge)
        self.publishes += 1
        return state

    def retract(self,
                patches: Iterable[RuntimePatch]) -> StoreState:
        """Remove ``patches`` from the store and tombstone their keys,
        so peers that already absorbed them drop them on refresh (a
        patch that failed validation is wrong *everywhere*, not just in
        the process that noticed)."""
        keys = [p.key for p in patches]
        if not keys:
            return self.load()

        def remove(state: StoreState) -> StoreState:
            for key in keys:
                state.patches.pop(key, None)
                state.retracted[key] = state.generation + 1
            return state

        state = self._mutate(remove)
        self.retractions += 1
        return state

    def set_stage(self, key: str, stage: str,
                  time_ns: int = 0) -> StoreState:
        """Advance one patch's rollout stage (promotion controller's
        write path).  Advance-only along the stage lattice: a request
        at or below the committed stage is a no-op, so concurrent
        controllers merging through the lock converge instead of
        flapping.  Unknown keys are a no-op too (the patch was
        retracted or rolled back in the meantime -- the tombstone
        wins)."""
        if stage not in STAGE_ORDER:
            raise ValueError(f"unknown rollout stage {stage!r}")

        def advance(state: StoreState) -> StoreState:
            cur = state.patches.get(key)
            if cur is None:
                return state
            rollout = cur.get("rollout")
            if not isinstance(rollout, dict):
                # A legacy record is already fleet-wide; nothing to
                # advance.
                return state
            have = stage_of(cur)
            if STAGE_ORDER[stage] > STAGE_ORDER[have]:
                rollout["stage"] = stage
                rollout["since_ns"] = time_ns
            return state

        state = self._mutate(advance)
        self.promotions += 1
        return state

    def rollback(self, keys: Iterable[str], time_ns: int = 0,
                 reason: str = "") -> StoreState:
        """Terminal rollback: retract the keys (remove + tombstone, so
        canaries drop them on refresh) *and* write a durable
        ``rolled_back`` record that blocks plain re-publishes and lets
        every process refuse the key for the rest of its session."""
        wanted = list(keys)
        if not wanted:
            return self.load()

        def remove(state: StoreState) -> StoreState:
            for key in wanted:
                state.patches.pop(key, None)
                state.retracted[key] = state.generation + 1
                prior = state.rolled_back.get(key)
                state.rolled_back[key] = {
                    "count": (int(prior.get("count", 0)) + 1
                              if prior else 1),
                    "time_ns": time_ns,
                    "generation": state.generation + 1,
                    "reason": reason,
                }
            return state

        state = self._mutate(remove)
        self.rollbacks += 1
        return state

    def sync_into(self, pool: PatchPool,
                  canary: Optional[bool] = None,
                  blocked: Optional[Set[str]] = None
                  ) -> Tuple[bool, StoreState]:
        """Pull the store into a local pool: drop tombstoned patches,
        absorb what this process is entitled to.  Returns (pool
        changed?, loaded state) so callers can refresh policies and
        read the generation/stages they are now current with.

        ``canary=None`` (rollout disabled) absorbs every record --
        the legacy behavior.  ``canary=False`` absorbs only fleet-wide
        records (staged/canary/validating patches must never reach a
        non-canary process); ``canary=True`` additionally absorbs the
        pre-fleet-wide stages.  ``blocked`` keys (e.g. patches this
        session saw rolled back) are never absorbed regardless."""
        state = self.load()
        changed = False
        for key in state.retracted:
            if pool.remove_key(key) is not None:
                changed = True
        adoptable: List[RuntimePatch] = []
        for key in sorted(state.patches):
            if blocked and key in blocked:
                continue
            if canary is not None:
                key_stage = stage_of(state.patches[key])
                if key_stage != FLEET_WIDE \
                        and (not canary
                             or key_stage not in CANARY_ONLY_STAGES):
                    continue
            adoptable.append(RuntimePatch.from_json(
                state.patches[key]))
        if pool.absorb(adoptable):
            changed = True
        return changed, state
