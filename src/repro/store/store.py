"""Crash-safe shared patch store.

The paper's system-wide prevention claim (Section 5) rests on patches
outliving the process that generated them: a patch diagnosed in one
process must reach concurrent and future processes of the same program,
and must survive the messy realities of shared files -- concurrent
writers, processes dying mid-write, corrupted payloads, abandoned
locks.  ``PatchPool.save()`` alone gives none of that: it is
last-writer-wins, so two processes publishing interleaved silently
erase each other's patches.

:class:`SharedPatchStore` is the fix.  One JSON file per program, built
on the generic crash-safe channel machinery
(:class:`~repro.store.base.SharedStateChannel`: sidecar file locking
with stale-lock breaking, atomic double-written commits, corruption
quarantine with backup fallback, generation counter, fault injection)
plus the patch-specific merge semantics:

* **Merge-on-write**: a mutation is read-modify-write under the lock.
  Patches union by :func:`~repro.core.patches.patch_key` identity
  (``(bug_type, point)``); colliding entries keep the max trigger
  count and the sticky validated flag.  Nothing is ever
  last-writer-wins.
* **Retraction tombstones**: a patch that fails validation is removed
  *and* tombstoned, so processes that already absorbed it drop it on
  their next refresh instead of resurrecting it into the union.  A
  later re-publish of the same key (the bug was re-diagnosed) clears
  the tombstone.

Fault injection (:mod:`repro.store.faults`) drives all three failure
modes deliberately; ``benchmarks/bench_fleet_prevention.py`` gates that
injected faults lose zero validated patches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.patches import PatchPool, RuntimePatch
from repro.store.base import SharedStateChannel
from repro.store.faults import FaultPlan
from repro.store.locking import DEFAULT_STALE_AFTER

STORE_FORMAT = "first-aid-patch-store"
STORE_VERSION = 1


@dataclass
class StoreState:
    """One parsed store payload (or the empty state)."""

    program: str
    generation: int = 0
    #: patch_key -> RuntimePatch.to_json() payload
    patches: Dict[str, dict] = field(default_factory=dict)
    #: patch_key -> generation at which the patch was retracted
    retracted: Dict[str, int] = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "format": STORE_FORMAT,
            "version": STORE_VERSION,
            "program": self.program,
            "generation": self.generation,
            "patches": self.patches,
            "retracted": self.retracted,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "StoreState":
        if payload.get("format") != STORE_FORMAT:
            raise ValueError(f"not a patch store: "
                             f"format={payload.get('format')!r}")
        if int(payload.get("version", 0)) > STORE_VERSION:
            raise ValueError(f"store version {payload.get('version')} "
                             f"is newer than supported {STORE_VERSION}")
        return cls(
            program=str(payload["program"]),
            generation=int(payload["generation"]),
            patches={str(k): dict(v)
                     for k, v in dict(payload["patches"]).items()},
            retracted={str(k): int(v)
                       for k, v in dict(payload["retracted"]).items()},
        )

    def runtime_patches(self) -> List[RuntimePatch]:
        return [RuntimePatch.from_json(p) for p in self.patches.values()]

    def validated_keys(self) -> List[str]:
        return [k for k, p in self.patches.items()
                if p.get("validated", False)]


class SharedPatchStore(SharedStateChannel):
    """The shared, crash-safe patch store for one program."""

    def __init__(self, path: str, program_name: str,
                 lock_timeout: float = 5.0,
                 stale_lock_after: float = DEFAULT_STALE_AFTER,
                 faults: Optional[FaultPlan] = None):
        super().__init__(path, program_name,
                         lock_timeout=lock_timeout,
                         stale_lock_after=stale_lock_after,
                         faults=faults)
        #: Diagnostics for tests, the fleet benchmark, and telemetry.
        self.publishes = 0
        self.retractions = 0

    def _empty_state(self) -> StoreState:
        return StoreState(self.program_name or "")

    def _parse(self, payload: dict) -> StoreState:
        return StoreState.from_json(payload)

    # ------------------------------------------------------------------
    # the protocol: publish / retract / refresh
    # ------------------------------------------------------------------

    def publish(self,
                patches: Iterable[RuntimePatch]) -> StoreState:
        """Merge ``patches`` into the store (union by patch key, max
        trigger count, sticky validated flag).  Publishing a tombstoned
        key clears the tombstone: the publisher re-diagnosed the bug,
        which outranks a stale retraction."""
        incoming = list(patches)

        def merge(state: StoreState) -> StoreState:
            for patch in incoming:
                key = patch.key
                state.retracted.pop(key, None)
                mine = patch.to_json()
                cur = state.patches.get(key)
                if cur is None:
                    state.patches[key] = mine
                    continue
                cur["trigger_count"] = max(
                    int(cur.get("trigger_count", 0)),
                    patch.trigger_count)
                cur["validated"] = bool(cur.get("validated", False)) \
                    or patch.validated
            return state

        state = self._mutate(merge)
        self.publishes += 1
        return state

    def retract(self,
                patches: Iterable[RuntimePatch]) -> StoreState:
        """Remove ``patches`` from the store and tombstone their keys,
        so peers that already absorbed them drop them on refresh (a
        patch that failed validation is wrong *everywhere*, not just in
        the process that noticed)."""
        keys = [p.key for p in patches]

        def remove(state: StoreState) -> StoreState:
            for key in keys:
                state.patches.pop(key, None)
                state.retracted[key] = state.generation + 1
            return state

        state = self._mutate(remove)
        self.retractions += 1
        return state

    def sync_into(self, pool: PatchPool) -> Tuple[bool, int]:
        """Pull the store into a local pool: drop tombstoned patches,
        absorb everything else.  Returns (pool changed?, store
        generation) so callers can refresh policies and remember the
        generation they are current with."""
        state = self.load()
        changed = False
        for key in state.retracted:
            if pool.remove_key(key) is not None:
                changed = True
        if pool.absorb(state.runtime_patches()):
            changed = True
        return changed, state.generation
