"""Crash-safe shared patch store (DESIGN.md §9).

Promotes patch persistence from a per-process JSON dump to a
first-class multi-process subsystem: atomic, file-locked, versioned,
merge-on-write, with retraction tombstones, a generation counter for
cheap refresh, and fault injection for its failure modes.
"""

from repro.store.base import SharedStateChannel
from repro.store.faults import FaultPlan, TornWriteCrash
from repro.store.locking import FileLock
from repro.store.store import SharedPatchStore, StoreState

__all__ = [
    "FaultPlan",
    "TornWriteCrash",
    "FileLock",
    "SharedPatchStore",
    "SharedStateChannel",
    "StoreState",
]
