"""Fault injection for the shared patch store.

The store's crash-safety claims (ISSUE: "100 injected store faults lose
zero validated patches") are only claims until something actually tears
writes, abandons locks, and scribbles on payloads.  A :class:`FaultPlan`
is an explicitly *armed* queue of faults the store consults at its
vulnerable points; with nothing armed every check is a dict lookup that
returns False, so production stores pay nothing.

Fault kinds
-----------

``torn_write``
    The next commit behaves like a non-atomic writer dying mid-write:
    a truncated payload lands directly at the store path (bypassing the
    temp-file + rename protocol), the file lock is abandoned (the
    "process" died holding it), and :class:`TornWriteCrash` propagates
    to the caller to simulate the publisher's death.

``stale_lock``
    Before the next lock acquisition, a lock file owned by a dead pid
    with an ancient mtime is planted, as if a previous holder was
    SIGKILLed.

``corrupt``
    Before the next read, the store payload is overwritten with
    garbage bytes (bit rot, a hostile writer, a partial disk).
"""

from __future__ import annotations

import json
import os

from repro.chaos.plan import FaultPlan as _BasePlan

KINDS = ("torn_write", "stale_lock", "corrupt")


class TornWriteCrash(Exception):
    """Raised by an injected torn write to simulate the publishing
    process dying mid-commit.  Deliberately *not* a StoreError: real
    code never raises it, and tests/benchmarks catch it explicitly."""


class FaultPlan(_BasePlan):
    """The store's armed-fault queue: the arm/take/fired protocol comes
    from the shared :class:`repro.chaos.plan.FaultPlan` base; the
    store-specific effects live below."""

    KINDS = KINDS

    # ------------------------------------------------------------------
    # fault effects (invoked by the store when a take() succeeds)
    # ------------------------------------------------------------------

    @staticmethod
    def tear_file(path: str, payload: bytes) -> None:
        """Write a torn (truncated, mid-token) payload at ``path``
        directly, the way a crashed non-atomic writer would."""
        cut = max(1, len(payload) // 3)
        with open(path, "wb") as handle:
            handle.write(payload[:cut])

    @staticmethod
    def plant_stale_lock(lock_path: str, age_s: float = 3600.0) -> None:
        """Create a lock file that looks abandoned: dead owner pid,
        mtime pushed ``age_s`` seconds into the past."""
        # Pid 2**22-ish is above every default pid_max; if the host has
        # it alive anyway, the ancient mtime still marks the lock stale.
        payload = {"pid": 4_000_000, "acquired_unix": 0.0}
        with open(lock_path, "w") as handle:
            json.dump(payload, handle)
        old = os.stat(lock_path).st_mtime - age_s
        os.utime(lock_path, (old, old))

    @staticmethod
    def corrupt_file(path: str) -> None:
        """Overwrite ``path`` with bytes that are definitely not the
        store's JSON."""
        with open(path, "wb") as handle:
            handle.write(b'{"format": "first-aid-patch-store", \x00\xff garbage')
