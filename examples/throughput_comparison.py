#!/usr/bin/env python3
"""Figure 4 live: First-Aid vs Rx vs whole-program restart.

The Squid proxy model is driven with a request stream in which the
buffer-overflow trigger arrives three times.  Each recovery discipline
handles it differently:

* **First-Aid** diagnoses the overflow once, patches the one allocation
  call-site, and the remaining triggers are harmless -- one dip.
* **Rx** survives each failure by rollback + whole-heap changes but
  must disable the changes afterwards, so every trigger costs another
  recovery -- repeated dips.
* **Restart** loses the process (and 2 s of downtime) on every
  trigger -- repeated collapses.

Usage::

    python examples/throughput_comparison.py
"""

from repro.apps.registry import get_app
from repro.baselines import RestartRuntime, RxRuntime
from repro.bench.harness import throughput_series
from repro.bench.tables import render_series
from repro.core.runtime import FirstAidRuntime


def main() -> None:
    app = get_app("squid")
    workload = app.workload(normal_before=200, triggers=3,
                            normal_between=700, normal_after=300)

    fa = FirstAidRuntime(app.program(), input_tokens=workload.tokens)
    fa_session = fa.run()

    rx = RxRuntime(app.program(), input_tokens=workload.tokens)
    rx_session = rx.run()

    restart = RestartRuntime(app.program(), workload)
    restart_session = restart.run()

    total_s = max(fa.process.clock.now_s, rx.process.clock.now_s,
                  restart.clock.now_s)
    bin_s = 2.0
    series = {
        "First-Aid": throughput_series(fa.process.output.entries(),
                                       bin_s, total_s),
        "Rx": throughput_series(rx.process.output.entries(), bin_s,
                                total_s),
        "Restart": throughput_series(restart.output.entries(), bin_s,
                                     total_s),
    }
    print(render_series("Squid throughput under 3 bug triggers "
                        "(MB per simulated second)", series, bin_s))
    print()
    print(f"First-Aid recoveries: {len(fa_session.recoveries)} "
          f"(then immune)")
    print(f"Rx recoveries:        {len(rx_session.recoveries)} "
          f"(one per trigger -- changes disabled after each)")
    print(f"Restarts:             {restart_session.restarts} "
          f"(full downtime per trigger)")


if __name__ == "__main__":
    main()
