#!/usr/bin/env python3
"""The paper's flagship case: Apache's mod_ldap dangling-pointer read.

``util_ald_cache_purge`` frees LDAP cache memory through the
``util_ald_free`` wrapper while a connection keeps raw pointers into
it; a server-status request several checkpoint intervals later reads
the freed memory and crashes.  This is the bug behind the paper's
Figure 5 bug report and the ``delay free(7)`` row of Table 3, and the
error-propagation distance (trigger 3 checkpoints before the failure)
is what exercises the heap-marking technique of Figure 3.

This example runs the scenario, prints the First-Aid bug report, and
shows the seven patched deallocation call-sites.

Usage::

    python examples/apache_bug_report.py
"""

from repro.apps.registry import get_app
from repro.core.runtime import FirstAidConfig, FirstAidRuntime


def main() -> None:
    app = get_app("apache")
    workload = app.workload(normal_before=30, triggers=2,
                            normal_between=40, normal_after=30)
    runtime = FirstAidRuntime(app.program(),
                              input_tokens=workload.tokens,
                              config=FirstAidConfig())
    session = runtime.run()

    print(f"session: {session.reason}, "
          f"recoveries: {len(session.recoveries)}")
    assert len(session.recoveries) == 1, \
        "the 7 delay-free patches must prevent the second purge+status"

    recovery = session.recoveries[0]
    diagnosis = recovery.diagnosis
    print(f"bug: {[b.value for b in diagnosis.bug_types]}")
    print(f"identified checkpoint: #{diagnosis.checkpoint.index} at "
          f"instruction {diagnosis.checkpoint.instr_count} "
          f"(failure at {recovery.failure.instr_count}; propagation "
          f"distance "
          f"{recovery.failure.instr_count - diagnosis.checkpoint.instr_count} "
          f"instructions, interval {runtime.manager.interval})")
    print(f"rollbacks: {diagnosis.rollbacks}, "
          f"recovery: {recovery.recovery_time_ns / 1e9:.3f} s, "
          f"validation: {recovery.validation.time_ns / 1e9:.3f} s")
    print()
    print("the seven patched deallocation call-sites:")
    for patch in diagnosis.patches:
        chain = " <- ".join(fn for fn, _pc in patch.point.frames)
        print(f"  patch {patch.patch_id}: delay free @ {chain}")
    print()
    print("---- bug report (Figure 5 layout) " + "-" * 30)
    print(recovery.report.render(mm_trace_limit=25))


if __name__ == "__main__":
    main()
