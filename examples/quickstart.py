#!/usr/bin/env python3
"""Quickstart: survive a heap buffer overflow with First-Aid.

A small MiniC "server" has a classic unchecked-length overflow: most
requests are harmless, but one request overruns a 32-byte buffer and
smashes a neighbouring object's pointer, crashing the process.

Run it under :class:`repro.FirstAidRuntime` and watch the system:

1. catch the SIGSEGV,
2. diagnose the bug by re-executing from checkpoints under exposing /
   preventive environmental changes,
3. generate an "add padding" patch for the one allocation call-site,
4. recover, and
5. sail through the *second* bug-triggering request without failing.

Usage::

    python examples/quickstart.py
"""

from repro import FirstAidConfig, FirstAidRuntime, compile_program

BUGGY_SERVER = """
int session = 0;     // holds a pointer used on every request
int counters = 0;

int build_request_title(int len) {
    // BUG: the title buffer is 32 bytes but `len` is never checked.
    int title = malloc(32);
    int i = 0;
    while (i < len) {
        store1(title + i, 85);
        i = i + 1;
    }
    free(title);
    return 0;
}

int account(int size) {
    int c = load(session);           // pointer the overflow smashes
    store(c, load(c) + size);
    return 0;
}

int main() {
    int scratch = malloc(32);        // leaves a hole below `session`
    session = malloc(48);
    counters = malloc(48);
    store(counters, 0);
    store(session, counters);
    free(scratch);
    while (1) {
        int len = input();
        if (len == 0) { halt(); }
        build_request_title(len);
        account(len);
        output(len);
    }
}
"""


def main() -> None:
    program = compile_program(BUGGY_SERVER, name="quickstart-server")

    # Workload: normal requests (len <= 24), one bug trigger (len 64),
    # more normal traffic, then the SAME trigger again.
    workload = [12, 18, 9, 24, 15] * 6
    workload += [64]                 # first trigger: the process fails
    workload += [10, 20, 14] * 10
    workload += [64]                 # second trigger: must be survived
    workload += [8, 16] * 5 + [0]

    runtime = FirstAidRuntime(program, input_tokens=workload,
                              config=FirstAidConfig())
    session = runtime.run()

    print(f"session finished: {session.reason!r}, "
          f"{len(session.recoveries)} recovery(ies)")
    assert session.reason == "halt"
    assert len(session.recoveries) == 1, \
        "the patch must prevent the second trigger"

    recovery = session.recoveries[0]
    diagnosis = recovery.diagnosis
    print(f"diagnosed bug type(s): "
          f"{[b.value for b in diagnosis.bug_types]}")
    print(f"rollbacks used for diagnosis: {diagnosis.rollbacks}")
    print(f"recovery time: {recovery.recovery_time_ns / 1e9:.3f} "
          f"simulated seconds")
    if recovery.validation:
        print(f"patch validation: "
              f"{'consistent' if recovery.validation.consistent else 'FAILED'} "
              f"({recovery.validation.time_ns / 1e9:.3f} s, off the "
              f"recovery path)")
    print()
    print("---- on-site bug report " + "-" * 40)
    print(recovery.report.render(mm_trace_limit=12))
    print()
    completed = len(runtime.process.output.values())
    print(f"requests completed despite the bug: {completed}")


if __name__ == "__main__":
    main()
