#!/usr/bin/env python3
"""Patches outlive the process: system-wide prevention.

First-Aid keeps a per-program patch pool on disk.  The first process of
a buggy program fails once, gets diagnosed, and writes its validated
patch to the pool.  Every later process running the same executable
loads the pool at startup and applies the preventive change at the
patched call-site from its very first request -- the bug never
manifests again anywhere on the system (paper Section 2, "Prevention of
bug reoccurrence").

This example runs the CVS double-free app twice against the same pool
file (in a temp directory) and shows run 2 sailing through the
bug-triggering commit with zero failures.

Usage::

    python examples/patch_persistence.py
"""

import json
import os
import tempfile

from repro.apps.registry import get_app
from repro.core.runtime import FirstAidConfig, FirstAidRuntime


def main() -> None:
    app = get_app("cvs")
    pool_dir = tempfile.mkdtemp(prefix="firstaid-pool-")
    pool_path = os.path.join(pool_dir, "cvs.patches.json")
    config = FirstAidConfig(pool_path=pool_path)

    print("=== run 1: no patches on disk yet ===")
    workload = app.workload(normal_before=25, triggers=1,
                            normal_after=25)
    first = FirstAidRuntime(app.program(),
                            input_tokens=workload.tokens, config=config)
    session1 = first.run()
    print(f"  outcome: {session1.reason}, "
          f"failures survived: {len(session1.recoveries)}")
    rec = session1.recoveries[0]
    print(f"  diagnosed: {[b.value for b in rec.diagnosis.bug_types]}, "
          f"validated: {rec.validation.consistent}")
    print(f"  patch pool written to {pool_path}:")
    with open(pool_path) as handle:
        print("   ", json.dumps(json.load(handle))[:160], "...")

    print()
    print("=== run 2: same executable, fresh process, pool loaded ===")
    workload2 = app.workload(normal_before=10, triggers=3,
                             normal_between=20, normal_after=10,
                             seed=77)
    second = FirstAidRuntime(app.program(),
                             input_tokens=workload2.tokens,
                             config=config)
    session2 = second.run()
    print(f"  outcome: {session2.reason}, "
          f"failures: {len(session2.recoveries)} "
          f"(three double-free triggers, zero crashes)")
    assert session2.recoveries == []
    triggered = sum(p.trigger_count for p in second.pool.patches())
    print(f"  the persisted patch fired {triggered} times, delaying "
          f"the buggy frees and absorbing the double frees")


if __name__ == "__main__":
    main()
