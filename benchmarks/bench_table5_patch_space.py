"""Table 5: space overhead of the runtime patches.

Shape targets: padding patches cost ~1 KB per concurrently-padded
object (the paper reports 1016 B per object); delay-free patches
accumulate a small, bounded number of quarantined bytes.
"""

from repro.bench.experiments import table5_patch_space

PADDING_APPS = {"squid", "pine", "mutt", "bc"}
DELAY_APPS = {"apache", "cvs", "m4"}


def test_table5_patch_space(once):
    result = once(table5_patch_space)
    print("\n" + result.render())
    for name, d in result.data.items():
        if name in PADDING_APPS:
            assert d["patch_type"] == "padding", name
            assert d["overhead"] % 1016 == 0, name
            assert d["overhead"] >= 1016, name
        else:
            assert d["patch_type"] == "delay free", name
            assert 0 < d["overhead"] < 64 * 1024, name
    # bc pads more concurrent objects than the single-buffer apps
    assert result.data["bc"]["overhead"] > \
        result.data["squid"]["overhead"]
