"""Table 7: checkpoint (COW) space overhead.

Shape target: per-checkpoint traffic tracks the working set -- the
large SPEC programs (vortex, mcf, gcc, parser, bzip2, gzip) dominate,
the tiny ones (eon, crafty, bc-style apps) cost a few KB; the adaptive
interval keeps per-second traffic bounded.
"""

from repro.bench.experiments import table7_checkpoint_space


def test_table7_checkpoint_space(once):
    result = once(table7_checkpoint_space)
    print("\n" + result.render())
    per_ck = {name: d["bytes_per_checkpoint"]
              for name, d in result.data.items()}
    big = ["255.vortex", "181.mcf", "176.gcc", "253.perlbmk"]
    small = ["252.eon", "186.crafty", "bc", "m4"]
    assert min(per_ck[n] for n in big) > max(per_ck[n] for n in small)
    assert per_ck["255.vortex"] == max(per_ck[n] for n in per_ck
                                       if n.startswith(("1", "2", "3")))
    # per-second traffic stays bounded thanks to adaptation
    for name, d in result.data.items():
        assert d["bytes_per_second"] < 4 * 1024 * 1024, name
