"""Table 2: the application/bug inventory."""

from repro.bench.experiments import table2_inventory


def test_table2_inventory(once):
    result = once(table2_inventory)
    print("\n" + result.render())
    names = [row[0] for row in result.rows]
    assert names == ["apache", "squid", "cvs", "pine", "mutt", "m4",
                     "bc", "apache-uir", "apache-dpw"]
    bugs = {row[0]: row[2] for row in result.rows}
    assert "dangling pointer read" in bugs["apache"]
    assert "double free" in bugs["cvs"]
    assert "two buffer overflows" in bugs["bc"]
    assert "injected" in bugs["apache-uir"]
