"""Table 4: patch accuracy -- call-sites and objects affected by
First-Aid's patches vs Rx's whole-heap environmental changes.

Shape target: First-Aid touches a (much) smaller set on both axes for
every application, which is why its patches can stay enabled while Rx
must disable its changes.
"""

from repro.bench.experiments import table4_accuracy


def test_table4_accuracy(once):
    result = once(table4_accuracy)
    print("\n" + result.render())
    for name, d in result.data.items():
        assert d["fa_sites"] <= d["rx_sites"], name
        assert d["fa_objects"] < d["rx_objects"], name
    # aggregate: at least 3x fewer objects on average
    ratios = [d["fa_objects"] / d["rx_objects"]
              for d in result.data.values()]
    assert sum(ratios) / len(ratios) < 0.5
