"""Figure 6: normal-execution overhead.

Shape targets (paper: 0.4%-11.6%, average 3.7%): low overall overhead,
with the allocator extension showing most on allocation-intensive
programs and checkpointing showing most on large-working-set SPEC
programs.
"""

from repro.bench.experiments import figure6_overhead


def test_figure6_overhead(once):
    result = once(figure6_overhead)
    print("\n" + result.render())
    data = {k: v for k, v in result.data.items()
            if k != "average_overhead"}
    avg = result.data["average_overhead"]
    assert 0.0 < avg < 0.12, avg
    for name, d in data.items():
        assert d["overall"] >= d["allocator"] >= 0.999, name
        assert d["overall"] - 1 < 0.20, name
    # allocator-extension overhead concentrates on alloc-intensive
    alloc_ext = [d["allocator"] - 1 for n, d in data.items()
                 if n in ("cfrac", "espresso", "p2c")]
    spec_ext = [d["allocator"] - 1 for n, d in data.items()
                if n.startswith(("1", "2", "3"))]
    assert min(alloc_ext) > sum(spec_ext) / len(spec_ext)
    # checkpointing overhead concentrates on big working sets
    big = [data[n]["overall"] - data[n]["allocator"]
           for n in ("255.vortex", "181.mcf")]
    small = [data[n]["overall"] - data[n]["allocator"]
             for n in ("252.eon", "186.crafty")]
    assert min(big) > max(small)
