"""Sampled always-on detection benchmark: overhead, fleet TTFP, off-switch.

Measures and gates the sampling plane (``repro.sampling``, DESIGN.md
§15) end to end:

1. **Overhead** -- every subject runs trigger-free under the full
   stack (extension NORMAL + periodic checkpoints) with sampling off
   and at each swept rate; the gate bounds mean simulated-time
   overhead at rate 1/64 to <= 10% over sampling-off.

2. **Fleet time-to-first-patch** -- per app, a 4-process fleet
   (leader + staggered followers over one shared store) runs with and
   without a sampled leader; each follower's would-be failure time is
   measured with no store.  Gates: at least one app where the sampled
   leader's guard hit publishes a validated patch before any
   unsampled process would have failed, fleet TTFP strictly better,
   and every sampled fleet still prevents its followers.

3. **Rate-0 identity** -- ``sampling_rate=0`` session digests must be
   byte-identical (equivalence key) to the defaults the seed produces.

Runnable as a script::

    python benchmarks/bench_sampling.py            # full: 7 subjects,
                                                   # 4 TTFP apps
    python benchmarks/bench_sampling.py --quick    # reduced CI mode

Writes ``BENCH_sampling.json`` and exits non-zero when any gate fails.
"""

import argparse
import json
import os
import sys

if __name__ == "__main__":  # script mode without PYTHONPATH=src
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.bench.sampling import (
    GATE_RATE,
    TTFP_APPS,
    TTFP_RATE,
    rate_zero_identity,
    run_fleet_ttfp,
    run_overhead,
)

QUICK_TTFP_APPS = ("pine",)
QUICK_IDENTITY_APPS = ("bc", "pine", "squid")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("out", nargs="?", default="BENCH_sampling.json")
    parser.add_argument("--procs", type=int, default=4,
                        help="fleet size per TTFP app")
    parser.add_argument("--apps", nargs="*", default=list(TTFP_APPS),
                        help="TTFP app population")
    parser.add_argument("--rate", type=int, default=TTFP_RATE,
                        help="sampling rate for the TTFP leader")
    parser.add_argument("--quick", action="store_true",
                        help="reduced CI mode: rate-64 overhead sweep "
                        "over 3 subjects, 1 TTFP app, 2 processes, "
                        "3 identity apps")
    args = parser.parse_args(argv)
    identity_apps = None
    overhead_rates = None
    if args.quick:
        args.procs = min(args.procs, 2)
        args.apps = list(QUICK_TTFP_APPS)
        identity_apps = QUICK_IDENTITY_APPS
        overhead_rates = (GATE_RATE,)

    print(f"[overhead] sweeping rates "
          f"{overhead_rates or 'default'} ...")
    overhead = run_overhead(**({"rates": overhead_rates} if
                               overhead_rates else {}),
                            quick=args.quick)
    for rate, mean in sorted(overhead.mean_overhead.items()):
        print(f"[overhead] rate 1/{rate}: mean {mean * 100:+.4f}%")
    print(f"[overhead] gate (rate 1/{overhead.gate_rate} <= "
          f"{overhead.gate_limit:.0%}): {overhead.gate_passed}")

    print(f"[ttfp] {len(args.apps)} apps x {args.procs} processes, "
          f"leader sampled at 1/{args.rate} ...")
    fleet = run_fleet_ttfp(apps=tuple(args.apps), rate=args.rate,
                           procs=args.procs)
    for a in fleet.apps:
        print(f"[ttfp] {a.app}: followers would fail at "
              f"{a.earliest_would_fail_ns / 1e6:.1f} ms; "
              f"unsampled patch {a.unsampled.ttfp_ns / 1e6:.1f} ms, "
              f"sampled detection "
              f"{a.sampled.first_detection_ns / 1e6:.1f} ms -> patch "
              f"{a.sampled.ttfp_ns / 1e6:.1f} ms "
              f"(pre_crash_win={a.pre_crash_win})")
    print(f"[ttfp] any_pre_crash_win={fleet.any_pre_crash_win} "
          f"fleet_ttfp_better={fleet.fleet_ttfp_better} "
          f"gate={fleet.gate_passed}")

    print("[identity] sampling_rate=0 vs seed defaults ...")
    identity = rate_zero_identity(apps=identity_apps)
    print(f"[identity] apps={len(identity['apps'])} "
          f"mismatches={identity['mismatches']} "
          f"gate={identity['gate_passed']}")

    gates = {
        "overhead": overhead.gate_passed,
        "fleet_ttfp": fleet.gate_passed,
        "rate_zero_identity": identity["gate_passed"],
    }
    gate_passed = all(gates.values())
    payload = {
        "benchmark": "sampling",
        "quick": args.quick,
        "overhead": overhead.to_json(),
        "fleet_ttfp": fleet.to_json(),
        "rate_zero_identity": identity,
        "gates": gates,
        "gate_passed": gate_passed,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"\ngates: {gates}")
    print(f"wrote {args.out}")
    return 0 if gate_passed else 1


if __name__ == "__main__":
    sys.exit(main())
