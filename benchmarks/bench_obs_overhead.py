"""Telemetry overhead: disabled instrumentation must be free.

The telemetry subsystem is off by default, and "off" has to mean off:
a disabled registry hands out no instruments, the VM attaches no
metrics object, and nothing on the dispatch hot path calls into
``repro.obs``.  Two shape targets, on one SPEC-like kernel and one
allocation-intensive kernel:

1. **Zero simulated overhead** -- a run with telemetry disabled charges
   exactly the same simulated nanoseconds as a run with no telemetry
   object at all (they are the same code path), and enabling telemetry
   also charges the same simulated time: instruments observe the
   simulation, they are not part of its cost model.
2. **Bounded wall-clock overhead** -- enabling full instrumentation
   (VM counter batching + heap instruments + checkpoint instruments)
   stays within a small factor of the uninstrumented run; the disabled
   case stays within noise.

Also runnable as a script: ``python benchmarks/bench_obs_overhead.py``
writes ``BENCH_obs.json`` so CI tracks the trajectory.
"""

import dataclasses
import json
import os
import sys
import time

if __name__ == "__main__":  # script mode without PYTHONPATH=src
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.checkpoint.manager import CheckpointManager
from repro.obs.telemetry import Telemetry
from repro.process import Process
from repro.workloads import PROFILES, build_kernel

#: One large-working-set SPEC kernel, one allocation-intensive kernel.
SUBJECTS = ("256.bzip2", "cfrac")

#: Enough rounds that per-run wall time is tens of milliseconds, so
#: ratios are measured above timer noise.
ROUNDS = 120

#: Repetitions per configuration; the minimum is reported (standard
#: practice for wall-clock microbenchmarks).
REPEATS = 5


def _run_once(program, telemetry):
    process = Process(program)
    if telemetry is not None:
        process.attach_telemetry(telemetry)
    manager = CheckpointManager(process, adaptive=False,
                                telemetry=telemetry)
    t0 = time.perf_counter()
    manager.run()
    wall_s = time.perf_counter() - t0
    return process.clock.now_ns, process.instr_count, wall_s


def _measure(program, mode: str) -> dict:
    best = None
    for _ in range(REPEATS):
        if mode == "none":
            telemetry = None
        elif mode == "disabled":
            telemetry = Telemetry.disabled()
        else:
            telemetry = Telemetry()
        sim_ns, instrs, wall_s = _run_once(program, telemetry)
        if best is None or wall_s < best["wall_s"]:
            best = {"sim_ns": sim_ns, "instrs": instrs, "wall_s": wall_s}
    if mode == "enabled":
        best["metric_instructions"] = \
            telemetry.metrics.value("vm.instructions")
        best["metric_mallocs"] = telemetry.metrics.value("heap.mallocs")
    return best


_RESULTS = None


def obs_overhead() -> dict:
    """Measure each subject under none/disabled/enabled telemetry."""
    global _RESULTS
    if _RESULTS is not None:
        return _RESULTS
    results = {}
    for name in SUBJECTS:
        profile = dataclasses.replace(PROFILES[name], rounds=ROUNDS)
        program = build_kernel(profile)
        entry = {mode: _measure(program, mode)
                 for mode in ("none", "disabled", "enabled")}
        entry["disabled_wall_ratio"] = (
            entry["disabled"]["wall_s"] / entry["none"]["wall_s"])
        entry["enabled_wall_ratio"] = (
            entry["enabled"]["wall_s"] / entry["none"]["wall_s"])
        results[name] = entry
    _RESULTS = results
    return results


def test_disabled_telemetry_adds_zero_simulated_time(once):
    results = once(obs_overhead)
    for name, entry in results.items():
        assert entry["disabled"]["sim_ns"] == entry["none"]["sim_ns"], name
        assert entry["enabled"]["sim_ns"] == entry["none"]["sim_ns"], name
        assert entry["disabled"]["instrs"] == entry["none"]["instrs"], name


def test_enabled_counters_match_the_run(once):
    results = once(obs_overhead)
    for name, entry in results.items():
        assert entry["enabled"]["metric_instructions"] == \
            entry["enabled"]["instrs"], name
        assert entry["enabled"]["metric_mallocs"] > 0, name


def render(results: dict) -> str:
    lines = ["subject        sim ms   none ms  disabled  enabled"]
    for name, entry in results.items():
        lines.append(
            f"{name:<12} {entry['none']['sim_ns'] / 1e6:>8.1f}"
            f" {entry['none']['wall_s'] * 1e3:>9.1f}"
            f" {entry['disabled_wall_ratio']:>8.2f}x"
            f" {entry['enabled_wall_ratio']:>7.2f}x")
    return "\n".join(lines)


def main(out_path: str = "BENCH_obs.json") -> int:
    results = obs_overhead()
    print(render(results))
    sim_zero = all(
        entry["disabled"]["sim_ns"] == entry["none"]["sim_ns"]
        and entry["enabled"]["sim_ns"] == entry["none"]["sim_ns"]
        for entry in results.values())
    payload = {
        "benchmark": "obs_overhead",
        "rounds": ROUNDS,
        "repeats": REPEATS,
        "disabled_sim_overhead_is_zero": sim_zero,
        "subjects": results,
    }
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    worst = max(e["disabled_wall_ratio"] for e in results.values())
    print(f"\nwrote {out_path} (sim overhead zero: {sim_zero}; "
          f"worst disabled wall ratio: {worst:.2f}x)")
    return 0 if sim_zero else 1


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
