"""Template-JIT VM speed: kernel throughput and end-to-end recovery.

The compiled tier (``FirstAidConfig.vm_tier="compiled"``,
:mod:`repro.vm.compile`) exists to make the thousands of re-executions
a recovery performs cheap.  Three claims, measured here:

1. **Kernel throughput** -- block-compiled dispatch with
   superinstruction fusion executes straight-line bytecode kernels at
   >= 10x the reference interpreter's instructions/second (warm cache,
   i.e. the re-execution case the tier exists for; the cold number,
   which includes compilation, is reported alongside).
2. **End-to-end recovery speedup** -- across the application suite,
   total recovery wall-clock drops by >= 3x when every re-execution
   (diagnosis probes, validation runs, chaos re-executions) runs on
   the compiled tier.
3. **Equivalence** -- every session digest is byte-identical between
   tiers, *including* the simulated-clock fields (``clock_ns``,
   recovery/validation sim time): the compiled tier changes how fast
   the host executes, never what the simulation observes.

Also reported: fusion statistics (constant folds, value forwards,
compare+branch fusions, threaded jumps, closed loops) and the
program-cache hit behaviour across Machine instances.

Runnable as a script::

    python benchmarks/bench_vm_speed.py           # full run, writes
                                                  # BENCH_vm.json
    python benchmarks/bench_vm_speed.py --quick   # CI mode: smaller
                                                  # kernels, 5x floor,
                                                  # 2-app equivalence
"""

import argparse
import json
import os
import sys
import time

if __name__ == "__main__":  # script mode without PYTHONPATH=src
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.apps.registry import all_apps
from repro.bench.harness import run_app_session
from repro.heap.allocator import LeaAllocator
from repro.heap.base import Memory
from repro.heap.extension import AllocatorExtension, ExtensionMode
from repro.vm import compile as vmc
from repro.vm.builder import ProgramBuilder
from repro.vm.io import OutputLog, ReplayableInput
from repro.vm.machine import Machine

#: Warm-cache kernel speedup the full benchmark requires (ISSUE gate).
KERNEL_GATE = 10.0
#: CI floor (--quick): smaller kernels on a shared, noisy runner.
QUICK_KERNEL_GATE = 5.0
#: End-to-end recovery wall-clock speedup over the app suite.
E2E_GATE = 3.0

#: Apps the quick mode checks for cross-tier equivalence.
QUICK_APPS = ("apache", "bc")


# ---------------------------------------------------------------------
# kernels
# ---------------------------------------------------------------------

def straight_line_kernel(iters: int):
    """A loop whose body is 64 unrolled ALU instructions: measures
    dispatch + operand-decode elimination on straight-line code."""
    pb = ProgramBuilder("k_straight")
    fb = pb.function("main")
    fb.const("i", 0)
    fb.const("n", iters)
    fb.const("a", 7)
    fb.const("b", 13)
    fb.label("top")
    for _ in range(16):
        fb.binop("+", "a", "a", "b")
        fb.binop("^", "b", "b", "a")
        fb.binop("*", "a", "a", "b")
        fb.binop(">>", "b", "a", "i")
    fb.addi("i", "i", 1)
    fb.binop("<", "t", "i", "n")
    fb.jnz("t", "top")
    fb.output("a")
    fb.halt()
    pb.add(fb)
    return pb.build()


def tight_loop_kernel(iters: int):
    """The minimal 3-instruction counting loop: worst case for
    per-iteration overhead, best case for loop closing."""
    pb = ProgramBuilder("k_loop")
    fb = pb.function("main")
    fb.const("i", iters)
    fb.label("top")
    fb.addi("i", "i", -1)
    fb.jnz("i", "top")
    fb.output("i")
    fb.halt()
    pb.add(fb)
    return pb.build()


def memory_kernel(iters: int):
    """A store/load sweep over a heap buffer: measures the inlined
    memory fast path (bounds check, byte codec, dirty marking)."""
    pb = ProgramBuilder("k_mem")
    fb = pb.function("main")
    fb.const("sz", 4096)
    fb.malloc("p", "sz")
    fb.const("i", 0)
    fb.const("n", iters)
    fb.const("m", 511)
    fb.label("top")
    fb.binop("&", "k", "i", "m")
    fb.binop("+", "addr", "p", "k")
    fb.store("addr", "i", 0, 8)
    fb.load("v", "addr", 0, 8)
    fb.binop("+", "acc", "acc", "v")
    fb.addi("i", "i", 1)
    fb.binop("<", "t", "i", "n")
    fb.jnz("t", "top")
    fb.free("p")
    fb.output("acc")
    fb.halt()
    pb.add(fb)
    return pb.build()


def call_kernel(iters: int):
    """A call-heavy loop: block cache hits across frames, CALL/RET
    transitions through the dispatcher."""
    pb = ProgramBuilder("k_call")
    f = pb.function("mix", params=("x",))
    f.addi("y", "x", 17)
    f.binop("^", "y", "y", "x")
    f.ret("y")
    pb.add(f)
    fb = pb.function("main")
    fb.const("i", iters)
    fb.const("acc", 0)
    fb.label("top")
    fb.call("r", "mix", ["i"])
    fb.binop("+", "acc", "acc", "r")
    fb.addi("i", "i", -1)
    fb.jnz("i", "top")
    fb.output("acc")
    fb.halt()
    pb.add(fb)
    return pb.build()


def _machine(program, tier):
    mem = Memory()
    ext = AllocatorExtension(mem, LeaAllocator(mem),
                             ExtensionMode.DIAGNOSTIC)
    return Machine(program, mem, ext, ReplayableInput(), OutputLog(),
                   tier=tier)


def _timed_run(program, tier):
    """(instructions/second, wall seconds, final machine) for one
    complete run on a fresh Machine."""
    m = _machine(program, tier)
    t0 = time.perf_counter()
    m.run()
    wall = time.perf_counter() - t0
    return m.instr_count / wall if wall else 0.0, wall, m


def kernel_bench(scale: int) -> dict:
    """Reference vs compiled throughput on each kernel.  The compiled
    tier is measured twice: cold (first Machine, includes block
    compilation) and warm (second Machine, pure cache hit -- the
    re-execution case)."""
    kernels = {
        "straight_line": straight_line_kernel(scale),
        "tight_loop": tight_loop_kernel(scale * 20),
        "memory": memory_kernel(scale * 4),
        "calls": call_kernel(scale * 4),
    }
    vmc.clear_cache()
    out = {}
    for name, program in kernels.items():
        ref_ips, ref_wall, ref_m = _timed_run(program, "reference")
        cold_ips, cold_wall, _ = _timed_run(program, "compiled")
        warm_ips, warm_wall, cmp_m = _timed_run(program, "compiled")
        assert cmp_m.instr_count == ref_m.instr_count, name
        assert cmp_m.output.entries() == ref_m.output.entries(), name
        assert cmp_m.clock.now_ns == ref_m.clock.now_ns, name
        out[name] = {
            "instructions": ref_m.instr_count,
            "reference_ips": ref_ips,
            "compiled_cold_ips": cold_ips,
            "compiled_warm_ips": warm_ips,
            "speedup_cold": cold_ips / ref_ips if ref_ips else 0.0,
            "speedup_warm": warm_ips / ref_ips if ref_ips else 0.0,
            "reference_wall_s": ref_wall,
            "compiled_warm_wall_s": warm_wall,
        }
    return out


def cache_bench() -> dict:
    """Cross-Machine program-cache behaviour: N machines over the same
    program compile once and bind N times."""
    vmc.clear_cache()
    program = tight_loop_kernel(1000)
    machines = [_machine(program, "compiled") for _ in range(8)]
    for m in machines:
        m.run()
    unit = vmc.compiled_for(program)
    return {
        "machines": len(machines),
        "cache_entries": vmc.cache_size(),
        "binds": unit.binds,
        "fusion": unit.stats.as_dict(),
    }


# ---------------------------------------------------------------------
# end-to-end suite
# ---------------------------------------------------------------------

def app_names():
    return [app.name for app in all_apps()]


def e2e_bench(names=None) -> dict:
    """Each app session under both tiers: behaviour AND simulated
    timing must be byte-identical; wall clock is the speedup metric."""
    names = list(names) if names is not None else app_names()
    per_app = {}
    total_ref_wall = total_cmp_wall = 0.0
    rec_ref_wall = rec_cmp_wall = 0.0
    identical = True
    for name in names:
        ref = run_app_session(name, vm_tier="reference")
        cmp_ = run_app_session(name, vm_tier="compiled")
        behavior = ref.equivalence_key() == cmp_.equivalence_key()
        sim_time = (ref.clock_ns == cmp_.clock_ns
                    and ref.recovery_time_ns == cmp_.recovery_time_ns
                    and ref.validation_time_ns == cmp_.validation_time_ns)
        identical &= behavior and sim_time
        rr, rc = sum(ref.recovery_wall_s), sum(cmp_.recovery_wall_s)
        total_ref_wall += ref.wall_s
        total_cmp_wall += cmp_.wall_s
        rec_ref_wall += rr
        rec_cmp_wall += rc
        per_app[name] = {
            "behavior_identical": behavior,
            "sim_time_identical": sim_time,
            "reference_wall_s": ref.wall_s,
            "compiled_wall_s": cmp_.wall_s,
            "reference_recovery_wall_s": rr,
            "compiled_recovery_wall_s": rc,
            "recovery_speedup": rr / rc if rc else 0.0,
        }
    return {
        "apps": names,
        "identical": identical,
        "per_app": per_app,
        "total_wall_s": {"reference": total_ref_wall,
                         "compiled": total_cmp_wall},
        "total_recovery_wall_s": {"reference": rec_ref_wall,
                                  "compiled": rec_cmp_wall},
        "session_speedup": (total_ref_wall / total_cmp_wall
                            if total_cmp_wall else 0.0),
        "recovery_speedup": (rec_ref_wall / rec_cmp_wall
                             if rec_cmp_wall else 0.0),
    }


# ---------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------

def test_kernel_throughput(once):
    kernels = once(kernel_bench, 6000)
    sl = kernels["straight_line"]
    assert sl["speedup_warm"] >= KERNEL_GATE, \
        f"straight-line {sl['speedup_warm']:.1f}x < {KERNEL_GATE}x"
    for name, k in kernels.items():
        assert k["speedup_warm"] > 1.0, \
            f"{name}: compiled slower than reference"


def test_program_cache_compiles_once(once):
    stats = once(cache_bench)
    assert stats["cache_entries"] == 1
    assert stats["binds"] == stats["machines"]
    assert stats["fusion"]["closed_loops"] >= 1


def test_end_to_end_equivalence_and_speedup(once):
    e2e = once(e2e_bench)
    assert e2e["identical"], \
        "compiled tier diverged from reference on an app session"
    assert e2e["recovery_speedup"] >= E2E_GATE, \
        (f"recovery wall speedup {e2e['recovery_speedup']:.2f}x "
         f"< {E2E_GATE}x")


# ---------------------------------------------------------------------
# script mode
# ---------------------------------------------------------------------

def _render_kernels(kernels: dict) -> str:
    lines = ["kernel         ref Minstr/s  warm Minstr/s  "
             "cold x   warm x"]
    for name, k in kernels.items():
        lines.append(
            f"{name:<14} {k['reference_ips'] / 1e6:>11.2f}  "
            f"{k['compiled_warm_ips'] / 1e6:>12.2f}  "
            f"{k['speedup_cold']:>6.1f}  {k['speedup_warm']:>6.1f}")
    return "\n".join(lines)


def _render_e2e(e2e: dict) -> str:
    lines = ["app          identical  rec wall ref->cmp    speedup"]
    for name, a in e2e["per_app"].items():
        same = a["behavior_identical"] and a["sim_time_identical"]
        lines.append(
            f"{name:<12} {'yes' if same else 'NO':<9} "
            f"{a['reference_recovery_wall_s']:>7.2f}s ->"
            f"{a['compiled_recovery_wall_s']:>6.2f}s "
            f"{a['recovery_speedup']:>8.2f}x")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Template-JIT VM speed benchmark")
    parser.add_argument("--quick", action="store_true",
                        help="CI mode: small kernels with a "
                        f"{QUICK_KERNEL_GATE}x floor and a 2-app "
                        "equivalence check; no JSON output")
    parser.add_argument("--out", default="BENCH_vm.json")
    args = parser.parse_args(argv)

    if args.quick:
        kernels = kernel_bench(1500)
        print(_render_kernels(kernels))
        sl = kernels["straight_line"]["speedup_warm"]
        e2e = e2e_bench(QUICK_APPS)
        print(_render_e2e(e2e))
        ok = sl >= QUICK_KERNEL_GATE and e2e["identical"]
        print(f"\nstraight-line warm speedup {sl:.1f}x "
              f"(floor {QUICK_KERNEL_GATE}x); equivalence: "
              f"{'identical' if e2e['identical'] else 'DIVERGED'}")
        return 0 if ok else 1

    kernels = kernel_bench(6000)
    cache = cache_bench()
    e2e = e2e_bench()
    print(_render_kernels(kernels))
    print()
    print(_render_e2e(e2e))
    sl = kernels["straight_line"]["speedup_warm"]
    gate_passed = (sl >= KERNEL_GATE and e2e["identical"]
                   and e2e["recovery_speedup"] >= E2E_GATE)
    payload = {
        "benchmark": "vm_speed",
        "metric_note": (
            "warm kernel numbers are the re-execution case (program "
            "cache hit); end-to-end compares full First-Aid sessions "
            "per tier -- behaviour and simulated clocks are asserted "
            "byte-identical, wall clock is the speedup"),
        "kernels": kernels,
        "program_cache": cache,
        "end_to_end": e2e,
        "kernel_gate": KERNEL_GATE,
        "e2e_gate": E2E_GATE,
        "gate_passed": gate_passed,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"\nstraight-line warm {sl:.1f}x (gate {KERNEL_GATE}x); "
          f"recovery wall {e2e['recovery_speedup']:.2f}x "
          f"(gate {E2E_GATE}x); identical: {e2e['identical']}")
    print(f"wrote {args.out}")
    return 0 if gate_passed else 1


if __name__ == "__main__":
    sys.exit(main())
