"""Figure 5: the bug report for the Apache dangling-pointer read.

Shape targets: the report carries all five sections of the paper's
figure, names the delay-free x7 patch, shows the util_ald_* call
chains, the with/without mm-trace diff, and read-only illegal
accesses.
"""

from repro.bench.experiments import figure5_report


def test_figure5_report(once):
    result = once(figure5_report)
    text = result.text
    print("\n" + text)
    assert result.data["patches"] == 7
    assert result.data["bug_types"] == ["dangling-pointer-read"]
    for needle in (
            "1. Failure coredump:",
            "2. Diagnosis summary:",
            "3. Patch applied: 7 patch(es) for dangling-pointer-read",
            "4. Memory allocations/deallocations",
            "5. Illegal access trace",
            "util_ald_free",
            "util_ald_cache_purge",
            "util_ldap_search_node_free",
            "(delayed, patch",
            "handle_status"):
        assert needle in text, needle
    # the dangling-pointer READ bug produces read accesses only
    assert ", 0 write" in text
