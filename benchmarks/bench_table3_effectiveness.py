"""Table 3: overall effectiveness -- diagnosis, recovery time,
prevention of reoccurrence, rollback counts, validation time.

Shape targets (vs the paper):
* every bug is diagnosed with the right type and patch-site count;
* every app survives the failure AND the repeated trigger ("Yes");
* recovery times land in the sub-second-to-seconds band with Apache
  the slowest of the real bugs (its trigger is 3 checkpoints before
  the failure);
* read-type bugs (binary search) need more rollbacks than
  directly-manifesting ones.
"""

from repro.apps.registry import get_app
from repro.bench.experiments import table3_effectiveness


def test_table3_effectiveness(once):
    result = once(table3_effectiveness)
    print("\n" + result.render())
    data = result.data

    for name, row in data.items():
        app = get_app(name)
        assert row["ok"], f"{name} did not avoid future errors"
        assert set(row["bug_types"]) == \
            {b.value for b in app.BUG_TYPES}, name
        assert row["patch_sites"] == row["expected_sites"], name
        assert row["consistent"], name
        assert 0.01 < row["recovery_s"] < 30, name

    real = ["apache", "squid", "cvs", "pine", "mutt", "m4", "bc"]
    slowest = max(real, key=lambda n: data[n]["recovery_s"])
    assert slowest == "apache"

    direct = ["squid", "cvs", "pine", "mutt", "bc", "apache-dpw"]
    searched = ["apache", "m4", "apache-uir"]
    max_direct = max(data[n]["rollbacks"] for n in direct)
    min_searched = min(data[n]["rollbacks"] for n in searched)
    assert min_searched > max_direct, (
        "binary-search bugs must need more rollbacks than "
        "directly-identified ones")
