"""Table 6: heap space overhead of the allocator extension.

Shape target: the 16-byte-per-object metadata is negligible for
large-object programs (gzip, mcf, bzip2, lindsay) and substantial for
many-small-object programs (cfrac, espresso, p2c, twolf), exactly the
paper's split.
"""

from repro.bench.experiments import table6_allocator_space


def test_table6_allocator_space(once):
    result = once(table6_allocator_space)
    print("\n" + result.render())
    overhead = {name: d["overhead"]
                for name, d in result.data.items()}
    # small-object programs pay much more than large-object ones
    for heavy in ("cfrac", "espresso", "p2c", "300.twolf"):
        assert overhead[heavy] > 0.10, heavy
    for light in ("164.gzip", "256.bzip2", "181.mcf", "lindsay"):
        assert overhead[light] < 0.05, light
    assert overhead["cfrac"] == max(overhead.values())
