"""Ablations: measured evidence for the paper's design arguments
(DESIGN.md section 5)."""

from repro.bench.ablations import (
    ablation_heap_marking,
    ablation_rx_misdiagnosis,
    ablation_site_search,
)
from repro.core.bugtypes import BugType


def test_ablation_heap_marking(once):
    result = once(ablation_heap_marking)
    print("\n" + result.render())
    with_marking = result.data["with"]
    without = result.data["without"]
    # with marking: the chosen checkpoint precedes the purge, several
    # intervals before the failure
    assert with_marking["verdict"] == "patched"
    assert with_marking["distance_intervals"] >= 3
    # without marking: phase 1 is fooled into a post-trigger
    # checkpoint (Figure 3), and the diagnosis degrades
    assert without["distance_intervals"] < 3
    assert (without["verdict"] != "patched"
            or without["chosen"] > with_marking["chosen"])


def test_ablation_rx_misdiagnosis(once):
    result = once(ablation_rx_misdiagnosis)
    print("\n" + result.render())
    truth = BugType.DANGLING_WRITE.value
    assert result.data["first_aid"] == [truth]
    assert result.data["rx"] != truth  # survival-only gets it wrong


def test_ablation_site_search(once):
    result = once(ablation_site_search)
    print("\n" + result.render())
    binary = result.data["binary"]
    linear = result.data["linear"]
    assert binary["patches"] == linear["patches"] == 2
    assert binary["rollbacks"] <= linear["rollbacks"]
