"""Parallel recovery engine: backend equivalence and speedup.

The parallel engine (``FirstAidConfig.workers``, DESIGN.md §8) fans
diagnosis probes and validation re-executions out across worker
processes.  Two claims, measured over the seven real-bug applications:

1. **Equivalence** -- diagnoses, patches, validation verdicts, and the
   rendered bug reports (timestamps redacted) are byte-identical
   between the serial backend and the fork backend at every worker
   count.  Parallelism changes *when* work happens, never *what* is
   concluded.
2. **Speedup** -- the simulated validation time (the paper's spare-core
   metric: a batch costs its busiest worker lane, ``schedule_ns``)
   drops by >= 1.8x with 4 workers, and the simulated recovery time
   (Table 3) never regresses.

Honest labeling: this container exposes a single CPU core, so *real*
wall-clock parallel speedup is not expected here -- forked workers
time-share one core.  Wall times are reported for completeness; the
speedup gate applies to the deterministic simulated metric, which is
what the paper's Tables 3/5 spare-core accounting models.  On a
multi-core host the wall-clock ratio tracks the simulated one.

Also included: the call-site hash-consing micro-benchmark (interning
bounds the table by distinct sites and makes cross-process transfer
canonical).

Runnable as a script::

    python benchmarks/bench_parallel_recovery.py              # full run,
                                                              # writes BENCH_parallel.json
    python benchmarks/bench_parallel_recovery.py --workers 2  # CI mode:
                                                              # equivalence gate only
"""

import argparse
import json
import os
import pickle
import sys
import time

if __name__ == "__main__":  # script mode without PYTHONPATH=src
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.apps.registry import real_bug_apps
from repro.bench.harness import SessionDigest, run_app_session
from repro.util.callsite import CallSite, interned_count

#: Simulated validation speedup required at the highest worker count.
SPEEDUP_GATE = 1.8

WORKER_COUNTS = (1, 2, 4)

#: Distinct frame tuples and total constructions for the intern
#: micro-benchmark (a program has few sites, hit many times).
INTERN_SITES = 64
INTERN_OPS = 50_000

_RESULTS = None


def app_names():
    return [app.name for app in real_bug_apps()]


def parallel_recovery() -> dict:
    """Digest every app under every worker count (cached)."""
    global _RESULTS
    if _RESULTS is not None:
        return _RESULTS
    results = {}
    for name in app_names():
        results[name] = {w: run_app_session(name, workers=w)
                         for w in WORKER_COUNTS}
    _RESULTS = results
    return results


def _totals(digests: dict, workers: int):
    """(validation sim ns, recovery sim ns, wall s) summed over apps."""
    val = sum(sum(d[workers].validation_time_ns) for d in digests.values())
    rec = sum(sum(d[workers].recovery_time_ns) for d in digests.values())
    wall = sum(d[workers].wall_s for d in digests.values())
    return val, rec, wall


def callsite_intern_bench() -> dict:
    """Hash-consing: repeated captures of few distinct sites must not
    grow the table, and pickling must come back as the same object."""
    frames = [(("f%d" % (i % 8), i), ("g", i * 3), ("main", 7))
              for i in range(INTERN_SITES)]
    before = interned_count()
    t0 = time.perf_counter()
    for op in range(INTERN_OPS):
        CallSite.intern(frames[op % INTERN_SITES])
    intern_s = time.perf_counter() - t0
    added = interned_count() - before
    site = CallSite.intern(frames[0])
    round_trip = pickle.loads(pickle.dumps(site))
    return {
        "constructions": INTERN_OPS,
        "distinct_sites": INTERN_SITES,
        "table_growth": added,
        "intern_wall_s": intern_s,
        "ops_per_s": INTERN_OPS / intern_s if intern_s else 0.0,
        "pickle_roundtrip_is_same_object": round_trip is site,
    }


# ---------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------

def test_backends_byte_identical(once):
    results = once(parallel_recovery)
    for name, per_worker in results.items():
        serial_key = per_worker[1].equivalence_key()
        for w in WORKER_COUNTS[1:]:
            assert per_worker[w].equivalence_key() == serial_key, \
                f"{name}: workers={w} diverged from serial"
            assert per_worker[w].worker_failures == 0, name


def test_simulated_validation_speedup(once):
    results = once(parallel_recovery)
    val1, _, _ = _totals(results, 1)
    val4, _, _ = _totals(results, 4)
    assert val4 > 0
    assert val1 / val4 >= SPEEDUP_GATE, \
        f"validation speedup {val1 / val4:.2f}x < {SPEEDUP_GATE}x"


def test_simulated_recovery_time_never_regresses(once):
    results = once(parallel_recovery)
    for name, per_worker in results.items():
        serial = per_worker[1].recovery_time_ns
        for w in WORKER_COUNTS[1:]:
            for i, ns in enumerate(per_worker[w].recovery_time_ns):
                assert ns <= serial[i], \
                    f"{name}: recovery {i} regressed at workers={w}"


def test_callsite_interning(once):
    stats = once(callsite_intern_bench)
    assert stats["table_growth"] <= INTERN_SITES
    assert stats["pickle_roundtrip_is_same_object"]


# ---------------------------------------------------------------------
# script mode
# ---------------------------------------------------------------------

def _render(results: dict) -> str:
    lines = ["app          sim validation ms (1/2/4 w)   "
             "sim recovery ms (1/2/4 w)    identical"]
    for name, per in results.items():
        vals = [sum(per[w].validation_time_ns) / 1e6
                for w in WORKER_COUNTS]
        recs = [sum(per[w].recovery_time_ns) / 1e6
                for w in WORKER_COUNTS]
        same = all(per[w].equivalence_key() == per[1].equivalence_key()
                   for w in WORKER_COUNTS)
        lines.append(
            f"{name:<12} {vals[0]:>8.1f} {vals[1]:>8.1f} {vals[2]:>8.1f}"
            f"   {recs[0]:>8.1f} {recs[1]:>8.1f} {recs[2]:>8.1f}"
            f"      {'yes' if same else 'NO'}")
    return "\n".join(lines)


def _equivalence_mode(workers: int) -> int:
    """CI gate: serial vs ``workers`` digests must match on every app."""
    failures = 0
    for name in app_names():
        serial = run_app_session(name, workers=1)
        parallel = run_app_session(name, workers=workers)
        same = parallel.equivalence_key() == serial.equivalence_key()
        print(f"{name:<12} workers={workers}: "
              f"{'identical' if same else 'DIVERGED'} "
              f"(sim validation {sum(serial.validation_time_ns) / 1e6:.1f}"
              f" -> {sum(parallel.validation_time_ns) / 1e6:.1f} ms, "
              f"rescued tasks: {parallel.worker_failures})")
        failures += 0 if same else 1
    if failures:
        print(f"\n{failures} app(s) diverged between backends")
    else:
        print(f"\nall {len(app_names())} apps byte-identical at "
              f"workers={workers}")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Parallel recovery engine benchmark")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="equivalence-gate-only mode against N "
                        "workers (CI); omit for the full benchmark")
    parser.add_argument("--out", default="BENCH_parallel.json")
    args = parser.parse_args(argv)

    if args.workers is not None:
        return _equivalence_mode(args.workers)

    results = parallel_recovery()
    print(_render(results))
    val1, rec1, wall1 = _totals(results, 1)
    val2, rec2, wall2 = _totals(results, 2)
    val4, rec4, wall4 = _totals(results, 4)
    identical = all(
        per[w].equivalence_key() == per[1].equivalence_key()
        for per in results.values() for w in WORKER_COUNTS)
    intern = callsite_intern_bench()
    payload = {
        "benchmark": "parallel_recovery",
        "apps": app_names(),
        "worker_counts": list(WORKER_COUNTS),
        "backends_byte_identical": identical,
        "metric_note": (
            "speedups are on the simulated spare-core clock "
            "(max-over-workers, schedule_ns); this container has one "
            "CPU core, so real wall-clock parallel speedup is not "
            "expected here and wall times are reported for reference "
            "only"),
        "simulated_validation_ms": {
            "1": val1 / 1e6, "2": val2 / 1e6, "4": val4 / 1e6},
        "simulated_recovery_ms": {
            "1": rec1 / 1e6, "2": rec2 / 1e6, "4": rec4 / 1e6},
        "simulated_validation_speedup": {
            "2": val1 / val2 if val2 else 0.0,
            "4": val1 / val4 if val4 else 0.0},
        "simulated_recovery_speedup": {
            "2": rec1 / rec2 if rec2 else 0.0,
            "4": rec1 / rec4 if rec4 else 0.0},
        "real_wall_s": {"1": wall1, "2": wall2, "4": wall4},
        "speedup_gate": SPEEDUP_GATE,
        "gate_passed": identical and val4 > 0
        and val1 / val4 >= SPEEDUP_GATE,
        "callsite_intern": intern,
        "per_app": {
            name: {
                str(w): {
                    "simulated_validation_ms":
                        sum(per[w].validation_time_ns) / 1e6,
                    "simulated_recovery_ms":
                        sum(per[w].recovery_time_ns) / 1e6,
                    "wall_s": per[w].wall_s,
                    "recoveries": per[w].recoveries,
                    "verdicts": list(per[w].verdicts),
                } for w in WORKER_COUNTS}
            for name, per in results.items()},
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"\nvalidation speedup: {val1 / val2:.2f}x @2w, "
          f"{val1 / val4:.2f}x @4w (gate {SPEEDUP_GATE}x); "
          f"recovery: {rec1 / rec2:.2f}x @2w, {rec1 / rec4:.2f}x @4w; "
          f"identical: {identical}")
    print(f"wrote {args.out}")
    return 0 if payload["gate_passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
