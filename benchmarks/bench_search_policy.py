"""Search-policy benchmark: bandit-driven speculative patch search
with static bytecode pruning (DESIGN.md §13).

The diagnostic engine's probe schedule has three policies
(``FirstAidConfig.search_policy``):

* ``fixed``   -- the seed's static schedule (baseline),
* ``pruned``  -- static def-use/typestate pruning of probes that the
  bytecode proves cannot change the outcome,
* ``bandit``  -- pruning plus a deterministic UCB1 bandit that shapes
  *speculation*: which checkpoint-walk wave sizes to dispatch and which
  half of the call-site bisection to pre-execute on spare workers.

Three claims, measured over the seven real-bug applications:

1. **Identity** -- every policy, serial or forked, produces a
   byte-identical diagnosis (``SessionDigest.diagnosis_key()``:
   verdicts, bug types, checkpoints, evidence, patch points,
   validation outcomes).  Pruning and learning change how much work
   the search does, never what it concludes.
2. **Fewer re-executions** -- probes *consumed* (the serial decision
   path: every one is a rollback + re-execution) drop strictly on all
   seven apps under ``pruned`` and ``bandit``; probes *executed*
   (including speculation) at 2 workers drop strictly under ``bandit``
   vs. the fixed speculative schedule.
3. **Recovery time** -- the simulated recovery clock (Table 3)
   improves on at least five of the seven apps under ``bandit``
   (observed: all seven).

Runnable as a script::

    python benchmarks/bench_search_policy.py           # full run,
                                                       # writes BENCH_search.json
    python benchmarks/bench_search_policy.py --quick   # CI gates on a
                                                       # 3-app subset
"""

import argparse
import json
import os
import sys

if __name__ == "__main__":  # script mode without PYTHONPATH=src
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.apps.registry import real_bug_apps
from repro.bench.harness import run_app_session

#: Simulated recovery time must improve on at least this many apps.
RECOVERY_IMPROVE_GATE = 5

QUICK_APPS = ("bc", "m4", "squid")

#: (label, search_policy, workers) -- serial runs measure consumed
#: probes (rollback + re-execution each); the 2-worker runs measure
#: executed probes including discarded speculation.
CONFIGS = (
    ("fixed@1", "fixed", 1),
    ("pruned@1", "pruned", 1),
    ("bandit@1", "bandit", 1),
    ("fixed@2", "fixed", 2),
    ("bandit@2", "bandit", 2),
)

_RESULTS = None


def app_names():
    return [app.name for app in real_bug_apps()]


def search_policy_sweep(names=None) -> dict:
    """Digest every app under every (policy, workers) config."""
    global _RESULTS
    if names is None and _RESULTS is not None:
        return _RESULTS
    results = {}
    for name in (names or app_names()):
        results[name] = {
            label: run_app_session(name, workers=w, search_policy=p)
            for label, p, w in CONFIGS}
    if names is None:
        _RESULTS = results
    return results


def gate_report(results: dict) -> dict:
    """Evaluate every acceptance gate over a sweep."""
    identical = {}
    consumed_win = {}
    executed_win = {}
    recovery_delta_ms = {}
    backend_equal = {}
    for name, per in results.items():
        keys = {d.diagnosis_key() for d in per.values()}
        identical[name] = len(keys) == 1
        fixed_c = sum(per["fixed@1"].probes_consumed)
        consumed_win[name] = (
            sum(per["pruned@1"].probes_consumed) < fixed_c
            and sum(per["bandit@1"].probes_consumed) < fixed_c)
        executed_win[name] = (sum(per["bandit@2"].probes_executed)
                              < sum(per["fixed@2"].probes_executed))
        recovery_delta_ms[name] = (
            sum(per["fixed@1"].recovery_time_ns)
            - sum(per["bandit@1"].recovery_time_ns)) / 1e6
        backend_equal[name] = (per["bandit@1"].equivalence_key()
                               == per["bandit@2"].equivalence_key())
    improved = sum(1 for d in recovery_delta_ms.values() if d > 0)
    n = len(results)
    gate = max(0, RECOVERY_IMPROVE_GATE - (7 - n))
    return {
        "diagnosis_identical": identical,
        "consumed_strictly_fewer": consumed_win,
        "executed_strictly_fewer_at_2w": executed_win,
        "recovery_improvement_ms": recovery_delta_ms,
        "recovery_improved_apps": improved,
        "recovery_improve_gate": gate,
        "bandit_backend_equal": backend_equal,
        "gate_passed": (all(identical.values())
                        and all(consumed_win.values())
                        and all(executed_win.values())
                        and all(backend_equal.values())
                        and improved >= gate),
    }


# ---------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------

def test_diagnoses_identical_across_policies(once):
    results = once(search_policy_sweep)
    report = gate_report(results)
    assert all(report["diagnosis_identical"].values()), \
        report["diagnosis_identical"]
    assert all(report["bandit_backend_equal"].values()), \
        report["bandit_backend_equal"]


def test_strictly_fewer_reexecutions(once):
    results = once(search_policy_sweep)
    report = gate_report(results)
    assert all(report["consumed_strictly_fewer"].values()), \
        report["consumed_strictly_fewer"]
    assert all(report["executed_strictly_fewer_at_2w"].values()), \
        report["executed_strictly_fewer_at_2w"]


def test_recovery_time_improves(once):
    results = once(search_policy_sweep)
    report = gate_report(results)
    assert report["recovery_improved_apps"] >= \
        report["recovery_improve_gate"], report["recovery_improvement_ms"]


# ---------------------------------------------------------------------
# script mode
# ---------------------------------------------------------------------

def _render(results: dict) -> str:
    lines = ["app          consumed (fixed/pruned/bandit)   "
             "executed@2w (fixed/bandit)   sim recovery ms "
             "(fixed -> bandit)   identical"]
    for name, per in results.items():
        same = len({d.diagnosis_key() for d in per.values()}) == 1
        lines.append(
            f"{name:<12} "
            f"{sum(per['fixed@1'].probes_consumed):>6} "
            f"{sum(per['pruned@1'].probes_consumed):>6} "
            f"{sum(per['bandit@1'].probes_consumed):>6}"
            f"   {sum(per['fixed@2'].probes_executed):>10} "
            f"{sum(per['bandit@2'].probes_executed):>6}"
            f"   {sum(per['fixed@1'].recovery_time_ns) / 1e6:>10.1f} -> "
            f"{sum(per['bandit@1'].recovery_time_ns) / 1e6:>8.1f}"
            f"      {'yes' if same else 'NO'}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Search-policy benchmark (pruning + bandit)")
    parser.add_argument("--quick", action="store_true",
                        help="gate-only mode on a 3-app subset (CI); "
                        "omit for the full benchmark")
    parser.add_argument("--out", default="BENCH_search.json")
    args = parser.parse_args(argv)

    names = list(QUICK_APPS) if args.quick else None
    results = search_policy_sweep(names)
    report = gate_report(results)
    print(_render(results))
    print(f"\nrecovery improved on {report['recovery_improved_apps']}"
          f"/{len(results)} apps "
          f"(gate {report['recovery_improve_gate']}); "
          f"identical diagnoses: "
          f"{all(report['diagnosis_identical'].values())}; "
          f"gate {'PASSED' if report['gate_passed'] else 'FAILED'}")
    if args.quick:
        return 0 if report["gate_passed"] else 1

    total_pruned = sum(sum(d["bandit@1"].probes_pruned)
                       for d in results.values())
    payload = {
        "benchmark": "search_policy",
        "apps": list(results),
        "configs": [list(c) for c in CONFIGS],
        "metric_note": (
            "probes consumed = the serial decision path (each one a "
            "rollback + re-execution); probes executed includes "
            "speculation discarded by the consume path, so it is the "
            "spare-core work bill at 2 workers; recovery times are on "
            "the deterministic simulated clock (Table 3)"),
        "gates": report,
        "total_probes_pruned_bandit": total_pruned,
        "per_app": {
            name: {
                label: {
                    "probes_executed": sum(d.probes_executed),
                    "probes_consumed": sum(d.probes_consumed),
                    "probes_pruned": sum(d.probes_pruned),
                    "arms_pruned": sum(d.arms_pruned),
                    "simulated_recovery_ms":
                        sum(d.recovery_time_ns) / 1e6,
                    "simulated_validation_ms":
                        sum(d.validation_time_ns) / 1e6,
                    "recoveries": d.recoveries,
                    "verdicts": list(d.verdicts),
                } for label, d in per.items()}
            for name, per in results.items()},
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"wrote {args.out}")
    return 0 if report["gate_passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
