"""Staged-rollout benchmark: containment, promotion, determinism.

Measures and gates the health-gated staged patch rollout
(``repro.rollout``, DESIGN.md §14) end to end:

1. **Containment** -- per app, a deliberately-bad patch injected at
   STAGED is adopted only by the canary cohort, condemned by the
   promotion controller on its post-adopt failure evidence, and never
   reaches any non-canary process (zero adoptions, zero triggers).

2. **Promotion** -- the real patch the canary leader diagnoses clears
   the observation-window, failure-rate, and latency-tail gates,
   cascades to fleet-wide, and prevents the bug in every late joiner.

3. **Determinism** -- the controller's decision trail is byte-identical
   across shuffled beacon arrival orders and between the forked fleet
   and the same fleet run serially; a second controller tick over the
   settled store decides nothing.

4. **Disabled equivalence** -- a session with rollout *off* digests
   byte-identically (equivalence + diagnosis keys) to the same session
   with rollout *on*: staged distribution changes who adopts a patch,
   never what a session diagnoses.

5. **No-op generation** -- the shared-channel scrub that rides along:
   an idle refresh cycle (identical republished counts, repeated
   syncs, generation polls) commits nothing and leaves the store file
   byte-untouched.

Runnable as a script::

    python benchmarks/bench_rollout.py            # full: 3 apps
    python benchmarks/bench_rollout.py --quick    # reduced CI mode

Writes ``BENCH_rollout.json`` and exits non-zero when any gate fails.
"""

import argparse
import json
import os
import sys
import tempfile

if __name__ == "__main__":  # script mode without PYTHONPATH=src
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.bench.fleet import (
    run_rollout_fleet,
    run_rollout_fleet_serial,
)
from repro.bench.harness import run_app_session
from repro.core.bugtypes import BugType
from repro.core.patches import PatchPool
from repro.store import SharedPatchStore
from repro.util.callsite import CallSite

DEFAULT_APPS = ("bc", "m4", "squid")
EQUIVALENCE_APP = "squid"


def _fleet_payload(result) -> dict:
    return {
        "bad_key": result.bad_key,
        "real_keys": result.real_keys,
        "decisions": result.decisions,
        "second_tick_decisions": result.second_tick_decisions,
        "final_stages": result.final_stages,
        "rolled_back": result.rolled_back,
        "store_generation": result.store_generation,
        "order_invariant": result.order_invariant,
        "shuffles": result.shuffles,
        "containment": result.containment_passed,
        "promotion": result.promotion_passed,
        "gate_passed": result.gate_passed,
        "members": [{
            "role": m.role,
            "label": m.label,
            "canary": m.canary,
            "reason": m.reason,
            "recoveries": m.recoveries,
            "survived": m.survived,
            "patches": m.patches,
            "patched_triggers": m.patched_triggers,
            "bad_patch_adopted": m.bad_patch_adopted,
            "bad_patch_triggers": m.bad_patch_triggers,
            "wall_s": m.wall_s,
        } for m in result.members],
        "non_canary_bad_triggers": sum(
            m.bad_patch_triggers for m in result.non_canary_members),
        "non_canary_bad_adoptions": sum(
            1 for m in result.non_canary_members if m.bad_patch_adopted),
    }


def _disabled_equivalence(app_name: str, tmp: str) -> dict:
    """Digest one session with rollout off and on; the behavioral keys
    must match byte-for-byte."""
    off = run_app_session(app_name, triggers=2, supervisor=False)
    on = run_app_session(app_name, triggers=2, supervisor=False,
                         rollout=True,
                         store_path=os.path.join(tmp, "eq.store.json"))
    return {
        "app": app_name,
        "equivalence_key_identical":
            off.equivalence_key() == on.equivalence_key(),
        "diagnosis_key_identical":
            off.diagnosis_key() == on.diagnosis_key(),
        "recoveries": off.recoveries,
    }


def _noop_generation(tmp: str, cycles: int = 8) -> dict:
    """The shared-channel scrub gate: an idle fleet refresh cycle must
    not churn the store."""
    path = os.path.join(tmp, "idle.store.json")
    store = SharedPatchStore(path, "idle-app")
    pool = PatchPool("idle-app")
    patch = pool.new_patch(BugType.BUFFER_OVERFLOW,
                           CallSite.intern([("idle_fn", 1)]))
    patch.validated = True
    patch.trigger_count = 9
    store.publish([patch])
    commits_before = store.commits
    bytes_before = open(path, "rb").read()
    local = PatchPool("idle-app")
    for _ in range(cycles):
        store.sync_into(local)
        store.publish([patch])      # identical counts: must be a no-op
        store.generation()          # must be served from the stat cache
    return {
        "cycles": cycles,
        "commits_before": commits_before,
        "commits_after": store.commits,
        "noop_mutations": store.noop_mutations,
        "generation": store.load().generation,
        "file_untouched": open(path, "rb").read() == bytes_before,
        "gate_passed": (store.commits == commits_before
                        and store.noop_mutations == cycles
                        and store.load().generation == 1
                        and open(path, "rb").read() == bytes_before),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("out", nargs="?", default="BENCH_rollout.json")
    parser.add_argument("--apps", nargs="*", default=list(DEFAULT_APPS))
    parser.add_argument("--quick", action="store_true",
                        help="reduced CI mode: 1 app")
    args = parser.parse_args(argv)
    if args.quick:
        args.apps = args.apps[:1]

    fleets = {}
    serial_vs_fork = {}
    with tempfile.TemporaryDirectory(prefix="rollout-bench-") as tmp:
        for app in args.apps:
            print(f"[rollout] {app}: forked fleet "
                  f"(bad patch injected at STAGED) ...")
            forked = run_rollout_fleet(
                app, os.path.join(tmp, f"{app}.fork.json"))
            print(f"[rollout] {app}: same fleet, serial ...")
            serial = run_rollout_fleet_serial(
                app, os.path.join(tmp, f"{app}.serial.json"))
            fleets[app] = _fleet_payload(forked)
            serial_vs_fork[app] = (forked.fleet_digest()
                                   == serial.fleet_digest())
            print(f"[rollout] {app}: containment="
                  f"{forked.containment_passed} "
                  f"promotion={forked.promotion_passed} "
                  f"order_invariant={forked.order_invariant} "
                  f"serial==fork={serial_vs_fork[app]}")
            for line in forked.decisions:
                print(f"[rollout]   {line}")

        eq_app = args.apps[0] if args.quick else EQUIVALENCE_APP
        print(f"[equivalence] {eq_app}: rollout off vs on ...")
        equivalence = _disabled_equivalence(eq_app, tmp)
        print(f"[equivalence] equivalence_key="
              f"{equivalence['equivalence_key_identical']} "
              f"diagnosis_key="
              f"{equivalence['diagnosis_key_identical']}")

        print("[noop] idle refresh cycle ...")
        noop = _noop_generation(tmp)
        print(f"[noop] commits {noop['commits_before']} -> "
              f"{noop['commits_after']}, "
              f"noop_mutations={noop['noop_mutations']}, "
              f"file_untouched={noop['file_untouched']}")

    gates = {
        "containment": all(f["containment"] for f in fleets.values()),
        "promotion": all(f["promotion"] for f in fleets.values()),
        "order_invariant": all(f["order_invariant"]
                               for f in fleets.values()),
        "second_tick_idle": all(f["second_tick_decisions"] == 0
                                for f in fleets.values()),
        "serial_vs_fork_identical": all(serial_vs_fork.values()),
        "disabled_equivalence": (
            equivalence["equivalence_key_identical"]
            and equivalence["diagnosis_key_identical"]),
        "noop_generation": noop["gate_passed"],
    }
    gate_passed = all(gates.values())
    payload = {
        "benchmark": "rollout",
        "apps": list(args.apps),
        "quick": args.quick,
        "fleets": fleets,
        "serial_vs_fork_identical": serial_vs_fork,
        "disabled_equivalence": equivalence,
        "noop_generation": noop,
        "gates": gates,
        "gate_passed": gate_passed,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"[done] gates: " + ", ".join(
        f"{k}={'PASS' if v else 'FAIL'}" for k, v in gates.items()))
    print(f"[done] wrote {args.out} "
          f"({'PASS' if gate_passed else 'FAIL'})")
    return 0 if gate_passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
